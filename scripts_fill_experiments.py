#!/usr/bin/env python3
"""Splices the experiment-log outputs into EXPERIMENTS.md.

Each `<!-- NAME -->` marker in EXPERIMENTS.md is replaced by the
corresponding log from target/experiments/logs/, fenced as a code block.
Idempotent: reruns replace the previously spliced blocks.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent
LOGS = ROOT / "target" / "experiments" / "logs"
DOC = ROOT / "EXPERIMENTS.md"

MARKERS = {
    "TABLE1": "table1.txt",
    "TABLE2": "table2.txt",
    "FIG3": "fig3.txt",
    "FIG4": "fig4.txt",
    "FIG5": "fig5.txt",
    "FIG6": "fig6.txt",
    "ABLATION": "ablation.txt",
}


def strip_progress(text: str) -> str:
    lines = [
        l
        for l in text.splitlines()
        if not l.startswith("  running ")
        and not l.startswith("  preparing ")
        and not l.startswith("  using cached")
    ]
    return "\n".join(lines).strip()


def main() -> None:
    doc = DOC.read_text()
    for marker, log_name in MARKERS.items():
        log = LOGS / log_name
        if not log.exists():
            print(f"skip {marker}: {log} missing")
            continue
        block = f"<!-- {marker} -->\n```text\n{strip_progress(log.read_text())}\n```\n<!-- /{marker} -->"
        # Replace either the bare marker or a previously spliced block.
        spliced = re.compile(
            rf"<!-- {marker} -->.*?<!-- /{marker} -->", re.DOTALL
        )
        if spliced.search(doc):
            doc = spliced.sub(block, doc)
        else:
            doc = doc.replace(f"<!-- {marker} -->", block)
        print(f"spliced {marker}")
    DOC.write_text(doc)


if __name__ == "__main__":
    main()
