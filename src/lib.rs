#![forbid(unsafe_code)]
//! Umbrella crate for the ABONN reproduction workspace.
//!
//! Re-exports every member crate under one roof so the top-level `examples/`
//! and `tests/` can exercise the whole stack, and so downstream users can
//! depend on a single crate.
//!
//! # Examples
//!
//! ```
//! use abonn_repro::tensor::Matrix;
//!
//! let m = Matrix::identity(2);
//! assert_eq!(m.get(0, 0), 1.0);
//! ```

pub use abonn_attack as attack;
pub use abonn_bound as bound;
pub use abonn_check as check;
pub use abonn_core as core;
pub use abonn_data as data;
pub use abonn_lp as lp;
pub use abonn_nn as nn;
pub use abonn_tensor as tensor;
pub use abonn_vnnlib as vnnlib;
