//! End-to-end guarantees of incremental bound propagation (DESIGN.md
//! §5c): parent-prefix caching must be invisible in every observable
//! output — verdicts, search trajectories, certificates — while cutting
//! the counted back-substitution work on split chains.

use abonn_bound::{AppVer, BoundComputeStats, DeepPoly, InputBox, SplitSet, SplitSign};
use abonn_core::{AbonnVerifier, BabBaseline, Budget, RobustnessProblem, Verdict, Verifier};
use abonn_nn::{AffinePair, CanonicalNetwork, Layer, Network, Shape};
use abonn_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_canonical(seed: u64, dims: &[usize]) -> CanonicalNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    for w in dims.windows(2) {
        let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
        layers.push(AffinePair::new(m, b));
    }
    CanonicalNetwork::from_affine_pairs(dims[0], layers)
}

/// Verdict and trajectory match exactly with the cache on and off, for
/// both search strategies, across a spread of robustness instances.
#[test]
fn verdicts_and_trajectories_match_cache_on_and_off() {
    let net = Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                vec![0.0, 0.0, 0.0, 0.0],
            ),
            Layer::relu(),
            Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                vec![0.0, 0.0],
            ),
        ],
    )
    .unwrap();
    let budget = Budget::with_appver_calls(300);
    for (x0, eps) in [
        (vec![0.8, 0.2], 0.02),
        (vec![0.7, 0.3], 0.1),
        (vec![0.55, 0.45], 0.2),
        (vec![0.6, 0.4], 0.05),
    ] {
        let problem = RobustnessProblem::new(&net, x0.clone(), 0, eps).unwrap();

        let mut abonn_on = AbonnVerifier::default();
        abonn_on.config.incremental = true;
        let mut abonn_off = AbonnVerifier::default();
        abonn_off.config.incremental = false;
        let a_on = abonn_on.verify(&problem, &budget);
        let a_off = abonn_off.verify(&problem, &budget);
        assert_eq!(a_on.verdict, a_off.verdict, "ABONN verdict at {x0:?}");
        assert_eq!(
            a_on.stats.appver_calls, a_off.stats.appver_calls,
            "ABONN trajectory at {x0:?}"
        );
        assert_eq!(a_on.stats.tree_size, a_off.stats.tree_size);

        let mut bab_on = BabBaseline::default();
        bab_on.incremental = true;
        let mut bab_off = BabBaseline::default();
        bab_off.incremental = false;
        let b_on = bab_on.verify(&problem, &budget);
        let b_off = bab_off.verify(&problem, &budget);
        assert_eq!(b_on.verdict, b_off.verdict, "BaB verdict at {x0:?}");
        assert_eq!(
            b_on.stats.appver_calls, b_off.stats.appver_calls,
            "BaB trajectory at {x0:?}"
        );
        assert_eq!(b_on.stats.nodes_visited, b_off.stats.nodes_visited);

        if let (Verdict::Falsified(w1), Verdict::Falsified(w2)) = (&a_on.verdict, &a_off.verdict) {
            assert_eq!(w1, w2, "witness must be bit-identical at {x0:?}");
        }
    }
}

/// The acceptance demo: chained deep splits re-bound with parent
/// prefixes count at least 30% fewer back-substitution layer-steps than
/// bounding every node of the chain from scratch, with bit-identical
/// results.
#[test]
fn cached_chain_saves_thirty_percent_of_backsub_steps() {
    let net = random_canonical(11, &[3, 8, 8, 8, 8, 8, 8, 8, 2]);
    let region = InputBox::new(vec![-1.0; 3], vec![1.0; 3]);
    let dp = DeepPoly::new();

    let root = dp.analyze_cached(&net, &region, &SplitSet::new(), None);
    let deep: Vec<_> = root
        .analysis
        .unstable_neurons(&SplitSet::new())
        .into_iter()
        .filter(|n| n.layer == 6)
        .take(3)
        .collect();
    assert_eq!(deep.len(), 3, "seed must give 3 unstable neurons at layer 6");

    let mut cached = BoundComputeStats::default();
    let mut scratch = BoundComputeStats::default();
    cached.absorb(&root.stats);
    scratch.absorb(&root.stats);

    let mut splits = SplitSet::new();
    let mut parent = root.prefix;
    for neuron in deep {
        splits = splits.with(neuron, SplitSign::Pos);
        let with_cache = dp.analyze_cached(&net, &region, &splits, parent.as_ref());
        let from_scratch = dp.analyze_cached(&net, &region, &splits, None);
        assert_eq!(
            with_cache.analysis.p_hat.to_bits(),
            from_scratch.analysis.p_hat.to_bits(),
            "cached p_hat must be bit-identical"
        );
        cached.absorb(&with_cache.stats);
        scratch.absorb(&from_scratch.stats);
        parent = with_cache.prefix;
    }

    assert!(cached.layers_reused > 0);
    assert!(
        cached.backsub_steps * 10 <= scratch.backsub_steps * 7,
        "expected >= 30% fewer layer-steps, got {} cached vs {} scratch",
        cached.backsub_steps,
        scratch.backsub_steps
    );
}
