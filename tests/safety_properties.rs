//! General output-constraint (ACAS-Xu-style) properties through the full
//! verification stack.

use abonn_repro::bound::InputBox;
use abonn_repro::core::{
    AbonnVerifier, BabBaseline, Budget, CrownStyle, RobustnessProblem, Verdict, Verifier,
};
use abonn_repro::nn::{Layer, Network, Shape};
use abonn_repro::tensor::Matrix;

/// A fixed two-output network with one hidden ReLU layer:
/// y0 = relu(x0 − x1), y1 = relu(x1 − x0) − 0.1.
fn fixed_net() -> Network {
    Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]),
                vec![0.0, 0.0],
            ),
            Layer::relu(),
            Layer::dense(Matrix::identity(2), vec![0.0, -0.1]),
        ],
    )
    .unwrap()
}

#[test]
fn safety_property_verifies_on_a_safe_region() {
    let net = fixed_net();
    // On x0 in [0.6, 1.0], x1 in [0.0, 0.2]: y0 = x0 − x1 ≥ 0.4, so the
    // property y0 > 0.3 holds (margin row: y0 − 0.3 > 0).
    let region = InputBox::new(vec![0.6, 0.0], vec![1.0, 0.2]);
    let c = Matrix::from_rows(&[&[1.0, 0.0]]);
    let p = RobustnessProblem::from_output_constraints(&net, region, &c, &[-0.3]).unwrap();
    for verifier in [
        Box::new(AbonnVerifier::default()) as Box<dyn Verifier>,
        Box::new(BabBaseline::default()),
        Box::new(CrownStyle::default()),
    ] {
        let r = verifier.verify(&p, &Budget::with_appver_calls(500));
        assert_eq!(
            r.verdict,
            Verdict::Verified,
            "{} failed the safe property",
            verifier.name()
        );
    }
}

#[test]
fn safety_property_falsifies_with_a_margin_witness() {
    let net = fixed_net();
    // Same property on a region where y0 can be 0: x0 ≤ x1 somewhere.
    let region = InputBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
    let c = Matrix::from_rows(&[&[1.0, 0.0]]);
    let p = RobustnessProblem::from_output_constraints(&net, region, &c, &[-0.3]).unwrap();
    assert_eq!(p.label(), None, "safety properties carry no label");
    let r = AbonnVerifier::default().verify(&p, &Budget::with_appver_calls(500));
    match r.verdict {
        Verdict::Falsified(w) => {
            assert!(p.validate_witness(&w));
            // The witness must genuinely violate y0 > 0.3.
            let y = net.forward(&w);
            assert!(y[0] <= 0.3 + 1e-9, "witness does not violate: y0 = {}", y[0]);
        }
        v => panic!("expected falsification, got {v:?}"),
    }
}

#[test]
fn multi_row_safety_properties_conjoin() {
    let net = fixed_net();
    // Both outputs bounded above by 1.5 on the unit box:
    // rows: 1.5 − y0 > 0 and 1.5 − y1 > 0. True since y0, y1 ≤ 1.
    let region = InputBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
    let c = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
    let p = RobustnessProblem::from_output_constraints(&net, region, &c, &[1.5, 1.5]).unwrap();
    let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(500));
    assert_eq!(r.verdict, Verdict::Verified);
}

#[test]
fn crown_style_margin_attack_cracks_label_free_violations() {
    let net = fixed_net();
    // Violated safety property on the unit box (y0 > 0.3 fails near the
    // diagonal); CrownStyle has no label here, so its pre-attack must come
    // from margin-space PGD.
    let region = InputBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
    let c = Matrix::from_rows(&[&[1.0, 0.0]]);
    let p = RobustnessProblem::from_output_constraints(&net, region, &c, &[-0.3]).unwrap();
    let r = CrownStyle::default().verify(&p, &Budget::with_appver_calls(300));
    match r.verdict {
        Verdict::Falsified(w) => assert!(p.validate_witness(&w)),
        v => panic!("expected falsification via margin attack, got {v:?}"),
    }
}

#[test]
fn certificates_work_for_safety_properties_too() {
    let net = fixed_net();
    let region = InputBox::new(vec![0.6, 0.0], vec![1.0, 0.2]);
    let c = Matrix::from_rows(&[&[1.0, 0.0]]);
    let p = RobustnessProblem::from_output_constraints(&net, region, &c, &[-0.3]).unwrap();
    let (result, certificate) =
        AbonnVerifier::default().verify_with_certificate(&p, &Budget::with_appver_calls(500));
    assert_eq!(result.verdict, Verdict::Verified);
    let cert = certificate.expect("certificate for verified safety property");
    cert.check(&p, &abonn_repro::bound::Cascade::standard())
        .expect("safety certificate checks");
}
