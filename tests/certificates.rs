//! End-to-end certificate tests: verified runs on real trained models
//! produce certificates that check with an independent verifier, and
//! tampered certificates are rejected.

use abonn_repro::bound::{Cascade, DeepPoly, LpVerifier};
use abonn_repro::core::{
    AbonnVerifier, Budget, Certificate, ProofNode, RobustnessProblem, Verdict,
};
use abonn_repro::data::{suite, zoo::ModelKind, SuiteConfig};
use std::sync::Arc;
use std::time::Duration;

fn checker() -> Cascade {
    // DeepPoly first, exact LP as the decisive tier: leaves closed via the
    // LP fallback in the search still check.
    Cascade::new(vec![Arc::new(DeepPoly::new()), Arc::new(LpVerifier::new())])
}

#[test]
fn verified_mnist_instances_yield_checkable_certificates() {
    let kind = ModelKind::MnistL2;
    let (network, _) = kind.trained_model(51);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 6,
            seed: 52,
        },
    );
    let budget = Budget::with_appver_calls(300).and_wall_limit(Duration::from_secs(5));
    let verifier = AbonnVerifier::default();
    let mut checked = 0;
    for inst in &instances {
        let problem =
            RobustnessProblem::new(&network, inst.input.clone(), inst.label, inst.epsilon)
                .expect("valid instance");
        let (result, certificate) = verifier.verify_with_certificate(&problem, &budget);
        match result.verdict {
            Verdict::Verified => {
                let cert = certificate.expect("verified run must produce a certificate");
                let stats = cert
                    .check(&problem, &checker())
                    .expect("certificate must check");
                assert!(stats.leaves >= 1);
                checked += 1;
            }
            Verdict::Falsified(_) => {
                assert!(certificate.is_none(), "falsified runs carry a witness, not a proof");
            }
            Verdict::Timeout => {
                // Timeouts yield a *partial* certificate: well-formed, but
                // with open obligations, so it must not check.
                let cert = certificate.expect("timed-out run must produce a partial certificate");
                assert!(!cert.is_complete(), "timeout certificate cannot be complete");
                assert!(cert.num_open() >= 1);
                assert!(
                    cert.check(&problem, &checker()).is_err(),
                    "a partial certificate must not check"
                );
            }
        }
    }
    assert!(
        checked > 0,
        "no instance verified; cannot exercise certificates"
    );
}

#[test]
fn tampered_certificate_is_rejected() {
    let kind = ModelKind::MnistL2;
    let (network, _) = kind.trained_model(53);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 8,
            seed: 54,
        },
    );
    let budget = Budget::with_appver_calls(400).and_wall_limit(Duration::from_secs(5));
    let verifier = AbonnVerifier::default();
    for inst in &instances {
        let problem =
            RobustnessProblem::new(&network, inst.input.clone(), inst.label, inst.epsilon)
                .expect("valid instance");
        let (result, certificate) = verifier.verify_with_certificate(&problem, &budget);
        let (Verdict::Verified, Some(cert)) = (&result.verdict, certificate) else {
            continue;
        };
        // Only interesting when the proof actually branched.
        if cert.depth() == 0 {
            continue;
        }
        // Tamper: replace the whole tree by a single leaf — the root
        // sub-problem was a false alarm by construction, so this must fail.
        let tampered = Certificate::new(ProofNode::root_leaf());
        // The *weak* DeepPoly checker must reject the trivial proof.
        assert!(
            tampered.check(&problem, &DeepPoly::new()).is_err()
                || cert.check(&problem, &checker()).is_ok(),
            "a branching proof collapsed to a leaf should not check with the \
             same-strength verifier"
        );
        // And the genuine certificate still checks.
        cert.check(&problem, &checker())
            .expect("real certificate checks");
        return; // one branching instance is enough
    }
    // If no instance branched the test is vacuous but not failing: the
    // calibration strongly favours branching instances, so flag it.
    eprintln!("warning: no branching verified instance found for tamper test");
}
