//! End-to-end soundness-audit tests: partial certificates from timed-out
//! runs of all three engines must carry open obligations that exactly
//! cover the unexplored region, and corrupted certificates must be
//! rejected by the independent checker.

use abonn_repro::bound::{DeepPoly, NeuronId, SplitSign};
use abonn_repro::check::fuzz::{DenseSpec, NetSpec};
use abonn_repro::check::{audit_certificate, audit_partial, AuditError};
use abonn_repro::core::heuristics::HeuristicKind;
use abonn_repro::core::{
    AbonnVerifier, BabBaseline, Budget, Certificate, CrownStyle, ProofNode, RobustnessProblem,
    Verdict,
};
use std::sync::Arc;

/// The gate net: margin `x0 − 0.2·relu(x0+x1−1) − 0.2·relu(x0+x1−0.9)`
/// vs `x1`. Robust at `(0.8, 0.2)` with ε = 0.28, but the subtracted
/// unstable gates keep the one-shot relaxation loose, so every engine
/// must branch — partial certificates with open obligations appear at
/// small budgets.
fn gate_instance() -> RobustnessProblem {
    let spec = NetSpec {
        input_dim: 2,
        layers: vec![
            DenseSpec {
                weights: vec![
                    vec![1.0, 1.0],
                    vec![1.0, 1.0],
                    vec![1.0, 0.0],
                    vec![0.0, 1.0],
                ],
                bias: vec![-1.0, -0.9, 0.0, 0.0],
            },
            DenseSpec {
                weights: vec![vec![-0.2, -0.2, 1.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]],
                bias: vec![0.0, 0.0],
            },
        ],
    };
    RobustnessProblem::new(&spec.build(), vec![0.8, 0.2], 0, 0.28).expect("valid instance")
}

/// Runs every engine at several tiny budgets; every `Timeout` must come
/// with a partial certificate whose open leaves pass the exact-cover
/// audit, and every `Verified` with a complete certificate that passes
/// the strict audit.
#[test]
fn timed_out_engines_emit_exactly_covering_open_obligations() {
    let problem = gate_instance();
    let mut timeouts_audited = 0usize;
    let mut open_obligations = 0usize;
    for calls in [1usize, 2, 3, 4, 5, 8, 120] {
        let budget = Budget::with_appver_calls(calls);
        let planet = || Arc::new(DeepPoly::planet());
        let runs = [
            (
                "abonn",
                AbonnVerifier::default().verify_with_certificate(&problem, &budget),
            ),
            (
                "bab",
                BabBaseline::new(HeuristicKind::DeepSplit, planet())
                    .verify_with_certificate(&problem, &budget),
            ),
            (
                "crown",
                CrownStyle::default().verify_with_certificate(&problem, &budget),
            ),
        ];
        for (name, (result, certificate)) in runs {
            match result.verdict {
                Verdict::Timeout => {
                    let cert = certificate
                        .unwrap_or_else(|| panic!("{name}@{calls}: timeout without certificate"));
                    let report = audit_partial(&cert, &problem).unwrap_or_else(|e| {
                        panic!("{name}@{calls}: partial certificate rejected: {e}")
                    });
                    assert!(
                        report.open >= 1,
                        "{name}@{calls}: timed out but recorded no open obligation"
                    );
                    timeouts_audited += 1;
                    open_obligations += report.open;
                }
                Verdict::Verified => {
                    let cert = certificate
                        .unwrap_or_else(|| panic!("{name}@{calls}: verified without certificate"));
                    audit_certificate(&cert, &problem).unwrap_or_else(|e| {
                        panic!("{name}@{calls}: certificate rejected: {e}")
                    });
                }
                Verdict::Falsified(_) => {
                    panic!("{name}@{calls}: robust gate instance was falsified")
                }
            }
        }
    }
    assert!(
        timeouts_audited >= 3,
        "expected several timeouts at tiny budgets, audited {timeouts_audited}"
    );
    assert!(open_obligations >= timeouts_audited);
}

/// A partial certificate whose open obligation is rewritten to claim an
/// already-covered half-space leaves the true unexplored region
/// unaccounted for — the audit must reject it, not quietly accept the
/// remaining leaves.
#[test]
fn rewritten_open_obligation_is_rejected() {
    let problem = gate_instance();
    let g1 = NeuronId::new(0, 0); // gate x0 + x1 - 1
    let g2 = NeuronId::new(0, 1); // gate x0 + x1 - 0.9
    // Honest shape: the g1-positive side is fully split on g2 (one real
    // leaf, one vacuous since g1 ≥ 0 contradicts g2 ≤ 0); the
    // g1-negative side is still open.
    let pos_side = |s1: SplitSign| ProofNode::Branch {
        neuron: g2,
        pos: Box::new(ProofNode::leaf(vec![(g1, s1), (g2, SplitSign::Pos)])),
        neg: Box::new(ProofNode::leaf(vec![(g1, s1), (g2, SplitSign::Neg)])),
    };
    let honest = Certificate::new(ProofNode::Branch {
        neuron: g1,
        pos: Box::new(pos_side(SplitSign::Pos)),
        neg: Box::new(ProofNode::open(vec![(g1, SplitSign::Neg)])),
    });
    let report = audit_partial(&honest, &problem).expect("honest partial certificate checks");
    assert_eq!(report.open, 1);
    assert!(report.leaves >= 1 && report.vacuous_leaves >= 1);
    // Corrupted: the open node now claims the g1-positive half-space,
    // so the g1-negative region is covered by nothing.
    let corrupted = Certificate::new(ProofNode::Branch {
        neuron: g1,
        pos: Box::new(pos_side(SplitSign::Pos)),
        neg: Box::new(ProofNode::open(vec![(g1, SplitSign::Pos)])),
    });
    match audit_partial(&corrupted, &problem) {
        Err(AuditError::SplitMismatch { .. }
        | AuditError::NonCovering { .. }
        | AuditError::Overlap { .. }) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
}

/// An engine-emitted certificate, re-rooted with flipped split phases,
/// must be rejected end-to-end by the independent checker.
#[test]
fn flipped_phase_in_engine_certificate_is_rejected() {
    let problem = gate_instance();
    let (result, certificate) =
        AbonnVerifier::default().verify_with_certificate(&problem, &Budget::with_appver_calls(200));
    assert_eq!(result.verdict, Verdict::Verified, "gate instance verifies");
    let cert = certificate.expect("verified run emits a certificate");
    audit_certificate(&cert, &problem).expect("honest certificate checks");
    let flipped = Certificate::new(flip(cert.root()));
    let err = audit_certificate(&flipped, &problem)
        .expect_err("flipped certificate must be rejected");
    assert!(
        matches!(err, AuditError::SplitMismatch { .. }),
        "expected a split mismatch, got {err:?}"
    );
}

/// Recursively flips every recorded split phase while leaving the tree
/// structure (and hence the branch path) untouched.
fn flip(node: &ProofNode) -> ProofNode {
    let flip_splits = |splits: &[(NeuronId, SplitSign)]| {
        splits
            .iter()
            .map(|&(n, s)| {
                let flipped = match s {
                    SplitSign::Pos => SplitSign::Neg,
                    SplitSign::Neg => SplitSign::Pos,
                };
                (n, flipped)
            })
            .collect::<Vec<_>>()
    };
    match node {
        ProofNode::Leaf { splits } => ProofNode::Leaf {
            splits: flip_splits(splits),
        },
        ProofNode::Open { splits } => ProofNode::Open {
            splits: flip_splits(splits),
        },
        ProofNode::Branch { neuron, pos, neg } => ProofNode::Branch {
            neuron: *neuron,
            pos: Box::new(flip(pos)),
            neg: Box::new(flip(neg)),
        },
    }
}
