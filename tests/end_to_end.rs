//! Cross-crate integration: train → specify → verify with all three
//! approaches, checking verdict agreement and witness validity.

use abonn_repro::core::{
    AbonnVerifier, BabBaseline, Budget, CrownStyle, RobustnessProblem, Verdict, Verifier,
};
use abonn_repro::data::{suite, zoo::ModelKind, SuiteConfig};
use std::time::Duration;

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Falsified(_) => "falsified",
        Verdict::Timeout => "timeout",
    }
}

#[test]
fn all_approaches_agree_on_mnist_l2_instances() {
    let kind = ModelKind::MnistL2;
    let (network, _) = kind.trained_model(21);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 5,
            seed: 13,
        },
    );
    assert!(!instances.is_empty(), "suite generation produced instances");

    let budget = Budget::with_appver_calls(300).and_wall_limit(Duration::from_secs(5));
    let verifiers: Vec<Box<dyn Verifier>> = vec![
        Box::new(AbonnVerifier::default()),
        Box::new(BabBaseline::default()),
        Box::new(CrownStyle::default()),
    ];

    for instance in &instances {
        let problem = RobustnessProblem::new(
            &network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )
        .expect("valid instance");
        let mut solved_verdicts = Vec::new();
        for v in &verifiers {
            let result = v.verify(&problem, &budget);
            if let Verdict::Falsified(w) = &result.verdict {
                assert!(
                    problem.validate_witness(w),
                    "{} returned an invalid witness on instance {}",
                    v.name(),
                    instance.id
                );
            }
            if result.verdict.is_solved() {
                solved_verdicts.push(verdict_kind(&result.verdict));
            }
        }
        // Everyone who finished must say the same thing.
        assert!(
            solved_verdicts.windows(2).all(|w| w[0] == w[1]),
            "approaches disagree on instance {}: {solved_verdicts:?}",
            instance.id
        );
    }
}

#[test]
fn conv_model_pipeline_works_end_to_end() {
    let kind = ModelKind::CifarBase;
    let (network, _) = kind.trained_model(22);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 2,
            seed: 14,
        },
    );
    assert!(!instances.is_empty());
    let budget = Budget::with_appver_calls(120).and_wall_limit(Duration::from_secs(6));
    for instance in &instances {
        let problem = RobustnessProblem::new(
            &network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )
        .expect("valid instance");
        let result = AbonnVerifier::default().verify(&problem, &budget);
        // The run must terminate within budget with consistent stats.
        assert!(result.stats.appver_calls <= budget.max_appver_calls + 2);
        if let Verdict::Falsified(w) = &result.verdict {
            assert!(problem.validate_witness(w));
        }
    }
}

#[test]
fn verified_verdicts_resist_a_strong_attack() {
    use abonn_repro::attack::Pgd;
    let kind = ModelKind::MnistL2;
    let (network, _) = kind.trained_model(23);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 6,
            seed: 15,
        },
    );
    let budget = Budget::with_appver_calls(300).and_wall_limit(Duration::from_secs(5));
    let mut checked = 0;
    for instance in &instances {
        let problem = RobustnessProblem::new(
            &network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )
        .expect("valid instance");
        let result = AbonnVerifier::default().verify(&problem, &budget);
        if result.verdict == Verdict::Verified {
            // A verified region must defeat a much stronger attack than
            // anything used internally.
            let attack = Pgd::new(80, 10, 0.2, 99);
            let adv = attack.attack(
                &network,
                instance.label,
                problem.region().lo(),
                problem.region().hi(),
            );
            assert!(
                adv.is_none(),
                "PGD cracked an instance ABONN verified (id {})",
                instance.id
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no instance was verified; suite is degenerate");
}
