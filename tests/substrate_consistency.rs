//! Cross-crate consistency: lowering, bound soundness, and spec encoding
//! checked against each other on the real benchmark models.

use abonn_repro::bound::{AlphaCrown, AppVer, DeepPoly, Ibp, SplitSet};
use abonn_repro::core::RobustnessProblem;
use abonn_repro::data::zoo::ModelKind;
use abonn_repro::nn::CanonicalNetwork;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn lowered_zoo_models_match_direct_forward() {
    let mut rng = SmallRng::seed_from_u64(77);
    for kind in ModelKind::ALL {
        let net = kind.architecture(5);
        let canon = CanonicalNetwork::from_network(&net).expect("zoo models lower");
        for _ in 0..5 {
            let x: Vec<f64> = (0..net.input_dim())
                .map(|_| rng.gen_range(0.0..1.0))
                .collect();
            let direct = net.forward(&x);
            let lowered = canon.forward(&x);
            for (a, b) in direct.iter().zip(&lowered) {
                assert!(
                    (a - b).abs() < 1e-8,
                    "{kind:?}: lowering mismatch {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn margin_net_sign_matches_classification_on_trained_model() {
    let (net, data) = ModelKind::MnistL2.trained_model(31);
    let problem =
        RobustnessProblem::new(&net, data.inputs[0].clone(), data.labels[0], 0.05).unwrap();
    let mut rng = SmallRng::seed_from_u64(32);
    for _ in 0..30 {
        let x: Vec<f64> = problem
            .region()
            .lo()
            .iter()
            .zip(problem.region().hi())
            .map(|(&l, &h)| rng.gen_range(l..=h))
            .collect();
        let margins = problem.margin_net().forward(&x);
        let all_positive = margins.iter().all(|&m| m > 0.0);
        let correctly_classified = Some(net.classify(&x)) == problem.label();
        // all margins positive ⇒ correctly classified; a violated margin
        // ⇒ misclassified (ties break toward misclassification).
        if all_positive {
            assert!(correctly_classified, "positive margins but misclassified");
        }
        if !correctly_classified {
            assert!(
                margins.iter().any(|&m| m <= 0.0),
                "misclassified but margins all positive"
            );
        }
    }
}

#[test]
fn bound_engines_are_sound_on_a_trained_conv_model() {
    let (net, data) = ModelKind::CifarBase.trained_model(33);
    let problem =
        RobustnessProblem::new(&net, data.inputs[1].clone(), data.labels[1], 0.01).unwrap();
    let verifiers: Vec<Box<dyn AppVer>> = vec![
        Box::new(Ibp::new()),
        Box::new(DeepPoly::new()),
        Box::new(AlphaCrown::new(1, 2, 0)),
    ];
    let mut rng = SmallRng::seed_from_u64(34);
    let samples: Vec<Vec<f64>> = (0..10)
        .map(|_| {
            problem
                .region()
                .lo()
                .iter()
                .zip(problem.region().hi())
                .map(|(&l, &h)| rng.gen_range(l..=h))
                .collect()
        })
        .collect();
    for v in &verifiers {
        let analysis = v.analyze(problem.margin_net(), problem.region(), &SplitSet::new());
        for x in &samples {
            let min_margin = problem
                .margin_net()
                .forward(x)
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            assert!(
                analysis.p_hat <= min_margin + 1e-6,
                "{}: p_hat {} exceeds concrete margin {min_margin}",
                v.name(),
                analysis.p_hat
            );
        }
    }
}

#[test]
fn deeppoly_dominates_ibp_on_every_zoo_model() {
    for kind in [ModelKind::MnistL2, ModelKind::MnistL4, ModelKind::CifarBase] {
        let (net, data) = kind.trained_model(35);
        let problem =
            RobustnessProblem::new(&net, data.inputs[2].clone(), data.labels[2], 0.02).unwrap();
        let ibp = Ibp::new().analyze(problem.margin_net(), problem.region(), &SplitSet::new());
        let dp = DeepPoly::new().analyze(problem.margin_net(), problem.region(), &SplitSet::new());
        assert!(
            dp.p_hat >= ibp.p_hat - 1e-9,
            "{kind:?}: DeepPoly {} looser than IBP {}",
            dp.p_hat,
            ibp.p_hat
        );
    }
}
