//! Compares the tightness/cost trade-off of the approximated-verifier
//! stack (IBP → DeepPoly → α-CROWN → LP) on one verification instance,
//! and shows how ReLU splits tighten each of them.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example compare_verifiers
//! ```

use abonn_repro::bound::{AlphaCrown, AppVer, DeepPoly, Ibp, LpVerifier, SplitSet, SplitSign};
use abonn_repro::core::RobustnessProblem;
use abonn_repro::data::zoo::ModelKind;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::MnistL2;
    println!("training {}...", kind.paper_name());
    let (network, data) = kind.trained_model(3);
    let problem = RobustnessProblem::new(&network, data.inputs[0].clone(), data.labels[0], 0.03)?;

    let verifiers: Vec<Box<dyn AppVer>> = vec![
        Box::new(Ibp::new()),
        Box::new(DeepPoly::new()),
        Box::new(AlphaCrown::default()),
        Box::new(LpVerifier::new()),
    ];

    println!("\nroot problem (no splits): p_hat per verifier");
    println!("{:<14} {:>12} {:>10}", "verifier", "p_hat", "time");
    let mut root_analysis = None;
    for v in &verifiers {
        let t = Instant::now();
        let analysis = v.analyze(problem.margin_net(), problem.region(), &SplitSet::new());
        println!(
            "{:<14} {:>12.5} {:>9.1}ms",
            v.name(),
            analysis.p_hat,
            t.elapsed().as_secs_f64() * 1e3
        );
        if v.name() == "DeepPoly" {
            root_analysis = Some(analysis);
        }
    }

    // Split the most unstable neuron and show the tightening on both
    // children — the basic BaB step.
    let analysis = root_analysis.expect("DeepPoly ran");
    let unstable = analysis.unstable_neurons(&SplitSet::new());
    println!("\n{} unstable ReLU neurons at the root", unstable.len());
    if let Some(&neuron) = unstable.first() {
        println!("splitting {neuron} and re-analyzing with DeepPoly:");
        for sign in [SplitSign::Pos, SplitSign::Neg] {
            let child = SplitSet::new().with(neuron, sign);
            let a = DeepPoly::new().analyze(problem.margin_net(), problem.region(), &child);
            println!(
                "  child {neuron}{sign}: p_hat = {:>12.5} (parent was {:.5})",
                a.p_hat, analysis.p_hat
            );
            assert!(
                a.infeasible || a.p_hat >= analysis.p_hat - 1e-9,
                "splitting must never loosen the bound"
            );
        }
    }
    Ok(())
}
