//! The paper's headline workflow end to end: train an MNIST-like
//! classifier, derive calibrated robustness instances, and race ABONN
//! against the breadth-first BaB baseline.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example mnist_robustness
//! ```

use abonn_repro::core::{AbonnVerifier, BabBaseline, Budget, RobustnessProblem, Verdict, Verifier};
use abonn_repro::data::{suite, zoo::ModelKind, SuiteConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::MnistL2;
    println!("training {} on synthetic data...", kind.paper_name());
    let (network, train_data) = kind.trained_model(42);
    let accuracy =
        abonn_repro::nn::train::accuracy(&network, &train_data.inputs, &train_data.labels);
    println!("training accuracy: {:.1}%", accuracy * 100.0);

    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 6,
            seed: 7,
        },
    );
    println!("generated {} verification instances\n", instances.len());

    let budget = Budget::with_appver_calls(400).and_wall_limit(Duration::from_secs(5));
    let abonn = AbonnVerifier::default();
    let bab = BabBaseline::default();

    println!(
        "{:<4} {:>8}   {:<12} {:>10}   {:<12} {:>10}  {:>8}",
        "id", "epsilon", "ABONN", "calls", "BaB", "calls", "speedup"
    );
    for instance in &instances {
        let problem = RobustnessProblem::new(
            &network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )?;
        let a = abonn.verify(&problem, &budget);
        let b = bab.verify(&problem, &budget);
        let speedup = b.stats.appver_calls as f64 / a.stats.appver_calls.max(1) as f64;
        println!(
            "{:<4} {:>8.4}   {:<12} {:>10}   {:<12} {:>10}  {:>7.1}x",
            instance.id,
            instance.epsilon,
            verdict_tag(&a.verdict),
            a.stats.appver_calls,
            verdict_tag(&b.verdict),
            b.stats.appver_calls,
            speedup,
        );
        // Sanity: when both conclude, they must agree.
        if a.verdict.is_solved() && b.verdict.is_solved() {
            assert_eq!(
                matches!(a.verdict, Verdict::Verified),
                matches!(b.verdict, Verdict::Verified),
                "verifiers disagreed on instance {}",
                instance.id
            );
        }
    }
    Ok(())
}

fn verdict_tag(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Falsified(_) => "falsified",
        Verdict::Timeout => "timeout",
    }
}
