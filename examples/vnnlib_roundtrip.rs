//! Interchange-format workflow: export a verification instance as a
//! VNN-LIB property plus a JSON model, reload both, and verify — the
//! round trip used when sharing benchmarks with other tools.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example vnnlib_roundtrip
//! ```

use abonn_repro::core::{AbonnVerifier, Budget, RobustnessProblem, Verifier};
use abonn_repro::data::{suite, zoo::ModelKind, SuiteConfig};
use abonn_repro::nn::io as nn_io;
use abonn_repro::vnnlib;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::MnistL2;
    println!("training {}...", kind.paper_name());
    let (network, _) = kind.trained_model(17);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 1,
            seed: 3,
        },
    );
    let instance = instances.first().ok_or("no instance generated")?;

    // Export: model as JSON, property as VNN-LIB.
    let dir = std::env::temp_dir().join("abonn-vnnlib-example");
    std::fs::create_dir_all(&dir)?;
    let model_path = dir.join("model.json");
    let prop_path = dir.join("property.vnnlib");
    nn_io::save_network(&network, &model_path)?;
    let text = vnnlib::write_robustness(
        &instance.input,
        instance.epsilon,
        instance.label,
        network.output_dim(),
    );
    std::fs::write(&prop_path, &text)?;
    println!("wrote {} and {}", model_path.display(), prop_path.display());

    // Import: reload both and rebuild the problem.
    let reloaded = nn_io::load_network(&model_path)?;
    let property = vnnlib::parse(&std::fs::read_to_string(&prop_path)?)?;
    let problem = RobustnessProblem::from_vnnlib(&reloaded, &property)?;
    println!(
        "reloaded problem: {} inputs, label {}, {} margin rows",
        property.num_inputs(),
        problem.label().expect("robustness shape"),
        problem.margin_net().output_dim(),
    );

    let result = AbonnVerifier::default().verify(&problem, &Budget::with_appver_calls(400));
    println!(
        "verdict: {:?} ({} AppVer calls)",
        result.verdict, result.stats.appver_calls
    );
    Ok(())
}
