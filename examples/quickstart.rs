//! Quickstart: verify local robustness of a tiny hand-built network with
//! ABONN, and see a falsification with a concrete counterexample.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use abonn_repro::core::{AbonnVerifier, Budget, RobustnessProblem, Verdict, Verifier};
use abonn_repro::nn::{Layer, Network, Shape};
use abonn_repro::tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-input, 2-class network with one hidden ReLU layer. Class 0 wins
    // whenever x0 is comfortably larger than x1.
    let network = Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                vec![0.0, 0.0, 0.0, 0.0],
            ),
            Layer::relu(),
            Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                vec![0.0, 0.0],
            ),
        ],
    )?;

    let verifier = AbonnVerifier::default();
    let budget = Budget::with_appver_calls(500);

    // Case 1: a robust instance — small ball far from the boundary. Ask
    // for a certificate so the "Verified" claim is independently checkable.
    let robust = RobustnessProblem::new(&network, vec![0.8, 0.2], 0, 0.05)?;
    let (result, certificate) = verifier.verify_with_certificate(&robust, &budget);
    println!(
        "robust instance   : verdict = {:?} ({} AppVer calls, tree size {})",
        result.verdict, result.stats.appver_calls, result.stats.tree_size
    );
    assert_eq!(result.verdict, Verdict::Verified);
    let certificate = certificate.expect("verified runs produce certificates");
    let stats = certificate.check(&robust, &abonn_repro::bound::Cascade::standard())?;
    println!(
        "certificate       : {} leaf obligations re-checked (depth {})",
        stats.leaves, stats.depth
    );

    // Case 2: a vulnerable instance — the ball crosses the decision
    // boundary, so ABONN hunts down a concrete counterexample.
    let vulnerable = RobustnessProblem::new(&network, vec![0.55, 0.45], 0, 0.2)?;
    let result = verifier.verify(&vulnerable, &budget);
    match &result.verdict {
        Verdict::Falsified(witness) => {
            println!(
                "vulnerable instance: counterexample found at {witness:?} \
                 ({} AppVer calls)",
                result.stats.appver_calls
            );
            assert!(vulnerable.validate_witness(witness));
            println!(
                "witness classifies as {} instead of {}",
                network.classify(witness),
                vulnerable.label().expect("robustness problems carry a label")
            );
        }
        v => println!("vulnerable instance: unexpected verdict {v:?}"),
    }
    Ok(())
}
