//! ACAS-Xu-style safety verification: instead of classification
//! robustness, the property constrains the network *outputs directly*
//! over an operating region — "the advisory score never exceeds a
//! threshold here". These are the properties of the classic airborne
//! collision-avoidance benchmark, expressed through
//! [`RobustnessProblem::from_output_constraints`].
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example acas_safety
//! ```

use abonn_repro::bound::InputBox;
use abonn_repro::core::{
    AbonnVerifier, BabBaseline, Budget, RobustnessProblem, Verdict, Verifier,
};
use abonn_repro::nn::{init, train, Layer, Network, Shape};
use abonn_repro::tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Trains a tiny "advisory controller": inputs are (distance, closing
/// speed) in [0, 1]; the network learns to score "alert" (output 0) high
/// when distance is small and speed is high.
fn train_controller() -> Network {
    let mut rng = SmallRng::seed_from_u64(404);
    let mut net = Network::new(
        Shape::Flat(2),
        vec![
            init::dense_xavier(2, 12, &mut rng),
            Layer::relu(),
            init::dense_xavier(12, 12, &mut rng),
            Layer::relu(),
            init::dense_xavier(12, 2, &mut rng),
        ],
    )
    .expect("valid architecture");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..300 {
        let distance = rng.gen_range(0.0..1.0);
        let speed = rng.gen_range(0.0..1.0);
        // Ground truth: alert when danger = speed − distance is positive.
        labels.push(usize::from(speed - distance > 0.0));
        inputs.push(vec![distance, speed]);
    }
    let report = train::train(
        &mut net,
        &inputs,
        &labels,
        &train::TrainConfig {
            epochs: 60,
            ..train::TrainConfig::default()
        },
    );
    println!("controller accuracy: {:.1}%", report.final_accuracy * 100.0);
    net
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = train_controller();

    // Property (safe region): far away and slow — distance in [0.8, 1.0],
    // speed in [0.0, 0.2]. Required: the "no alert" logit (output 0)
    // exceeds the "alert" logit (output 1) by a margin: y0 − y1 > 0.
    let far_and_slow = InputBox::new(vec![0.8, 0.0], vec![1.0, 0.2]);
    let c = Matrix::from_rows(&[&[1.0, -1.0]]);
    let safe = RobustnessProblem::from_output_constraints(&net, far_and_slow, &c, &[0.0])?;

    let budget = Budget::with_appver_calls(2_000);
    for verifier in [
        Box::new(AbonnVerifier::default()) as Box<dyn Verifier>,
        Box::new(BabBaseline::default()),
    ] {
        let result = verifier.verify(&safe, &budget);
        println!(
            "safe region, {:<30}: {:?} ({} calls)",
            verifier.name(),
            result.verdict,
            result.stats.appver_calls
        );
    }

    // Property expected to FAIL: the same margin requirement on a region
    // straddling the decision boundary.
    let boundary = InputBox::new(vec![0.4, 0.3], vec![0.6, 0.7]);
    let unsafe_prop = RobustnessProblem::from_output_constraints(&net, boundary, &c, &[0.0])?;
    let result = AbonnVerifier::default().verify(&unsafe_prop, &budget);
    match &result.verdict {
        Verdict::Falsified(w) => {
            println!(
                "boundary region: counterexample (distance, speed) = ({:.3}, {:.3})",
                w[0], w[1]
            );
            assert!(unsafe_prop.validate_witness(w));
        }
        v => println!("boundary region: {v:?}"),
    }
    Ok(())
}
