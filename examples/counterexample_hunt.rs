//! Reproduces the paper's motivating scenario (Fig. 2): on a *violated*
//! instance, ABONN's potentiality-guided exploration reaches a
//! counterexample after visiting far fewer sub-problems than breadth-first
//! BaB, because it dives into the most-violated branch first.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example counterexample_hunt
//! ```

use abonn_repro::attack::Pgd;
use abonn_repro::core::{
    AbonnVerifier, BabBaseline, Budget, CrownStyle, RobustnessProblem, Verdict, Verifier,
};
use abonn_repro::data::{suite, zoo::ModelKind, SuiteConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::CifarBase;
    println!("training {}...", kind.paper_name());
    let (network, _) = kind.trained_model(11);
    let instances = suite::build_instances(
        kind,
        &network,
        &SuiteConfig {
            per_model: 24,
            seed: 5,
        },
    );

    // Pick the violated instances: the ones a strong PGD attack cracks.
    let strong_attack = Pgd::new(60, 8, 0.2, 0);
    let violated: Vec<_> = instances
        .iter()
        .filter(|inst| {
            let lo: Vec<f64> = inst
                .input
                .iter()
                .map(|v| (v - inst.epsilon).max(0.0))
                .collect();
            let hi: Vec<f64> = inst
                .input
                .iter()
                .map(|v| (v + inst.epsilon).min(1.0))
                .collect();
            strong_attack
                .attack(&network, inst.label, &lo, &hi)
                .is_some()
        })
        .take(4)
        .collect();
    println!("found {} attackable (violated) instances\n", violated.len());

    let budget = Budget::with_appver_calls(500).and_wall_limit(Duration::from_secs(10));
    println!(
        "{:<4} {:>9}  {:>22} {:>22} {:>22}",
        "id", "epsilon", "ABONN", "BaB-baseline", "CROWN-style"
    );
    for inst in violated {
        let problem =
            RobustnessProblem::new(&network, inst.input.clone(), inst.label, inst.epsilon)?;
        let cell = |r: &abonn_repro::core::RunResult| {
            let tag = match &r.verdict {
                Verdict::Falsified(_) => "falsified",
                Verdict::Verified => "verified",
                Verdict::Timeout => "timeout",
            };
            format!("{tag} ({} calls)", r.stats.appver_calls)
        };
        let a = AbonnVerifier::default().verify(&problem, &budget);
        let b = BabBaseline::default().verify(&problem, &budget);
        let c = CrownStyle::default().verify(&problem, &budget);
        println!(
            "{:<4} {:>9.4}  {:>22} {:>22} {:>22}",
            inst.id,
            inst.epsilon,
            cell(&a),
            cell(&b),
            cell(&c),
        );
        if let Verdict::Falsified(w) = &a.verdict {
            assert!(problem.validate_witness(w), "ABONN witness must be real");
        }
    }
    println!("\n(the paper's RQ3: ABONN's advantage concentrates on violated instances)");
    Ok(())
}
