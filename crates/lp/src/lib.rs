#![forbid(unsafe_code)]
//! A dense, bounded-variable, two-phase simplex LP solver.
//!
//! The ABONN paper's evaluation uses GUROBI as the underlying solver for
//! LP-relaxation-based bounding. This crate is the from-scratch substitute:
//! a primal simplex implementation that natively supports per-variable
//! bounds `l ≤ x ≤ u` (including infinite bounds), `≤` / `≥` / `=` rows,
//! and minimisation or maximisation objectives. Bland's rule is used as an
//! anti-cycling fallback, so the solver terminates on degenerate problems.
//!
//! # Examples
//!
//! ```
//! use abonn_lp::{Problem, Relation, Sense, Status};
//!
//! // maximise x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  0 <= x, y <= 10
//! let mut p = Problem::new(2, Sense::Maximize);
//! p.set_objective(&[1.0, 1.0]);
//! p.set_bounds(0, 0.0, 10.0);
//! p.set_bounds(1, 0.0, 10.0);
//! p.add_row(&[1.0, 2.0], Relation::Le, 4.0);
//! p.add_row(&[3.0, 1.0], Relation::Le, 6.0);
//! let sol = p.solve()?;
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - 2.8).abs() < 1e-7);
//! # Ok::<(), abonn_lp::SolveError>(())
//! ```

mod revised;
mod simplex;

pub use revised::{reference_solver, set_reference_solver};
pub use simplex::{Problem, Relation, Sense, Solution, SolveError, Status, WarmStart};
