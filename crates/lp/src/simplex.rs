//! Bounded-variable primal simplex with a two-phase start.
//!
//! The implementation follows the textbook "simplex method with upper
//! bounds": nonbasic variables rest at one of their (finite) bounds, the
//! ratio test accounts for both basic-variable bounds and a bound flip of
//! the entering variable, and phase 1 minimises the sum of artificial
//! variables that absorb any initial row infeasibility.

use std::error::Error;
use std::fmt;

/// Feasibility tolerance: a value within `FEAS_TOL` of a bound counts as on
/// the bound.
pub(crate) const FEAS_TOL: f64 = 1e-7;
/// Pivot / reduced-cost tolerance.
pub(crate) const PIVOT_TOL: f64 = 1e-9;

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Relation of a constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a · x ≤ b`
    Le,
    /// `a · x ≥ b`
    Ge,
    /// `a · x = b`
    Eq,
}

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
}

/// Error returned by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The iteration limit was exceeded (should not happen with Bland's
    /// rule unless the problem is numerically pathological).
    IterationLimit,
    /// The problem definition is malformed (e.g. a lower bound above an
    /// upper bound).
    BadProblem(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::BadProblem(msg) => write!(f, "malformed problem: {msg}"),
        }
    }
}

impl Error for SolveError {}

/// Result of a successful solve.
///
/// `x` and `objective` are meaningful only when `status` is
/// [`Status::Optimal`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Outcome classification.
    pub status: Status,
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value at `x`, in the user's original sense.
    pub objective: f64,
    /// Simplex pivots (basis changes) this solve performed, phases 1 and 2
    /// combined. A call-based work counter: independent of wall time and
    /// identical across machines.
    pub pivots: usize,
    /// Cell writes spent on basis-change updates across the solve: tableau
    /// row eliminations for the dense path, FTRAN plus basis-inverse eta
    /// updates for the revised path. Like `pivots`, a call-based counter —
    /// the per-pivot work metric the revised simplex reduces.
    pub pivot_cells: usize,
    /// `true` when the solve started from an installed [`WarmStart`] basis
    /// (`false` for cold solves and for warm solves that fell back to the
    /// two-phase path because the basis was unrecoverable).
    pub warmed: bool,
    /// Snapshot of the optimal basis, for warm-starting a related solve
    /// via [`Problem::solve_warm`]. `None` unless `status` is
    /// [`Status::Optimal`] with a basis free of artificial variables.
    pub warm: Option<WarmStart>,
}

/// Where a nonbasic variable rests in a [`WarmStart`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rest {
    Lower,
    Upper,
    Free,
}

/// An optimal simplex basis captured from a solved [`Problem`], usable to
/// warm-start the solve of a perturbed problem with the same shape
/// (variable count and row count).
///
/// The snapshot is opaque: it records which variable is basic in each row
/// and the rest bound of every nonbasic variable, nothing tied to the
/// numeric tableau, so it stays valid after the problem's bounds, row
/// coefficients, or objective change.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    pub(crate) n: usize,
    pub(crate) m: usize,
    /// Basic variable per row: structural `0..n`, slack `n..n + m`.
    pub(crate) basis: Vec<usize>,
    /// Rest side of every structural and slack variable (entries for basic
    /// variables are placeholders).
    pub(crate) rests: Vec<Rest>,
}

/// A linear program with per-variable bounds.
///
/// Construct with [`Problem::new`], describe with [`set_objective`],
/// [`set_bounds`] and [`add_row`], then call [`solve`].
///
/// [`set_objective`]: Problem::set_objective
/// [`set_bounds`]: Problem::set_bounds
/// [`add_row`]: Problem::add_row
/// [`solve`]: Problem::solve
///
/// # Examples
///
/// ```
/// use abonn_lp::{Problem, Relation, Sense, Status};
///
/// let mut p = Problem::new(1, Sense::Minimize);
/// p.set_objective(&[1.0]);
/// p.set_bounds(0, -2.0, 5.0);
/// p.add_row(&[1.0], Relation::Ge, -1.0);
/// let sol = p.solve()?;
/// assert_eq!(sol.status, Status::Optimal);
/// assert!((sol.objective + 1.0).abs() < 1e-8);
/// # Ok::<(), abonn_lp::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) n: usize,
    pub(crate) sense: Sense,
    pub(crate) objective: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) rows: Vec<Vec<f64>>,
    pub(crate) relations: Vec<Relation>,
    pub(crate) rhs: Vec<f64>,
}

impl Problem {
    /// Creates a problem with `n` structural variables, a zero objective,
    /// and free (`-∞, +∞`) variables.
    #[must_use]
    pub fn new(n: usize, sense: Sense) -> Self {
        Self {
            n,
            sense,
            objective: vec![0.0; n],
            lower: vec![f64::NEG_INFINITY; n],
            upper: vec![f64::INFINITY; n],
            rows: Vec::new(),
            relations: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of structural variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if `c.len()` differs from the number of variables.
    pub fn set_objective(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.n, "objective length mismatch");
        self.objective.copy_from_slice(c);
    }

    /// Sets the bounds of variable `j` to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_bounds(&mut self, j: usize, lo: f64, hi: f64) {
        assert!(j < self.n, "variable index out of range");
        self.lower[j] = lo;
        self.upper[j] = hi;
    }

    /// Appends the constraint `coeffs · x (rel) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables.
    pub fn add_row(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) {
        assert_eq!(coeffs.len(), self.n, "row length mismatch");
        self.rows.push(coeffs.to_vec());
        self.relations.push(rel);
        self.rhs.push(rhs);
    }

    /// Solves the problem.
    ///
    /// Runs the revised-simplex engine ([`solve_revised`]) unless the
    /// process-wide reference switch
    /// ([`set_reference_solver`](crate::set_reference_solver)) selects the
    /// dense tableau ([`solve_dense`]). Both engines share the same pivot
    /// rules and the same canonical vertex extraction, so they return
    /// bit-identical solutions whenever they stop at the same optimal
    /// vertex (always the case for a unique optimum).
    ///
    /// [`solve_revised`]: Problem::solve_revised
    /// [`solve_dense`]: Problem::solve_dense
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadProblem`] when a variable has `lower >
    /// upper` or a non-finite coefficient appears, and
    /// [`SolveError::IterationLimit`] if the pivot budget is exhausted.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        if crate::revised::reference_solver() {
            self.solve_dense()
        } else {
            self.solve_revised()
        }
    }

    /// Solves with the dense-tableau engine regardless of the process-wide
    /// reference switch. Direct entry point for equivalence tests and
    /// benchmarks.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Problem::solve).
    pub fn solve_dense(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        let mut t = Tableau::build(self);
        let status = t.run()?;
        Ok(self.extract_parts(
            status,
            false,
            &t.x,
            || t.warm_snapshot(),
            t.pivots,
            t.pivot_cells,
        ))
    }

    /// Solves with the revised-simplex engine regardless of the
    /// process-wide reference switch. Direct entry point for equivalence
    /// tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Problem::solve).
    pub fn solve_revised(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        let mut r = crate::revised::Revised::build(self);
        let status = r.run()?;
        Ok(self.extract_parts(
            status,
            false,
            r.terminal_x(),
            || r.warm_snapshot(),
            r.pivots(),
            r.pivot_cells(),
        ))
    }

    /// Solves the problem starting from a previously captured basis.
    ///
    /// The basis is installed by re-deriving the pivoted tableau from the
    /// *current* problem data (so bound and row perturbations since the
    /// snapshot are honoured), primal feasibility is repaired by moving any
    /// out-of-bounds basic variable to its violated bound with an
    /// artificial absorbing the residual, and the usual phase-1/phase-2
    /// iteration finishes the job. When the basis is unrecoverable (shape
    /// mismatch, duplicate or numerically singular basis columns, or an
    /// iteration-limit stall), the solve falls back to the cold two-phase
    /// path; the returned [`Solution::warmed`] flag records which path ran.
    ///
    /// A warm solve reaches the same [`Status`] and optimal objective as a
    /// cold [`solve`](Problem::solve); because both extract the final
    /// solution canonically from the terminal *vertex* (see
    /// [`vertex_values`]) — not from the pivot path or even the terminal
    /// basis — they return bit-identical solutions whenever they stop at
    /// the same optimal vertex, degenerate or not (always the case for a
    /// unique optimum).
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Problem::solve).
    pub fn solve_warm(&self, warm: &WarmStart) -> Result<Solution, SolveError> {
        if crate::revised::reference_solver() {
            self.solve_warm_dense(warm)
        } else {
            self.solve_warm_revised(warm)
        }
    }

    /// Warm-started solve with the dense-tableau engine regardless of the
    /// process-wide reference switch.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Problem::solve).
    pub fn solve_warm_dense(&self, warm: &WarmStart) -> Result<Solution, SolveError> {
        self.validate()?;
        if let Some(mut t) = Tableau::build_warm(self, warm) {
            match t.run() {
                Ok(status) => {
                    return Ok(self.extract_parts(
                        status,
                        true,
                        &t.x,
                        || t.warm_snapshot(),
                        t.pivots,
                        t.pivot_cells,
                    ))
                }
                // A stall from a pathological warm basis is recoverable:
                // retry from scratch below.
                Err(SolveError::IterationLimit) => {}
                Err(e) => return Err(e),
            }
        }
        let mut t = Tableau::build(self);
        let status = t.run()?;
        Ok(self.extract_parts(
            status,
            false,
            &t.x,
            || t.warm_snapshot(),
            t.pivots,
            t.pivot_cells,
        ))
    }

    /// Warm-started solve with the revised-simplex engine regardless of
    /// the process-wide reference switch.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`](Problem::solve).
    pub fn solve_warm_revised(&self, warm: &WarmStart) -> Result<Solution, SolveError> {
        self.validate()?;
        if let Some(mut r) = crate::revised::Revised::build_warm(self, warm) {
            match r.run() {
                Ok(status) => {
                    return Ok(self.extract_parts(
                        status,
                        true,
                        r.terminal_x(),
                        || r.warm_snapshot(),
                        r.pivots(),
                        r.pivot_cells(),
                    ))
                }
                Err(SolveError::IterationLimit) => {}
                Err(e) => return Err(e),
            }
        }
        let mut r = crate::revised::Revised::build(self);
        let status = r.run()?;
        Ok(self.extract_parts(
            status,
            false,
            r.terminal_x(),
            || r.warm_snapshot(),
            r.pivots(),
            r.pivot_cells(),
        ))
    }

    /// Builds the `Solution` for a finished solve of either engine.
    /// Optimal solutions are re-derived canonically from the terminal
    /// vertex (see [`vertex_values`]; basis-based [`canonical_values`] as
    /// fallback) so the result is a pure function of `(problem, vertex)`
    /// rather than of the pivot path — or the engine — that found it.
    /// `terminal_x` holds the terminal variable values (structural, slack,
    /// then any artificials); `snapshot` is consulted only on optimality.
    fn extract_parts(
        &self,
        status: Status,
        warmed: bool,
        terminal_x: &[f64],
        snapshot: impl FnOnce() -> Option<WarmStart>,
        pivots: usize,
        pivot_cells: usize,
    ) -> Solution {
        if status != Status::Optimal {
            return Solution {
                status,
                x: vec![0.0; self.n],
                objective: 0.0,
                pivots,
                pivot_cells,
                warmed,
                warm: None,
            };
        }
        let warm = snapshot();
        let canonical = vertex_values(self, terminal_x)
            .or_else(|| warm.as_ref().and_then(|w| canonical_values(self, w)));
        let x = match &canonical {
            Some(full) => full[..self.n].to_vec(),
            None => terminal_x[..self.n].to_vec(),
        };
        let mut objective = 0.0;
        for (cj, xj) in self.objective.iter().zip(&x) {
            objective += cj * xj;
        }
        Solution {
            status: Status::Optimal,
            x,
            objective,
            pivots,
            pivot_cells,
            warmed,
            warm,
        }
    }

    fn validate(&self) -> Result<(), SolveError> {
        for j in 0..self.n {
            if self.lower[j] > self.upper[j] + FEAS_TOL {
                return Err(SolveError::BadProblem(format!(
                    "variable {j}: lower bound {} exceeds upper bound {}",
                    self.lower[j], self.upper[j]
                )));
            }
            if self.objective[j].is_nan() {
                return Err(SolveError::BadProblem(format!(
                    "variable {j}: NaN objective coefficient"
                )));
            }
        }
        for (i, row) in self.rows.iter().enumerate() {
            if row.iter().any(|v| !v.is_finite()) || !self.rhs[i].is_finite() {
                return Err(SolveError::BadProblem(format!(
                    "row {i}: non-finite coefficient or rhs"
                )));
            }
        }
        Ok(())
    }
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic(usize), // row index
    AtLower,
    AtUpper,
    /// Free nonbasic variable resting at zero.
    FreeZero,
}

struct Tableau {
    /// rows × total-vars coefficient matrix, kept pivoted so that basic
    /// columns are unit columns.
    a: Vec<Vec<f64>>,
    /// Current value of every variable.
    x: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    state: Vec<VarState>,
    /// basis[row] = variable index basic in that row.
    basis: Vec<usize>,
    /// Phase-2 minimisation objective over all variables.
    cost: Vec<f64>,
    n_structural: usize,
    /// First artificial variable index (artificials occupy the tail).
    first_artificial: usize,
    /// Simplex pivots performed (basis changes; bound flips excluded).
    pivots: usize,
    /// Tableau cell writes spent on those pivots (see
    /// [`Solution::pivot_cells`]).
    pivot_cells: usize,
}

/// Bounds of the slack variable encoding `rel` (see `Tableau::build`).
pub(crate) fn slack_bounds(rel: Relation) -> (f64, f64) {
    match rel {
        Relation::Le => (0.0, f64::INFINITY),
        Relation::Ge => (f64::NEG_INFINITY, 0.0),
        Relation::Eq => (0.0, 0.0),
    }
}

impl Tableau {
    fn build(p: &Problem) -> Self {
        let m = p.rows.len();
        let n = p.n;
        let n_slack = m;
        // Artificials are appended lazily below; reserve index space now.
        let total_known = n + n_slack;

        let mut lower = p.lower.clone();
        let mut upper = p.upper.clone();
        let mut cost: Vec<f64> = match p.sense {
            Sense::Minimize => p.objective.clone(),
            Sense::Maximize => p.objective.iter().map(|c| -c).collect(),
        };
        // Slack bounds encode the relation: a·x + s = b.
        for rel in &p.relations {
            let (lo, hi) = slack_bounds(*rel);
            lower.push(lo);
            upper.push(hi);
            cost.push(0.0);
        }

        // Initial nonbasic placement for structural variables.
        let mut state = Vec::with_capacity(total_known);
        let mut x = vec![0.0; total_known];
        for j in 0..n {
            if lower[j].is_finite() {
                state.push(VarState::AtLower);
                x[j] = lower[j];
            } else if upper[j].is_finite() {
                state.push(VarState::AtUpper);
                x[j] = upper[j];
            } else {
                state.push(VarState::FreeZero);
                x[j] = 0.0;
            }
        }
        // Slacks: placement decided per row below.
        for _ in 0..n_slack {
            state.push(VarState::AtLower); // provisional, fixed up below
        }

        let mut a: Vec<Vec<f64>> = Vec::with_capacity(m);
        for row in &p.rows {
            let mut r = vec![0.0; total_known];
            r[..n].copy_from_slice(row);
            a.push(r);
        }
        for (i, r) in a.iter_mut().enumerate() {
            r[n + i] = 1.0; // slack coefficient
        }

        let mut basis = Vec::with_capacity(m);
        let mut artificial_cols: Vec<(usize, f64)> = Vec::new(); // (row, residual sign)
        #[allow(clippy::needless_range_loop)] // `i` indexes three arrays in lockstep
        for i in 0..m {
            let sj = n + i;
            // Residual the slack would have to take for the row to hold.
            let mut dot = 0.0;
            for (j, &xj) in x[..n].iter().enumerate() {
                dot += a[i][j] * xj;
            }
            let need = p.rhs[i] - dot;
            if need >= lower[sj] - FEAS_TOL && need <= upper[sj] + FEAS_TOL {
                // Slack can be basic at `need`: row starts feasible.
                x[sj] = need.clamp(lower[sj], upper[sj]);
                state[sj] = VarState::Basic(i);
                basis.push(sj);
            } else {
                // Put the slack at its nearest bound and absorb the rest
                // with an artificial variable.
                let rest;
                if need < lower[sj] {
                    x[sj] = lower[sj];
                    state[sj] = VarState::AtLower;
                    rest = need - lower[sj];
                } else {
                    x[sj] = upper[sj];
                    state[sj] = VarState::AtUpper;
                    rest = need - upper[sj];
                }
                artificial_cols.push((i, rest));
                basis.push(usize::MAX); // patched when artificials are added
            }
        }

        let first_artificial = total_known;
        let n_art = artificial_cols.len();
        let total = total_known + n_art;
        for r in &mut a {
            r.resize(total, 0.0);
        }
        let mut lower2 = lower;
        let mut upper2 = upper;
        let mut x2 = x;
        let mut state2 = state;
        let mut cost2 = cost;
        lower2.resize(total, 0.0);
        upper2.resize(total, f64::INFINITY);
        x2.resize(total, 0.0);
        state2.resize(total, VarState::AtLower);
        cost2.resize(total, 0.0);
        for (k, &(row, rest)) in artificial_cols.iter().enumerate() {
            let aj = first_artificial + k;
            // Scale the row so the artificial enters with coefficient +1
            // while staying nonnegative; basic columns must be unit columns
            // for the tableau invariants to hold.
            if rest < 0.0 {
                for v in &mut a[row] {
                    *v = -*v;
                }
            }
            a[row][aj] = 1.0;
            x2[aj] = rest.abs();
            state2[aj] = VarState::Basic(row);
            basis[row] = aj;
        }

        Tableau {
            a,
            x: x2,
            lower: lower2,
            upper: upper2,
            state: state2,
            basis,
            cost: cost2,
            n_structural: n,
            first_artificial,
            pivots: 0,
            pivot_cells: 0,
        }
    }

    /// Rebuilds a tableau around a previously captured basis, honouring the
    /// *current* problem data. Returns `None` when the basis cannot be
    /// recovered: shape mismatch, duplicate/out-of-range basis entries, or
    /// a numerically singular basis column.
    fn build_warm(p: &Problem, warm: &WarmStart) -> Option<Tableau> {
        let m = p.rows.len();
        let n = p.n;
        let total_known = n + m;
        if warm.n != n || warm.m != m || warm.basis.len() != m || warm.rests.len() != total_known {
            return None;
        }
        let mut is_basic = vec![false; total_known];
        for &b in &warm.basis {
            if b >= total_known || is_basic[b] {
                return None;
            }
            is_basic[b] = true;
        }

        let mut lower = p.lower.clone();
        let mut upper = p.upper.clone();
        let mut cost: Vec<f64> = match p.sense {
            Sense::Minimize => p.objective.clone(),
            Sense::Maximize => p.objective.iter().map(|c| -c).collect(),
        };
        for rel in &p.relations {
            let (lo, hi) = slack_bounds(*rel);
            lower.push(lo);
            upper.push(hi);
            cost.push(0.0);
        }

        // Constraint matrix with the slack identity, plus a tracked rhs so
        // basic values can be read off after the basis is installed.
        let mut a: Vec<Vec<f64>> = Vec::with_capacity(m);
        for row in &p.rows {
            let mut r = vec![0.0; total_known];
            r[..n].copy_from_slice(row);
            a.push(r);
        }
        for (i, r) in a.iter_mut().enumerate() {
            r[n + i] = 1.0;
        }
        let mut rhs = p.rhs.clone();

        // Install the basis by Gauss–Jordan elimination. Each saved basic
        // variable is pivoted into the unassigned row where its column is
        // largest (partial pivoting; ties take the smallest row index), so
        // a basis that is recoverable under *some* row assignment is
        // recovered deterministically.
        let mut basis = vec![usize::MAX; m];
        let mut row_taken = vec![false; m];
        for &b in &warm.basis {
            let mut best_row = usize::MAX;
            let mut best = PIVOT_TOL;
            for (i, r) in a.iter().enumerate() {
                if !row_taken[i] && r[b].abs() > best {
                    best = r[b].abs();
                    best_row = i;
                }
            }
            if best_row == usize::MAX {
                return None; // singular basis column
            }
            let i = best_row;
            row_taken[i] = true;
            basis[i] = b;
            let inv = 1.0 / a[i][b];
            for v in &mut a[i] {
                *v *= inv;
            }
            rhs[i] *= inv;
            let pivot_row = a[i].clone();
            let pivot_rhs = rhs[i];
            for (i2, r) in a.iter_mut().enumerate() {
                if i2 == i {
                    continue;
                }
                let factor = r[b];
                if factor == 0.0 {
                    continue;
                }
                for (v, &q) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * q;
                }
                rhs[i2] -= factor * pivot_rhs;
            }
        }

        // Nonbasic variables rest where the snapshot recorded them, demoted
        // to a still-finite bound (or to free-at-zero) when the recorded
        // side is no longer finite after a perturbation.
        let mut state = vec![VarState::AtLower; total_known];
        let mut x = vec![0.0; total_known];
        for j in 0..total_known {
            if is_basic[j] {
                continue;
            }
            state[j] = match warm.rests[j] {
                Rest::Lower if lower[j].is_finite() => VarState::AtLower,
                Rest::Upper if upper[j].is_finite() => VarState::AtUpper,
                Rest::Lower if upper[j].is_finite() => VarState::AtUpper,
                Rest::Upper if lower[j].is_finite() => VarState::AtLower,
                _ => VarState::FreeZero,
            };
            x[j] = match state[j] {
                VarState::AtLower => lower[j],
                VarState::AtUpper => upper[j],
                _ => 0.0,
            };
        }
        // Basic values from the transformed rows: basic columns are unit
        // columns, so row `i` reads `x[basis[i]] + Σ_nonbasic a·x = rhs`.
        #[allow(clippy::needless_range_loop)] // `i` indexes basis/a/rhs in lockstep
        for i in 0..m {
            let b = basis[i];
            let mut dot = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                if j != b {
                    dot += a[i][j] * xj;
                }
            }
            x[b] = rhs[i] - dot;
            state[b] = VarState::Basic(i);
        }

        // Primal-feasibility repair: a basic variable pushed outside its
        // bounds by the perturbation is snapped to the violated bound and
        // an artificial absorbs the residual, exactly as in `build`; the
        // phase-1 run then repairs only these rows instead of starting the
        // whole basis from scratch.
        let mut artificial_rows: Vec<(usize, f64)> = Vec::new();
        #[allow(clippy::needless_range_loop)] // `i` indexes basis in lockstep with rows
        for i in 0..m {
            let b = basis[i];
            let viol_low = lower[b].is_finite() && x[b] < lower[b] - FEAS_TOL;
            let viol_high = upper[b].is_finite() && x[b] > upper[b] + FEAS_TOL;
            if !viol_low && !viol_high {
                continue;
            }
            let bound = if viol_low { lower[b] } else { upper[b] };
            let rest = x[b] - bound;
            x[b] = bound;
            state[b] = if viol_low {
                VarState::AtLower
            } else {
                VarState::AtUpper
            };
            artificial_rows.push((i, rest));
        }

        let first_artificial = total_known;
        let total = total_known + artificial_rows.len();
        for r in &mut a {
            r.resize(total, 0.0);
        }
        lower.resize(total, 0.0);
        upper.resize(total, f64::INFINITY);
        x.resize(total, 0.0);
        state.resize(total, VarState::AtLower);
        cost.resize(total, 0.0);
        for (k, &(row, rest)) in artificial_rows.iter().enumerate() {
            let aj = first_artificial + k;
            if rest < 0.0 {
                for v in &mut a[row] {
                    *v = -*v;
                }
                rhs[row] = -rhs[row];
            }
            a[row][aj] = 1.0;
            x[aj] = rest.abs();
            state[aj] = VarState::Basic(row);
            basis[row] = aj;
        }

        Some(Tableau {
            a,
            x,
            lower,
            upper,
            state,
            basis,
            cost,
            n_structural: n,
            first_artificial,
            pivots: 0,
            pivot_cells: 0,
        })
    }

    /// Captures the current basis as a [`WarmStart`], or `None` while an
    /// artificial variable is still basic (degenerate phase-1 leftovers).
    fn warm_snapshot(&self) -> Option<WarmStart> {
        let m = self.a.len();
        let mut basis = Vec::with_capacity(m);
        for &b in &self.basis {
            if b >= self.first_artificial {
                return None;
            }
            basis.push(b);
        }
        let mut rests = Vec::with_capacity(self.first_artificial);
        for j in 0..self.first_artificial {
            rests.push(match self.state[j] {
                VarState::AtUpper => Rest::Upper,
                VarState::FreeZero => Rest::Free,
                VarState::AtLower | VarState::Basic(_) => Rest::Lower,
            });
        }
        Some(WarmStart {
            n: self.n_structural,
            m,
            basis,
            rests,
        })
    }

    fn total_vars(&self) -> usize {
        self.x.len()
    }

    /// Reduced costs `d_j = c_j − c_B · T[:, j]` for the given cost vector.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let mut d = cost.to_vec();
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = cost[bi];
            if cb == 0.0 {
                continue;
            }
            for (dj, &aij) in d.iter_mut().zip(&self.a[i]) {
                *dj -= cb * aij;
            }
        }
        d
    }

    fn run(&mut self) -> Result<Status, SolveError> {
        // Phase 1: minimise the sum of artificial variables.
        if self.first_artificial < self.total_vars() {
            let mut phase1 = vec![0.0; self.total_vars()];
            for c in phase1[self.first_artificial..].iter_mut() {
                *c = 1.0;
            }
            let status = self.optimize(&phase1)?;
            let artificial: &[f64] = &self.x[self.first_artificial..];
            let infeas: f64 = artificial.iter().sum();
            if status != Status::Optimal || infeas > 1e-6 {
                return Ok(Status::Infeasible);
            }
            // Pin artificials to zero for phase 2 so they can never
            // re-enter with a nonzero value.
            for j in self.first_artificial..self.total_vars() {
                self.lower[j] = 0.0;
                self.upper[j] = 0.0;
                self.x[j] = 0.0;
            }
        }
        let phase2 = self.cost.clone();
        self.optimize(&phase2)
    }

    /// Runs primal simplex iterations with the given minimisation costs.
    fn optimize(&mut self, cost: &[f64]) -> Result<Status, SolveError> {
        let total = self.total_vars();
        let max_iter = 200 * (total + self.a.len() + 16);
        // Dantzig rule normally; switch to Bland's rule after a stall to
        // guarantee termination under degeneracy.
        let mut degenerate_steps = 0usize;

        for _ in 0..max_iter {
            let d = self.reduced_costs(cost);
            let use_bland = degenerate_steps > 40;
            let Some((enter, dir)) = self.pick_entering(&d, use_bland) else {
                return Ok(Status::Optimal);
            };
            match self.ratio_test(enter, dir) {
                RatioOutcome::Unbounded => return Ok(Status::Unbounded),
                RatioOutcome::BoundFlip(t) => {
                    self.apply_step(enter, dir, t);
                    self.state[enter] = match self.state[enter] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        s => s,
                    };
                    if t <= FEAS_TOL {
                        degenerate_steps += 1;
                    } else {
                        degenerate_steps = 0;
                    }
                }
                RatioOutcome::Pivot(t, row, leave_state) => {
                    self.apply_step(enter, dir, t);
                    self.pivot(row, enter, leave_state);
                    if t <= FEAS_TOL {
                        degenerate_steps += 1;
                    } else {
                        degenerate_steps = 0;
                    }
                }
            }
        }
        Err(SolveError::IterationLimit)
    }

    /// Chooses an entering variable and its direction (+1 increase, −1
    /// decrease), or `None` at optimality.
    fn pick_entering(&self, d: &[f64], bland: bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (var, dir, score)
        #[allow(clippy::needless_range_loop)] // `j` indexes `d` and `self.state`
        for j in 0..self.total_vars() {
            let (eligible, dir) = match self.state[j] {
                VarState::Basic(_) => (false, 0.0),
                VarState::AtLower => (d[j] < -PIVOT_TOL, 1.0),
                VarState::AtUpper => (d[j] > PIVOT_TOL, -1.0),
                VarState::FreeZero => {
                    if d[j] < -PIVOT_TOL {
                        (true, 1.0)
                    } else if d[j] > PIVOT_TOL {
                        (true, -1.0)
                    } else {
                        (false, 0.0)
                    }
                }
            };
            if !eligible {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            let score = d[j].abs();
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// Moves `x[enter]` by `dir * t` and updates basic values accordingly.
    fn apply_step(&mut self, enter: usize, dir: f64, t: f64) {
        if t == 0.0 {
            return;
        }
        self.x[enter] += dir * t;
        for (i, &bi) in self.basis.iter().enumerate() {
            self.x[bi] -= dir * t * self.a[i][enter];
        }
    }

    fn ratio_test(&self, enter: usize, dir: f64) -> RatioOutcome {
        // Limit from the entering variable's own opposite bound.
        let own_limit = if dir > 0.0 {
            self.upper[enter] - self.x[enter]
        } else {
            self.x[enter] - self.lower[enter]
        };
        let mut t_max = own_limit; // may be +inf
        let mut leaving: Option<(usize, VarState)> = None;

        for (i, &bi) in self.basis.iter().enumerate() {
            let delta = dir * self.a[i][enter]; // x_bi decreases by delta * t
            if delta > PIVOT_TOL {
                if self.lower[bi].is_finite() {
                    let t = (self.x[bi] - self.lower[bi]) / delta;
                    if t < t_max - FEAS_TOL
                        || (t < t_max + FEAS_TOL && better_leaving(&leaving, bi))
                    {
                        t_max = t.max(0.0);
                        leaving = Some((i, VarState::AtLower));
                    }
                }
            } else if delta < -PIVOT_TOL && self.upper[bi].is_finite() {
                let t = (self.upper[bi] - self.x[bi]) / (-delta);
                if t < t_max - FEAS_TOL || (t < t_max + FEAS_TOL && better_leaving(&leaving, bi)) {
                    t_max = t.max(0.0);
                    leaving = Some((i, VarState::AtUpper));
                }
            }
        }

        match leaving {
            None if t_max.is_infinite() => RatioOutcome::Unbounded,
            None => RatioOutcome::BoundFlip(t_max),
            Some((row, st)) => {
                if own_limit < t_max - FEAS_TOL {
                    RatioOutcome::BoundFlip(own_limit)
                } else {
                    RatioOutcome::Pivot(t_max, row, st)
                }
            }
        }
    }

    /// Pivots `enter` into the basis at `row`; the departing variable takes
    /// `leave_state`.
    fn pivot(&mut self, row: usize, enter: usize, leave_state: VarState) {
        self.pivots += 1;
        let total = self.total_vars();
        let leave = self.basis[row];
        let piv = self.a[row][enter];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot element too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.a[row] {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        let mut updated_rows = 0usize;
        for (i, r) in self.a.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[enter];
            if factor == 0.0 {
                continue;
            }
            updated_rows += 1;
            for (v, &p) in r.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
        }
        // Normalising the pivot row plus eliminating `enter` from each
        // touched row each rewrites a full `total`-wide tableau row — the
        // per-pivot cost the revised engine avoids.
        self.pivot_cells += total * (1 + updated_rows);
        self.basis[row] = enter;
        self.state[enter] = VarState::Basic(row);
        self.state[leave] = leave_state;
        // Snap the departing variable exactly onto its bound to stop
        // round-off from accumulating.
        self.x[leave] = match leave_state {
            VarState::AtLower => self.lower[leave],
            VarState::AtUpper => self.upper[leave],
            _ => self.x[leave],
        };
    }
}

/// Tie-break for the leaving variable: smallest variable index (Bland).
pub(crate) fn better_leaving(current: &Option<(usize, VarState)>, _candidate_var: usize) -> bool {
    current.is_none()
}

/// Re-derives the full variable vector (structural then slack) of an
/// optimal solution from the geometry of its terminal *vertex*,
/// independently of both the pivot path and the terminal basis.
///
/// At a vertex, every variable is either tight at one of its bounds or
/// determined by the equality rows. Degenerate vertices admit many bases —
/// a warm and a cold solve routinely stop at the *same* vertex through
/// *different* bases, and any basis-dependent extraction would then differ
/// in the last bits. This extraction instead (1) classifies each variable
/// by which bound its terminal value is tight against (`FEAS_TOL`,
/// lower-bound preferred), pinning tight variables exactly onto the bound,
/// then (2) solves the equality rows for the remaining interior variables
/// by Gaussian elimination with partial row pivoting over interior columns
/// taken in ascending variable order. The result is a pure function of
/// `(problem, tight-set)`, so two solves stopping at the same vertex
/// extract bit-identical solutions.
///
/// Returns `None` (caller falls back to basis-based extraction) when the
/// classification does not describe a consistent vertex: more interior
/// variables than rows, a rank-deficient interior system, leftover rows
/// with a non-trivial residual, or a solved value straying from the
/// terminal one (all signs of an interior variable sitting within
/// tolerance of a bound it is not actually tight against).
fn vertex_values(p: &Problem, terminal: &[f64]) -> Option<Vec<f64>> {
    let n = p.n;
    let m = p.rows.len();
    let total = n + m;
    let mut x = vec![0.0; total];
    let mut is_interior = vec![false; total];
    let mut interior: Vec<usize> = Vec::new();
    for j in 0..total {
        let (lo, hi) = if j < n {
            (p.lower[j], p.upper[j])
        } else {
            slack_bounds(p.relations[j - n])
        };
        let v = terminal[j];
        if lo.is_finite() && (v - lo).abs() <= FEAS_TOL {
            x[j] = lo;
        } else if hi.is_finite() && (v - hi).abs() <= FEAS_TOL {
            x[j] = hi;
        } else if !lo.is_finite() && !hi.is_finite() && v.abs() <= FEAS_TOL {
            // Free variable resting at zero.
            x[j] = 0.0;
        } else {
            is_interior[j] = true;
            interior.push(j);
        }
    }
    let f = interior.len();
    if f > m {
        return None;
    }
    // r = rhs − A·x_tight (column j of the constraint matrix is the
    // original row coefficients for structural variables and the identity
    // for slacks).
    let mut b = p.rhs.clone();
    for (i, bi) in b.iter_mut().enumerate() {
        let mut dot = 0.0;
        for (j, &xj) in x[..n].iter().enumerate() {
            if !is_interior[j] {
                dot += p.rows[i][j] * xj;
            }
        }
        let sj = n + i;
        if !is_interior[sj] {
            dot += x[sj];
        }
        *bi -= dot;
    }
    let scale = b.iter().fold(1.0_f64, |acc, v| acc.max(v.abs()));
    // Interior columns in ascending variable order; rows chosen by partial
    // pivoting — both depend only on (problem, tight-set).
    let mut a = vec![vec![0.0; f]; m];
    for (k, &j) in interior.iter().enumerate() {
        if j < n {
            for (i, row) in p.rows.iter().enumerate() {
                a[i][k] = row[j];
            }
        } else {
            a[j - n][k] = 1.0;
        }
    }
    for k in 0..f {
        let mut piv = k;
        let mut best = a[k][k].abs();
        for (i, row) in a.iter().enumerate().skip(k + 1) {
            let v = row[k].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best <= 1e-12 {
            return None;
        }
        a.swap(k, piv);
        b.swap(k, piv);
        let (head, tail) = a.split_at_mut(k + 1);
        let pivot_row = &head[k];
        let pivot_b = b[k];
        for (off, row) in tail.iter_mut().enumerate() {
            let factor = row[k] / pivot_row[k];
            if factor == 0.0 {
                continue;
            }
            row[k] = 0.0;
            for j in k + 1..f {
                row[j] -= factor * pivot_row[j];
            }
            b[k + 1 + off] -= factor * pivot_b;
        }
    }
    // The system is overdetermined; rows beyond the pivoted `f` are fully
    // eliminated, so a non-trivial leftover means the tight-set was wrong.
    for bi in &b[f..] {
        if bi.abs() > 1e-6 * scale {
            return None;
        }
    }
    let mut y = vec![0.0; f];
    for k in (0..f).rev() {
        let mut s = b[k];
        for j in k + 1..f {
            s -= a[k][j] * y[j];
        }
        y[k] = s / a[k][k];
    }
    for (k, &j) in interior.iter().enumerate() {
        let v = y[k];
        if !v.is_finite() || (v - terminal[j]).abs() > 1e-5 * (1.0 + v.abs()) {
            return None;
        }
        x[j] = v;
    }
    Some(x)
}

/// Basis-based fallback for [`vertex_values`]: nonbasic variables sit at
/// their recorded rest bound and the basic values solve `B·x_B = b − N·x_N`
/// by Gaussian elimination with partial pivoting over the basis columns
/// taken in ascending variable order — a pure function of
/// `(problem, basis set)`, still independent of the pivot path (though not
/// of which of a degenerate vertex's bases the solve stopped in).
///
/// Returns `None` when the basis matrix is numerically singular (the
/// caller then falls back to the tableau-accumulated values).
fn canonical_values(p: &Problem, warm: &WarmStart) -> Option<Vec<f64>> {
    let n = p.n;
    let m = p.rows.len();
    let total = n + m;
    let mut is_basic = vec![false; total];
    for &b in &warm.basis {
        is_basic[b] = true;
    }
    let mut x = vec![0.0; total];
    for j in 0..total {
        if is_basic[j] {
            continue;
        }
        let (lo, hi) = if j < n {
            (p.lower[j], p.upper[j])
        } else {
            slack_bounds(p.relations[j - n])
        };
        x[j] = match warm.rests[j] {
            Rest::Lower if lo.is_finite() => lo,
            Rest::Upper if hi.is_finite() => hi,
            Rest::Lower if hi.is_finite() => hi,
            Rest::Upper if lo.is_finite() => lo,
            _ => 0.0,
        };
    }
    // r = b − N·x_N. Column j of the constraint matrix is the original row
    // coefficients for structural variables and the identity for slacks.
    let mut r = p.rhs.clone();
    for (i, ri) in r.iter_mut().enumerate() {
        let mut dot = 0.0;
        for (j, &xj) in x[..n].iter().enumerate() {
            if !is_basic[j] {
                dot += p.rows[i][j] * xj;
            }
        }
        let sj = n + i;
        if !is_basic[sj] {
            dot += x[sj];
        }
        *ri -= dot;
    }
    // Basis matrix with columns in ascending variable order, so the
    // elimination path depends only on (problem, basis set) and not on
    // which row each variable happened to be basic in.
    let cols: Vec<usize> = (0..total).filter(|&j| is_basic[j]).collect();
    if cols.len() != m {
        return None;
    }
    let mut bmat = vec![vec![0.0; m]; m];
    for (k, &j) in cols.iter().enumerate() {
        if j < n {
            for (i, row) in p.rows.iter().enumerate() {
                bmat[i][k] = row[j];
            }
        } else {
            bmat[j - n][k] = 1.0;
        }
    }
    let y = gauss_solve(&mut bmat, &mut r)?;
    for (k, &j) in cols.iter().enumerate() {
        x[j] = y[k];
    }
    Some(x)
}

/// Dense Gaussian elimination with partial pivoting (ties take the
/// smallest row index). Consumes `a` and `b`; returns `None` on a
/// numerically singular matrix.
fn gauss_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let m = b.len();
    for k in 0..m {
        let mut piv = k;
        let mut best = a[k][k].abs();
        for (i, row) in a.iter().enumerate().skip(k + 1) {
            let v = row[k].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if best <= 1e-12 {
            return None;
        }
        a.swap(k, piv);
        b.swap(k, piv);
        let (head, tail) = a.split_at_mut(k + 1);
        let pivot_row = &head[k];
        let pivot_b = b[k];
        for (off, row) in tail.iter_mut().enumerate() {
            let factor = row[k] / pivot_row[k];
            if factor == 0.0 {
                continue;
            }
            row[k] = 0.0;
            for j in k + 1..m {
                row[j] -= factor * pivot_row[j];
            }
            b[k + 1 + off] -= factor * pivot_b;
        }
    }
    let mut y = vec![0.0; m];
    for k in (0..m).rev() {
        let mut s = b[k];
        for j in k + 1..m {
            s -= a[k][j] * y[j];
        }
        y[k] = s / a[k][k];
    }
    Some(y)
}

pub(crate) enum RatioOutcome {
    Unbounded,
    /// The entering variable travels `t` and flips to its opposite bound.
    BoundFlip(f64),
    /// Pivot: step `t`, leaving row, and the state the leaving variable
    /// lands in.
    Pivot(f64, usize, VarState),
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn maximize_classic_two_var() {
        // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 → 36 at (2,6)
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[3.0, 5.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.add_row(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_row(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_row(&[3.0, 2.0], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimize_with_ge_rows() {
        // min 2x + 3y, x + y >= 4, x >= 0, y >= 0 → 8 at (4, 0)
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[2.0, 3.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.add_row(&[1.0, 1.0], Relation::Ge, 4.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 8.0);
    }

    #[test]
    fn equality_constraint() {
        // min x - y, x + y = 2, 0 <= x,y <= 2 → -2 at (0, 2)
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[1.0, -1.0]);
        p.set_bounds(0, 0.0, 2.0);
        p.set_bounds(1, 0.0, 2.0);
        p.add_row(&[1.0, 1.0], Relation::Eq, 2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, -2.0);
        assert_close(s.x[0] + s.x[1], 2.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(1, Sense::Minimize);
        p.set_objective(&[1.0]);
        p.set_bounds(0, 0.0, 1.0);
        p.add_row(&[1.0], Relation::Ge, 2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(1, Sense::Maximize);
        p.set_objective(&[1.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn bounds_only_problem() {
        // No rows at all: optimum sits at a bound.
        let mut p = Problem::new(3, Sense::Minimize);
        p.set_objective(&[1.0, -2.0, 0.5]);
        for j in 0..3 {
            p.set_bounds(j, -1.0, 2.0);
        }
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, -1.0 - 4.0 - 0.5);
    }

    #[test]
    fn free_variable_with_equality() {
        // min x, x + y = 1, y in [0, 1], x free → x = 0 at y = 1.
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[1.0, 0.0]);
        p.set_bounds(1, 0.0, 1.0);
        p.add_row(&[1.0, 1.0], Relation::Eq, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x, y in [-3, -1], x + y >= -5
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, -3.0, -1.0);
        p.set_bounds(1, -3.0, -1.0);
        p.add_row(&[1.0, 1.0], Relation::Ge, -5.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn conflicting_bounds_is_bad_problem() {
        let mut p = Problem::new(1, Sense::Minimize);
        p.set_bounds(0, 2.0, 1.0);
        assert!(matches!(p.solve(), Err(SolveError::BadProblem(_))));
    }

    #[test]
    fn fixed_variable_bounds() {
        // A variable pinned by equal bounds must keep its value.
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 2.5, 2.5);
        p.set_bounds(1, 0.0, 1.0);
        p.add_row(&[1.0, 1.0], Relation::Le, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.x[0], 2.5);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints meet at the optimum.
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.add_row(&[1.0, 0.0], Relation::Le, 1.0);
        p.add_row(&[0.0, 1.0], Relation::Le, 1.0);
        p.add_row(&[1.0, 1.0], Relation::Le, 2.0);
        p.add_row(&[2.0, 1.0], Relation::Le, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn warm_start_reproduces_cold_solve_bit_for_bit() {
        // Same problem warm-started from its own optimal basis: zero
        // repair work, identical terminal basis, so the canonical
        // extraction must agree to the bit.
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[3.0, 5.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.add_row(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_row(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_row(&[3.0, 2.0], Relation::Le, 18.0);
        let cold = p.solve().unwrap();
        let warm = p.solve_warm(cold.warm.as_ref().unwrap()).unwrap();
        assert!(warm.warmed);
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        for (a, b) in warm.x.iter().zip(&cold.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Re-optimising from the optimal basis needs no pivots at all.
        assert_eq!(warm.pivots, 0);
        assert!(cold.pivots > 0);
    }

    #[test]
    fn warm_start_after_bound_tightening_matches_cold() {
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[-1.0, -2.0]);
        p.set_bounds(0, 0.0, 3.0);
        p.set_bounds(1, 0.0, 3.0);
        p.add_row(&[1.0, 1.0], Relation::Le, 4.0);
        let base = p.solve().unwrap();
        let ws = base.warm.clone().unwrap();
        // Tighten a bound so the old optimal vertex becomes infeasible;
        // the repair path must land on the same optimum as a cold solve.
        p.set_bounds(1, 0.0, 1.5);
        let cold = p.solve().unwrap();
        let warm = p.solve_warm(&ws).unwrap();
        assert!(warm.warmed);
        assert_eq!(warm.status, cold.status);
        assert_close(warm.objective, cold.objective);
        assert_close(warm.objective, -(2.5 + 2.0 * 1.5));
    }

    #[test]
    fn warm_start_after_objective_change_matches_cold() {
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[1.0, 0.0]);
        p.set_bounds(0, -1.0, 2.0);
        p.set_bounds(1, -1.0, 2.0);
        p.add_row(&[1.0, 1.0], Relation::Ge, 0.5);
        let first = p.solve().unwrap();
        let ws = first.warm.clone().unwrap();
        p.set_objective(&[0.0, 1.0]);
        let cold = p.solve().unwrap();
        let warm = p.solve_warm(&ws).unwrap();
        assert!(warm.warmed);
        assert_eq!(warm.status, Status::Optimal);
        assert_close(warm.objective, cold.objective);
    }

    #[test]
    fn warm_start_detects_infeasible_after_perturbation() {
        let mut p = Problem::new(1, Sense::Minimize);
        p.set_objective(&[1.0]);
        p.set_bounds(0, 0.0, 5.0);
        p.add_row(&[1.0], Relation::Ge, 1.0);
        let ws = p.solve().unwrap().warm.unwrap();
        p.set_bounds(0, 0.0, 0.5);
        let warm = p.solve_warm(&ws).unwrap();
        assert_eq!(warm.status, Status::Infeasible);
        assert_eq!(p.solve().unwrap().status, Status::Infeasible);
    }

    #[test]
    fn warm_start_shape_mismatch_falls_back_to_cold() {
        let mut small = Problem::new(1, Sense::Minimize);
        small.set_objective(&[1.0]);
        small.set_bounds(0, 0.0, 1.0);
        small.add_row(&[1.0], Relation::Le, 1.0);
        let ws = small.solve().unwrap().warm.unwrap();

        let mut other = Problem::new(2, Sense::Minimize);
        other.set_objective(&[2.0, 3.0]);
        other.set_bounds(0, 0.0, f64::INFINITY);
        other.set_bounds(1, 0.0, f64::INFINITY);
        other.add_row(&[1.0, 1.0], Relation::Ge, 4.0);
        let warm = other.solve_warm(&ws).unwrap();
        assert!(!warm.warmed, "mismatched basis must fall back to phase 1");
        assert_eq!(warm.status, Status::Optimal);
        assert_close(warm.objective, 8.0);
    }

    #[test]
    fn warm_start_singular_basis_falls_back_to_cold() {
        // Capture a basis where x0 is basic, then zero x0's column so the
        // basis matrix becomes singular: install must fail and the cold
        // fallback must still find the optimum of the modified problem.
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[-1.0, 0.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, 1.0);
        p.add_row(&[1.0, 1.0], Relation::Le, 2.0);
        let sol = p.solve().unwrap();
        let ws = sol.warm.unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-6, "x0 should be basic at 2");

        let mut q = Problem::new(2, Sense::Minimize);
        q.set_objective(&[0.0, -1.0]);
        q.set_bounds(0, 0.0, 1.0);
        q.set_bounds(1, 0.0, 1.0);
        q.add_row(&[0.0, 0.0], Relation::Le, 2.0);
        let warm = q.solve_warm(&ws).unwrap();
        assert!(!warm.warmed, "singular basis column must fall back");
        assert_eq!(warm.status, Status::Optimal);
        assert_close(warm.objective, -1.0);
    }

    #[test]
    fn solve_reports_pivots_and_warm_basis() {
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 0.0, 1.0);
        p.set_bounds(1, 0.0, 1.0);
        p.add_row(&[1.0, 1.0], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(s.warm.is_some());
        assert!(!s.warmed);
        // Non-optimal statuses carry no basis snapshot.
        let mut inf = Problem::new(1, Sense::Minimize);
        inf.set_bounds(0, 0.0, 1.0);
        inf.add_row(&[1.0], Relation::Ge, 2.0);
        let s = inf.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
        assert!(s.warm.is_none());
    }

    /// Brute-force reference for 2-variable LPs over a fine grid.
    fn grid_reference(p: &Problem) -> Option<f64> {
        let steps = 200;
        let mut best: Option<f64> = None;
        let (l0, u0) = (p.lower[0].max(-10.0), p.upper[0].min(10.0));
        let (l1, u1) = (p.lower[1].max(-10.0), p.upper[1].min(10.0));
        for i in 0..=steps {
            for j in 0..=steps {
                let x = l0 + (u0 - l0) * i as f64 / steps as f64;
                let y = l1 + (u1 - l1) * j as f64 / steps as f64;
                let feasible = p.rows.iter().enumerate().all(|(k, row)| {
                    let v = row[0] * x + row[1] * y;
                    match p.relations[k] {
                        Relation::Le => v <= p.rhs[k] + 1e-9,
                        Relation::Ge => v >= p.rhs[k] - 1e-9,
                        Relation::Eq => (v - p.rhs[k]).abs() <= 1e-6,
                    }
                });
                if feasible {
                    let obj = p.objective[0] * x + p.objective[1] * y;
                    let obj = match p.sense {
                        Sense::Minimize => obj,
                        Sense::Maximize => -obj,
                    };
                    best = Some(best.map_or(obj, |b: f64| b.min(obj)));
                }
            }
        }
        best.map(|b| match p.sense {
            Sense::Minimize => b,
            Sense::Maximize => -b,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random feasible-by-construction LPs: the solution must be
        /// feasible and at least as good as every grid point.
        #[test]
        fn optimal_beats_grid_samples(
            c0 in -3.0..3.0_f64, c1 in -3.0..3.0_f64,
            a in proptest::collection::vec((-2.0..2.0_f64, -2.0..2.0_f64, 0.1..3.0_f64), 0..4),
        ) {
            let mut p = Problem::new(2, Sense::Minimize);
            p.set_objective(&[c0, c1]);
            p.set_bounds(0, 0.0, 2.0);
            p.set_bounds(1, 0.0, 2.0);
            // Rows pass through x0 = (1, 1) with positive slack, so the
            // problem is always feasible.
            for (r0, r1, slack) in &a {
                p.add_row(&[*r0, *r1], Relation::Le, r0 + r1 + slack);
            }
            let s = p.solve().unwrap();
            prop_assert_eq!(s.status, Status::Optimal);
            // Feasibility of the reported point.
            for (k, row) in p.rows.iter().enumerate() {
                let v = row[0] * s.x[0] + row[1] * s.x[1];
                prop_assert!(v <= p.rhs[k] + 1e-6);
            }
            prop_assert!(s.x[0] >= -1e-9 && s.x[0] <= 2.0 + 1e-9);
            prop_assert!(s.x[1] >= -1e-9 && s.x[1] <= 2.0 + 1e-9);
            if let Some(reference) = grid_reference(&p) {
                prop_assert!(s.objective <= reference + 1e-4,
                    "solver {} worse than grid {}", s.objective, reference);
            }
        }

        /// Minimising and maximising the negated objective must agree.
        #[test]
        fn min_max_duality(
            c0 in -3.0..3.0_f64, c1 in -3.0..3.0_f64,
            b in 0.5..4.0_f64,
        ) {
            let build = |sense: Sense, c: [f64; 2]| {
                let mut p = Problem::new(2, sense);
                p.set_objective(&c);
                p.set_bounds(0, -1.0, 1.5);
                p.set_bounds(1, -1.0, 1.5);
                p.add_row(&[1.0, 1.0], Relation::Le, b);
                p
            };
            let min = build(Sense::Minimize, [c0, c1]).solve().unwrap();
            let max = build(Sense::Maximize, [-c0, -c1]).solve().unwrap();
            prop_assert_eq!(min.status, Status::Optimal);
            prop_assert_eq!(max.status, Status::Optimal);
            prop_assert!((min.objective + max.objective).abs() < 1e-6);
        }
    }
}
