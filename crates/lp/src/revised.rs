//! Revised simplex: the dense tableau's pivot rules on a factorized basis.
//!
//! [`Revised`] mirrors `Tableau`'s decision procedure — the same entering
//! rule, ratio test, tolerances, Bland fallback, two-phase structure, and
//! warm-basis install/repair — but never materialises the pivoted
//! `m × total` tableau. It keeps the original constraint columns sparse
//! and an explicit `m × m` basis inverse updated by product-form (eta)
//! steps, so one basis change costs `O(m · (m + nnz))` cell writes instead
//! of the dense row sweep's `O(m · total)` — the saving the
//! [`Solution::pivot_cells`] counter tracks. On `abonn-bound`'s triangle
//! LPs (where `m ≈ 2 · total`: one equality row per pre-activation plus
//! three facet rows per hidden neuron) that is a ~40% per-pivot cut; in
//! the wide regime (`total ≫ m`, the `lp/pivot_*` benches) the gap grows
//! with `total / m`.
//!
//! Determinism: both engines stop at an optimal *vertex*, and the
//! canonical extraction (`vertex_values` in `simplex.rs`) is a pure
//! function of `(problem, vertex)`. A dense and a revised solve of a
//! uniquely-optimal LP therefore return bit-identical solutions even
//! though their intermediate arithmetic differs; only the call counters
//! (`pivots`, `pivot_cells`) may diverge, and those never reach persisted
//! reports. The [`set_reference_solver`] escape hatch routes
//! `Problem::solve`/`solve_warm` back to the dense engine so the byte-diff
//! gates in `ci.sh` can prove exactly that.
//!
//! [`Solution::pivot_cells`]: crate::Solution::pivot_cells

use crate::simplex::{
    better_leaving, slack_bounds, Problem, RatioOutcome, Rest, Sense, SolveError, Status, VarState,
    WarmStart, FEAS_TOL, PIVOT_TOL,
};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide engine selector: `false` (default) runs the revised
/// simplex, `true` the dense reference tableau.
static REFERENCE: AtomicBool = AtomicBool::new(false);

/// Routes [`Problem::solve`] and [`Problem::solve_warm`] to the dense
/// reference tableau (`true`) or the revised simplex (`false`, the
/// default). Process-wide; flipped by the `--reference-kernels` CLI flag
/// and by equivalence harnesses.
pub fn set_reference_solver(on: bool) {
    REFERENCE.store(on, Ordering::SeqCst);
}

/// Current state of the reference-solver switch.
#[must_use]
pub fn reference_solver() -> bool {
    REFERENCE.load(Ordering::SeqCst)
}

/// Revised-simplex working state: sparse original columns plus an explicit
/// basis inverse, mirroring every scalar decision of the dense `Tableau`.
pub(crate) struct Revised {
    /// Original-space constraint columns in compressed-sparse-column form:
    /// `(row, value)` pairs in ascending row order, column `j` occupying
    /// `col_entries[col_start[j]..col_start[j + 1]]`. Structural columns
    /// come first (`0..n`), then slack units (`n..n + m`), then any
    /// artificials (see `build`/`build_warm` for their columns). One flat
    /// allocation instead of a `Vec` per column: the per-iteration pricing
    /// sweep walks `col_entries` contiguously.
    col_entries: Vec<(usize, f64)>,
    /// Column extents into `col_entries`; length `total + 1`.
    col_start: Vec<usize>,
    /// The same structural nonzeros in compressed-sparse-row form,
    /// `(column, value)` ascending within each row — the pricing sweep
    /// walks rows (skipping `y_i = 0`) so each iteration touches the
    /// matrix nonzeros once instead of setting up one short loop per
    /// column. Slack and artificial columns are not stored here; pricing
    /// handles their unit entries directly.
    row_entries: Vec<(usize, f64)>,
    /// Row extents into `row_entries`; length `m + 1`.
    row_start: Vec<usize>,
    /// Row-major `m × m` basis inverse. Initial row signs (the dense
    /// build's whole-row negations) are folded in here, so
    /// `binv · cols[j]` always reproduces the dense tableau's column `j`.
    binv: Vec<f64>,
    m: usize,
    /// Current value of every variable.
    x: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    state: Vec<VarState>,
    /// basis[row] = variable index basic in that row.
    basis: Vec<usize>,
    /// Phase-2 minimisation objective over all variables.
    cost: Vec<f64>,
    n_structural: usize,
    /// First artificial variable index (artificials occupy the tail).
    first_artificial: usize,
    pivots: usize,
    pivot_cells: usize,
    /// Scratch copy of the normalised pivot row during an eta update.
    eta: Vec<f64>,
}

/// CSC form of the original constraint matrix over structural and slack
/// variables: nonzeros of `p.rows` column by column, then one unit entry
/// per slack. Built in two row-major passes (count, then fill), so every
/// column's entries land in ascending row order without sorting.
fn csc_columns(p: &Problem) -> (Vec<(usize, f64)>, Vec<usize>) {
    let m = p.rows.len();
    let n = p.n;
    let total_known = n + m;
    let mut col_start = vec![0usize; total_known + 1];
    for row in &p.rows {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                col_start[j + 1] += 1;
            }
        }
    }
    for j in n..total_known {
        col_start[j + 1] = 1; // slack unit column
    }
    for j in 0..total_known {
        col_start[j + 1] += col_start[j];
    }
    let mut col_entries = vec![(0usize, 0.0); col_start[total_known]];
    let mut cursor: Vec<usize> = col_start[..total_known].to_vec();
    for (i, row) in p.rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                col_entries[cursor[j]] = (i, v);
                cursor[j] += 1;
            }
        }
    }
    for i in 0..m {
        col_entries[col_start[n + i]] = (i, 1.0);
    }
    (col_entries, col_start)
}

/// CSR form of the structural block of the constraint matrix: nonzeros of
/// `p.rows`, row by row, `(column, value)` pairs in ascending column
/// order.
fn csr_rows(p: &Problem) -> (Vec<(usize, f64)>, Vec<usize>) {
    let mut row_entries = Vec::new();
    let mut row_start = Vec::with_capacity(p.rows.len() + 1);
    row_start.push(0);
    for row in &p.rows {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                row_entries.push((j, v));
            }
        }
        row_start.push(row_entries.len());
    }
    (row_entries, row_start)
}

/// Per-variable bound/cost vectors extended over the slack block — the
/// shared preamble of `build` and `build_warm`, identical to the dense
/// builders.
fn extended_bounds(p: &Problem) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut lower = p.lower.clone();
    let mut upper = p.upper.clone();
    let mut cost: Vec<f64> = match p.sense {
        Sense::Minimize => p.objective.clone(),
        Sense::Maximize => p.objective.iter().map(|c| -c).collect(),
    };
    for rel in &p.relations {
        let (lo, hi) = slack_bounds(*rel);
        lower.push(lo);
        upper.push(hi);
        cost.push(0.0);
    }
    (lower, upper, cost)
}

impl Revised {
    /// Cold start: the same initial placement, slack-vs-artificial
    /// decision, and residual arithmetic as `Tableau::build`, with the
    /// dense build's whole-row negations folded into `binv` (which starts
    /// as the signed identity).
    pub(crate) fn build(p: &Problem) -> Self {
        let m = p.rows.len();
        let n = p.n;
        let total_known = n + m;
        let (mut lower, mut upper, mut cost) = extended_bounds(p);

        let mut state = Vec::with_capacity(total_known);
        let mut x = vec![0.0; total_known];
        for j in 0..n {
            if lower[j].is_finite() {
                state.push(VarState::AtLower);
                x[j] = lower[j];
            } else if upper[j].is_finite() {
                state.push(VarState::AtUpper);
                x[j] = upper[j];
            } else {
                state.push(VarState::FreeZero);
                x[j] = 0.0;
            }
        }
        for _ in 0..m {
            state.push(VarState::AtLower); // provisional, fixed up below
        }

        let (mut col_entries, mut col_start) = csc_columns(p);
        let (row_entries, row_start) = csr_rows(p);

        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }

        let mut basis = Vec::with_capacity(m);
        let mut artificial_cols: Vec<(usize, f64)> = Vec::new(); // (row, residual)
        for i in 0..m {
            let sj = n + i;
            // Residual the slack would have to take for the row to hold —
            // the exact arithmetic of the dense build.
            let mut dot = 0.0;
            for (j, &xj) in x[..n].iter().enumerate() {
                dot += p.rows[i][j] * xj;
            }
            let need = p.rhs[i] - dot;
            if need >= lower[sj] - FEAS_TOL && need <= upper[sj] + FEAS_TOL {
                x[sj] = need.clamp(lower[sj], upper[sj]);
                state[sj] = VarState::Basic(i);
                basis.push(sj);
            } else {
                let rest;
                if need < lower[sj] {
                    x[sj] = lower[sj];
                    state[sj] = VarState::AtLower;
                    rest = need - lower[sj];
                } else {
                    x[sj] = upper[sj];
                    state[sj] = VarState::AtUpper;
                    rest = need - upper[sj];
                }
                artificial_cols.push((i, rest));
                basis.push(usize::MAX); // patched when artificials are added
            }
        }

        let first_artificial = total_known;
        let total = total_known + artificial_cols.len();
        lower.resize(total, 0.0);
        upper.resize(total, f64::INFINITY);
        x.resize(total, 0.0);
        state.resize(total, VarState::AtLower);
        cost.resize(total, 0.0);
        for (k, &(row, rest)) in artificial_cols.iter().enumerate() {
            let aj = first_artificial + k;
            let sign = if rest < 0.0 { -1.0 } else { 1.0 };
            // The dense build negates the whole row; here the sign lands on
            // the basis-inverse row, and the artificial's original-space
            // column is the signed slack unit so `binv · col = e_row`.
            if rest < 0.0 {
                for v in &mut binv[row * m..(row + 1) * m] {
                    *v = -*v;
                }
            }
            col_entries.push((row, sign));
            col_start.push(col_entries.len());
            x[aj] = rest.abs();
            state[aj] = VarState::Basic(row);
            basis[row] = aj;
        }

        Revised {
            col_entries,
            col_start,
            row_entries,
            row_start,
            binv,
            m,
            x,
            lower,
            upper,
            state,
            basis,
            cost,
            n_structural: n,
            first_artificial,
            pivots: 0,
            pivot_cells: 0,
            eta: Vec::new(),
        }
    }

    /// Warm start around a previously captured basis. The basis is
    /// factorized by Gauss–Jordan on `[B | I]` with the *same* partial
    /// pivot rule (and the same arithmetic on the basis columns) as the
    /// dense tableau install, so a basis is recoverable here exactly when
    /// it is there — but the elimination sweeps `2m` columns instead of
    /// the dense install's `n + m`. Returns `None` on shape mismatch,
    /// duplicate basis entries, or a singular basis column.
    pub(crate) fn build_warm(p: &Problem, warm: &WarmStart) -> Option<Self> {
        let m = p.rows.len();
        let n = p.n;
        let total_known = n + m;
        if warm.n != n || warm.m != m || warm.basis.len() != m || warm.rests.len() != total_known {
            return None;
        }
        let mut is_basic = vec![false; total_known];
        for &b in &warm.basis {
            if b >= total_known || is_basic[b] {
                return None;
            }
            is_basic[b] = true;
        }
        let (mut lower, mut upper, mut cost) = extended_bounds(p);

        let (mut col_entries, mut col_start) = csc_columns(p);
        let (row_entries, row_start) = csr_rows(p);

        // Factorize the saved basis: columns in snapshot order, pivot rows
        // by partial pivoting over unassigned rows (ties take the smallest
        // index). The basis columns see the same row operations as in the
        // dense install, so pivot choices — and the singularity verdict —
        // match it decision for decision.
        let mut bmat = vec![0.0; m * m]; // row-major scratch, B in snapshot column order
        for (k, &b) in warm.basis.iter().enumerate() {
            for &(i, v) in &col_entries[col_start[b]..col_start[b + 1]] {
                bmat[i * m + k] = v;
            }
        }
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut basis = vec![usize::MAX; m];
        let mut row_taken = vec![false; m];
        let mut pivot_b = vec![0.0; m];
        let mut pivot_inv = vec![0.0; m];
        for (k, &b) in warm.basis.iter().enumerate() {
            let mut best_row = usize::MAX;
            let mut best = PIVOT_TOL;
            for i in 0..m {
                if !row_taken[i] && bmat[i * m + k].abs() > best {
                    best = bmat[i * m + k].abs();
                    best_row = i;
                }
            }
            if best_row == usize::MAX {
                return None; // singular basis column
            }
            let i = best_row;
            row_taken[i] = true;
            basis[i] = b;
            // Columns before `k` of `bmat` are never read again (the pivot
            // search and the factors below only look at column `k`), so the
            // sweeps cover `k..m` only; `binv` rows stay full-width.
            let inv = 1.0 / bmat[i * m + k];
            for v in &mut bmat[i * m + k..(i + 1) * m] {
                *v *= inv;
            }
            for v in &mut binv[i * m..(i + 1) * m] {
                *v *= inv;
            }
            pivot_b[k..m].copy_from_slice(&bmat[i * m + k..(i + 1) * m]);
            pivot_inv.copy_from_slice(&binv[i * m..(i + 1) * m]);
            for i2 in 0..m {
                if i2 == i {
                    continue;
                }
                let factor = bmat[i2 * m + k];
                if factor == 0.0 {
                    continue;
                }
                for (v, &q) in bmat[i2 * m + k..(i2 + 1) * m].iter_mut().zip(&pivot_b[k..m]) {
                    *v -= factor * q;
                }
                for (v, &q) in binv[i2 * m..(i2 + 1) * m].iter_mut().zip(&pivot_inv) {
                    *v -= factor * q;
                }
            }
        }

        // Nonbasic variables rest where the snapshot recorded them, with
        // the dense install's demotion rules for no-longer-finite sides.
        let mut state = vec![VarState::AtLower; total_known];
        let mut x = vec![0.0; total_known];
        for j in 0..total_known {
            if is_basic[j] {
                continue;
            }
            state[j] = match warm.rests[j] {
                Rest::Lower if lower[j].is_finite() => VarState::AtLower,
                Rest::Upper if upper[j].is_finite() => VarState::AtUpper,
                Rest::Lower if upper[j].is_finite() => VarState::AtUpper,
                Rest::Upper if lower[j].is_finite() => VarState::AtLower,
                _ => VarState::FreeZero,
            };
            x[j] = match state[j] {
                VarState::AtLower => lower[j],
                VarState::AtUpper => upper[j],
                _ => 0.0,
            };
        }
        // Basic values: x_B = B⁻¹ · (rhs − N · x_N).
        let mut r = p.rhs.clone();
        for (i, ri) in r.iter_mut().enumerate() {
            let mut dot = 0.0;
            for (j, &xj) in x[..n].iter().enumerate() {
                if !is_basic[j] {
                    dot += p.rows[i][j] * xj;
                }
            }
            let sj = n + i;
            if !is_basic[sj] {
                dot += x[sj];
            }
            *ri -= dot;
        }
        for (i, &b) in basis.iter().enumerate() {
            let mut v = 0.0;
            for (k, &rk) in r.iter().enumerate() {
                v += binv[i * m + k] * rk;
            }
            x[b] = v;
            state[b] = VarState::Basic(i);
        }

        // Primal-feasibility repair, exactly as in the dense install: snap
        // a violated basic variable to its bound and let an artificial
        // absorb the residual.
        let mut artificial_rows: Vec<(usize, f64)> = Vec::new();
        for (i, &b) in basis.iter().enumerate() {
            let viol_low = lower[b].is_finite() && x[b] < lower[b] - FEAS_TOL;
            let viol_high = upper[b].is_finite() && x[b] > upper[b] + FEAS_TOL;
            if !viol_low && !viol_high {
                continue;
            }
            let bound = if viol_low { lower[b] } else { upper[b] };
            let rest = x[b] - bound;
            x[b] = bound;
            state[b] = if viol_low {
                VarState::AtLower
            } else {
                VarState::AtUpper
            };
            artificial_rows.push((i, rest));
        }

        let first_artificial = total_known;
        let total = total_known + artificial_rows.len();
        lower.resize(total, 0.0);
        upper.resize(total, f64::INFINITY);
        x.resize(total, 0.0);
        state.resize(total, VarState::AtLower);
        cost.resize(total, 0.0);
        for (k, &(row, rest)) in artificial_rows.iter().enumerate() {
            let aj = first_artificial + k;
            let displaced = basis[row];
            let sign = if rest < 0.0 { -1.0 } else { 1.0 };
            if rest < 0.0 {
                for v in &mut binv[row * m..(row + 1) * m] {
                    *v = -*v;
                }
            }
            // Original-space column of the displaced basic variable,
            // signed: `binv` maps it to the repaired row's unit column
            // (the literal `e_row` the dense install writes).
            let (from, to) = (col_start[displaced], col_start[displaced + 1]);
            for e in from..to {
                let (i, v) = col_entries[e];
                col_entries.push((i, sign * v));
            }
            col_start.push(col_entries.len());
            x[aj] = rest.abs();
            state[aj] = VarState::Basic(row);
            basis[row] = aj;
        }

        Some(Revised {
            col_entries,
            col_start,
            row_entries,
            row_start,
            binv,
            m,
            x,
            lower,
            upper,
            state,
            basis,
            cost,
            n_structural: n,
            first_artificial,
            pivots: 0,
            pivot_cells: 0,
            eta: Vec::new(),
        })
    }

    /// Terminal variable values (structural, slack, artificials).
    pub(crate) fn terminal_x(&self) -> &[f64] {
        &self.x
    }

    pub(crate) fn pivots(&self) -> usize {
        self.pivots
    }

    pub(crate) fn pivot_cells(&self) -> usize {
        self.pivot_cells
    }

    fn total_vars(&self) -> usize {
        self.x.len()
    }

    /// Sparse entries of column `j`, ascending by row.
    fn col(&self, j: usize) -> &[(usize, f64)] {
        &self.col_entries[self.col_start[j]..self.col_start[j + 1]]
    }

    /// Two-phase driver, mirroring `Tableau::run`.
    pub(crate) fn run(&mut self) -> Result<Status, SolveError> {
        if self.first_artificial < self.total_vars() {
            let mut phase1 = vec![0.0; self.total_vars()];
            for c in phase1[self.first_artificial..].iter_mut() {
                *c = 1.0;
            }
            let status = self.optimize(&phase1)?;
            let mut infeas = 0.0;
            for &v in &self.x[self.first_artificial..] {
                infeas += v;
            }
            if status != Status::Optimal || infeas > 1e-6 {
                return Ok(Status::Infeasible);
            }
            // Pin artificials to zero for phase 2 so they can never
            // re-enter with a nonzero value.
            for j in self.first_artificial..self.total_vars() {
                self.lower[j] = 0.0;
                self.upper[j] = 0.0;
                self.x[j] = 0.0;
            }
        }
        let phase2 = self.cost.clone();
        self.optimize(&phase2)
    }

    /// Primal simplex iterations with the given minimisation costs — the
    /// dense loop with pricing through `y = c_B · B⁻¹` and the entering
    /// column resolved by FTRAN instead of a tableau lookup.
    fn optimize(&mut self, cost: &[f64]) -> Result<Status, SolveError> {
        let total = self.total_vars();
        let max_iter = 200 * (total + self.m + 16);
        let mut degenerate_steps = 0usize;
        let mut y = vec![0.0; self.m];
        let mut d = vec![0.0; total];
        let mut w = vec![0.0; self.m];

        for _ in 0..max_iter {
            self.price_into(cost, &mut y, &mut d);
            let use_bland = degenerate_steps > 40;
            let Some((enter, dir)) = self.pick_entering(&d, use_bland) else {
                return Ok(Status::Optimal);
            };
            self.ftran(enter, &mut w);
            match self.ratio_test(enter, dir, &w) {
                RatioOutcome::Unbounded => return Ok(Status::Unbounded),
                RatioOutcome::BoundFlip(t) => {
                    self.apply_step(enter, dir, t, &w);
                    self.state[enter] = match self.state[enter] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        s => s,
                    };
                    if t <= FEAS_TOL {
                        degenerate_steps += 1;
                    } else {
                        degenerate_steps = 0;
                    }
                }
                RatioOutcome::Pivot(t, row, leave_state) => {
                    self.apply_step(enter, dir, t, &w);
                    self.pivot(row, enter, leave_state, &w);
                    if t <= FEAS_TOL {
                        degenerate_steps += 1;
                    } else {
                        degenerate_steps = 0;
                    }
                }
            }
        }
        Err(SolveError::IterationLimit)
    }

    /// Reduced costs via the dual vector: `y = c_B · B⁻¹` (skipping zero
    /// basic costs, as the dense pricing skips zero `c_B` rows), then
    /// `d = c − yᵀA` scattered row-by-row through the CSR nonzeros,
    /// skipping `y_i = 0` rows. One pass over the matrix nonzeros per
    /// iteration — no per-column loop setup, and the same subtraction
    /// order per column as a dense row sweep. Slack columns subtract
    /// their unit `y_i` directly; artificial columns (at most a handful)
    /// go through their sparse CSC entries.
    fn price_into(&self, cost: &[f64], y: &mut [f64], d: &mut [f64]) {
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = cost[bi];
            if cb == 0.0 {
                continue;
            }
            for (yk, &v) in y.iter_mut().zip(&self.binv[i * self.m..(i + 1) * self.m]) {
                *yk += cb * v;
            }
        }
        d.copy_from_slice(cost);
        let n = self.n_structural;
        for i in 0..self.m {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            for &(j, v) in &self.row_entries[self.row_start[i]..self.row_start[i + 1]] {
                d[j] -= yi * v;
            }
            d[n + i] -= yi;
        }
        let artificials = self.first_artificial..self.total_vars();
        for (j, dj) in d[artificials.clone()].iter_mut().enumerate() {
            for &(r, v) in self.col(artificials.start + j) {
                *dj -= y[r] * v;
            }
        }
    }

    /// Chooses an entering variable and its direction — the dense rule
    /// (Dantzig by `|d|`, keep-first ties; first-eligible under Bland).
    /// The Dantzig sweep tests the score against the incumbent *before*
    /// matching on the variable state: a column only needs the eligibility
    /// match when its score strictly beats the best so far, and seeding
    /// the incumbent score with `PIVOT_TOL` encodes the strict `|d_j| >
    /// PIVOT_TOL` eligibility floor, so the hot path is one compare on the
    /// contiguous `d` array. Decision-for-decision identical to the dense
    /// `pick_entering`.
    fn pick_entering(&self, d: &[f64], bland: bool) -> Option<(usize, f64)> {
        let eligibility = |j: usize| -> (bool, f64) {
            match self.state[j] {
                VarState::Basic(_) => (false, 0.0),
                VarState::AtLower => (d[j] < -PIVOT_TOL, 1.0),
                VarState::AtUpper => (d[j] > PIVOT_TOL, -1.0),
                VarState::FreeZero => {
                    if d[j] < -PIVOT_TOL {
                        (true, 1.0)
                    } else if d[j] > PIVOT_TOL {
                        (true, -1.0)
                    } else {
                        (false, 0.0)
                    }
                }
            }
        };
        if bland {
            for j in 0..self.total_vars() {
                let (eligible, dir) = eligibility(j);
                if eligible {
                    return Some((j, dir));
                }
            }
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        let mut best_score = PIVOT_TOL;
        for (j, dj) in d.iter().enumerate() {
            let score = dj.abs();
            if score <= best_score {
                continue;
            }
            let (eligible, dir) = eligibility(j);
            if !eligible {
                continue;
            }
            best = Some((j, dir));
            best_score = score;
        }
        best
    }

    /// FTRAN: `w = B⁻¹ · A_enter`, the entering column in the current
    /// basis — the values the dense tableau holds at `a[:, enter]`.
    fn ftran(&self, enter: usize, w: &mut [f64]) {
        let col = self.col(enter);
        for (i, wi) in w.iter_mut().enumerate() {
            let row = &self.binv[i * self.m..(i + 1) * self.m];
            let mut s = 0.0;
            for &(r, v) in col {
                s += row[r] * v;
            }
            *wi = s;
        }
    }

    /// Bounded-variable ratio test — the dense test with the FTRAN result
    /// standing in for the tableau column.
    fn ratio_test(&self, enter: usize, dir: f64, w: &[f64]) -> RatioOutcome {
        let own_limit = if dir > 0.0 {
            self.upper[enter] - self.x[enter]
        } else {
            self.x[enter] - self.lower[enter]
        };
        let mut t_max = own_limit; // may be +inf
        let mut leaving: Option<(usize, VarState)> = None;

        for (i, &bi) in self.basis.iter().enumerate() {
            let delta = dir * w[i]; // x_bi decreases by delta * t
            if delta > PIVOT_TOL {
                if self.lower[bi].is_finite() {
                    let t = (self.x[bi] - self.lower[bi]) / delta;
                    if t < t_max - FEAS_TOL
                        || (t < t_max + FEAS_TOL && better_leaving(&leaving, bi))
                    {
                        t_max = t.max(0.0);
                        leaving = Some((i, VarState::AtLower));
                    }
                }
            } else if delta < -PIVOT_TOL && self.upper[bi].is_finite() {
                let t = (self.upper[bi] - self.x[bi]) / (-delta);
                if t < t_max - FEAS_TOL || (t < t_max + FEAS_TOL && better_leaving(&leaving, bi)) {
                    t_max = t.max(0.0);
                    leaving = Some((i, VarState::AtUpper));
                }
            }
        }

        match leaving {
            None if t_max.is_infinite() => RatioOutcome::Unbounded,
            None => RatioOutcome::BoundFlip(t_max),
            Some((row, st)) => {
                if own_limit < t_max - FEAS_TOL {
                    RatioOutcome::BoundFlip(own_limit)
                } else {
                    RatioOutcome::Pivot(t_max, row, st)
                }
            }
        }
    }

    /// Moves `x[enter]` by `dir * t` and updates basic values through the
    /// FTRAN column.
    fn apply_step(&mut self, enter: usize, dir: f64, t: f64, w: &[f64]) {
        if t == 0.0 {
            return;
        }
        self.x[enter] += dir * t;
        for (i, &bi) in self.basis.iter().enumerate() {
            self.x[bi] -= dir * t * w[i];
        }
    }

    /// Pivots `enter` into the basis at `row` by a product-form update of
    /// `B⁻¹`: scale the pivot row by `1 / w[row]`, then eliminate `w[i]`
    /// from every other row — `m`-wide sweeps instead of the dense
    /// `total`-wide ones.
    fn pivot(&mut self, row: usize, enter: usize, leave_state: VarState, w: &[f64]) {
        self.pivots += 1;
        let m = self.m;
        let leave = self.basis[row];
        let piv = w[row];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot element too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.binv[row * m..(row + 1) * m] {
            *v *= inv;
        }
        self.eta.clear();
        self.eta.extend_from_slice(&self.binv[row * m..(row + 1) * m]);
        let mut updated_rows = 0usize;
        for (i, &factor) in w.iter().enumerate().take(m) {
            if i == row || factor == 0.0 {
                continue;
            }
            updated_rows += 1;
            for (v, &q) in self.binv[i * m..(i + 1) * m].iter_mut().zip(&self.eta) {
                *v -= factor * q;
            }
        }
        // FTRAN of the entering column plus the eta update — the entire
        // per-pivot cell cost of the revised step.
        let enter_nnz = self.col_start[enter + 1] - self.col_start[enter];
        self.pivot_cells += m * enter_nnz + m + m * updated_rows;
        self.basis[row] = enter;
        self.state[enter] = VarState::Basic(row);
        self.state[leave] = leave_state;
        // Snap the departing variable exactly onto its bound to stop
        // round-off from accumulating.
        self.x[leave] = match leave_state {
            VarState::AtLower => self.lower[leave],
            VarState::AtUpper => self.upper[leave],
            _ => self.x[leave],
        };
    }

    /// Captures the current basis as a [`WarmStart`] — the dense snapshot
    /// rule: `None` while an artificial is still basic.
    pub(crate) fn warm_snapshot(&self) -> Option<WarmStart> {
        let mut basis = Vec::with_capacity(self.m);
        for &b in &self.basis {
            if b >= self.first_artificial {
                return None;
            }
            basis.push(b);
        }
        let mut rests = Vec::with_capacity(self.first_artificial);
        for j in 0..self.first_artificial {
            rests.push(match self.state[j] {
                VarState::AtUpper => Rest::Upper,
                VarState::FreeZero => Rest::Free,
                VarState::AtLower | VarState::Basic(_) => Rest::Lower,
            });
        }
        Some(WarmStart {
            n: self.n_structural,
            m: self.m,
            basis,
            rests,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Problem, Relation, Sense, Status};

    /// Restores the default engine even when an assertion unwinds.
    struct SolverGuard;
    impl Drop for SolverGuard {
        fn drop(&mut self) {
            super::set_reference_solver(false);
        }
    }

    fn classic() -> Problem {
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[3.0, 5.0]);
        p.set_bounds(0, 0.0, f64::INFINITY);
        p.set_bounds(1, 0.0, f64::INFINITY);
        p.add_row(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_row(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_row(&[3.0, 2.0], Relation::Le, 18.0);
        p
    }

    #[test]
    fn reference_switch_selects_the_dense_engine() {
        let _guard = SolverGuard;
        let p = classic();
        let revised = p.solve().unwrap();
        super::set_reference_solver(true);
        assert!(super::reference_solver());
        let dense = p.solve().unwrap();
        super::set_reference_solver(false);
        assert_eq!(revised.status, Status::Optimal);
        assert_eq!(dense.status, Status::Optimal);
        // Unique optimum: canonical extraction makes the engines agree to
        // the bit even though their pivot arithmetic differs.
        assert_eq!(revised.objective.to_bits(), dense.objective.to_bits());
        for (a, b) in revised.x.iter().zip(&dense.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn revised_pivot_cells_undercut_dense_on_wide_problems() {
        // total ≫ m: many bounded variables, few rows — the triangle-LP
        // shape. The revised per-pivot cost must be strictly smaller.
        let n = 40;
        let mut p = Problem::new(n, Sense::Minimize);
        let mut c = vec![0.0; n];
        let mut row = vec![0.0; n];
        for j in 0..n {
            c[j] = ((j % 7) as f64) - 3.0;
            row[j] = 1.0 + ((j % 3) as f64);
            p.set_bounds(j, 0.0, 2.0);
        }
        p.set_objective(&c);
        p.add_row(&row, Relation::Ge, 10.0);
        p.add_row(&c, Relation::Le, 50.0);
        let dense = p.solve_dense().unwrap();
        let revised = p.solve_revised().unwrap();
        assert_eq!(dense.status, Status::Optimal);
        assert_eq!(revised.status, Status::Optimal);
        assert!(dense.pivots > 0, "fixture must pivot to be meaningful");
        assert!(
            revised.pivot_cells * 2 < dense.pivot_cells,
            "revised {} cells vs dense {}",
            revised.pivot_cells,
            dense.pivot_cells
        );
    }

    #[test]
    fn warm_revised_matches_cold_revised_bit_for_bit() {
        let p = classic();
        let cold = p.solve_revised().unwrap();
        let warm = p
            .solve_warm_revised(cold.warm.as_ref().unwrap())
            .unwrap();
        assert!(warm.warmed);
        assert_eq!(warm.pivots, 0, "re-optimising the optimal basis is free");
        assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        for (a, b) in warm.x.iter().zip(&cold.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_revised_repairs_a_perturbed_basis() {
        let mut p = Problem::new(2, Sense::Minimize);
        p.set_objective(&[-1.0, -2.0]);
        p.set_bounds(0, 0.0, 3.0);
        p.set_bounds(1, 0.0, 3.0);
        p.add_row(&[1.0, 1.0], Relation::Le, 4.0);
        let ws = p.solve_revised().unwrap().warm.unwrap();
        p.set_bounds(1, 0.0, 1.5);
        let cold = p.solve_revised().unwrap();
        let warm = p.solve_warm_revised(&ws).unwrap();
        assert!(warm.warmed);
        assert_eq!(warm.status, cold.status);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }
}
