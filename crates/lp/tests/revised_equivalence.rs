//! Dense-vs-revised engine equivalence on randomly generated LPs.
//!
//! Both engines implement the same pivot rules (entering rule, ratio test,
//! tolerances, Bland fallback, two-phase structure), differing only in how
//! the basis arithmetic is carried (pivoted tableau vs. factorized basis
//! inverse). These tests pin the contract down:
//!
//! * same [`Status`] on feasible, infeasible, and degenerate problems;
//! * bit-identical extracted vertices and objectives whenever both
//!   engines are optimal (the canonical vertex extraction is a pure
//!   function of `(problem, vertex)`, independent of the engine);
//! * the revised engine never spends more pivots than the dense one.
//!
//! Coefficients are drawn from a dyadic grid (multiples of 1/8, exactly
//! representable in binary) so the two engines' pricing — mathematically
//! equal but computed through different expressions — stays exact until
//! divisions enter and near-ties cannot flip the Dantzig argmax.

use abonn_lp::{Problem, Relation, Sense, Status};
use proptest::collection::vec;
use proptest::prelude::*;

/// Decodes raw integer draws into a fully boxed dyadic LP with `n`
/// variables: coefficients are eighths in `[-2, 2]`, right-hand sides
/// eighths in `[-4, 4]`, every variable boxed to `[-2, 2]` so the LP is
/// never unbounded and every optimum is a vertex of a polytope.
fn build_lp(
    n: usize,
    sense_raw: u8,
    objective_raw: &[i32],
    rows_raw: &[(Vec<i32>, u8, i32)],
) -> Problem {
    let sense = if sense_raw == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut p = Problem::new(n, sense);
    let c: Vec<f64> = objective_raw[..n].iter().map(|&k| f64::from(k) / 8.0).collect();
    p.set_objective(&c);
    for j in 0..n {
        p.set_bounds(j, -2.0, 2.0);
    }
    for (coeffs_raw, rel_raw, rhs_raw) in rows_raw {
        let a: Vec<f64> = coeffs_raw[..n].iter().map(|&k| f64::from(k) / 8.0).collect();
        let rel = match rel_raw % 3 {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        p.add_row(&a, rel, f64::from(*rhs_raw) / 8.0);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The two engines classify every problem identically, extract
    /// bit-identical optima, and the revised engine never pivots more.
    #[test]
    fn engines_agree_on_dyadic_lps(
        n in 2usize..=4,
        sense_raw in 0u8..=1,
        objective_raw in vec(-16i32..=16, 4),
        rows_raw in vec((vec(-16i32..=16, 4), 0u8..=2, -32i32..=32), 0..=4),
    ) {
        let p = build_lp(n, sense_raw, &objective_raw, &rows_raw);
        let dense = p.solve_dense().unwrap();
        let revised = p.solve_revised().unwrap();
        prop_assert_eq!(dense.status, revised.status);
        if dense.status == Status::Optimal {
            prop_assert_eq!(
                dense.objective.to_bits(),
                revised.objective.to_bits(),
                "objectives differ: dense {} vs revised {}",
                dense.objective,
                revised.objective
            );
            for (a, b) in dense.x.iter().zip(&revised.x) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "vertices differ: dense {:?} vs revised {:?}", dense.x, revised.x);
            }
        }
        prop_assert!(
            revised.pivots <= dense.pivots,
            "revised spent {} pivots, dense {}",
            revised.pivots,
            dense.pivots
        );
    }

    /// Warm-started resolves agree the same way: snapshot an optimal basis
    /// with each engine, perturb a bound, and resolve warm.
    #[test]
    fn warm_engines_agree_after_bound_tightening(
        n in 2usize..=4,
        sense_raw in 0u8..=1,
        objective_raw in vec(-16i32..=16, 4),
        rows_raw in vec((vec(-16i32..=16, 4), 0u8..=2, -32i32..=32), 0..=4),
        tighten_var in 0usize..4,
        tighten_amt in 1i32..=8,
    ) {
        let mut p = build_lp(n, sense_raw, &objective_raw, &rows_raw);
        let dense0 = p.solve_dense().unwrap();
        let revised0 = p.solve_revised().unwrap();
        prop_assert_eq!(dense0.status, revised0.status);
        let (Some(dw), Some(rw)) = (dense0.warm, revised0.warm) else {
            // No snapshot (non-optimal, or an artificial was left basic):
            // nothing to warm-start.
            return Ok(());
        };
        let j = tighten_var % n;
        let hi = 2.0 - f64::from(tighten_amt) / 4.0;
        p.set_bounds(j, -2.0, hi);
        let dense = p.solve_warm_dense(&dw).unwrap();
        let revised = p.solve_warm_revised(&rw).unwrap();
        prop_assert_eq!(dense.status, revised.status);
        if dense.status == Status::Optimal {
            prop_assert_eq!(
                dense.objective.to_bits(),
                revised.objective.to_bits(),
                "warm objectives differ: dense {} vs revised {}",
                dense.objective,
                revised.objective
            );
            for (a, b) in dense.x.iter().zip(&revised.x) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "warm vertices differ: dense {:?} vs revised {:?}", dense.x, revised.x);
            }
        }
    }
}
