//! Property tests for the simplex solver, cross-checked against a naive
//! vertex enumerator.
//!
//! For an LP whose variables are all box-bounded, the feasible region is
//! a (possibly empty) polytope, so it is infeasible exactly when it has
//! no vertex, and otherwise some vertex attains the optimum. A vertex in
//! `n` variables is the intersection of `n` active constraints drawn
//! from the rows (as equalities) and the variable bounds — small enough
//! to enumerate exhaustively for `n ≤ 3`. The enumerator shares nothing
//! with the simplex implementation: it solves each `n × n` system by
//! Gaussian elimination and filters by feasibility.

use abonn_lp::{Problem, Relation, Sense, Status};
use proptest::collection::vec;
use proptest::prelude::*;

const FEAS_TOL: f64 = 1e-7;
const OBJ_TOL: f64 = 1e-5;

/// One linear constraint `a · x (≤ | ≥ | =) b`.
#[derive(Debug, Clone)]
struct Row {
    a: Vec<f64>,
    rel: Relation,
    b: f64,
}

/// A fully bounded random LP.
#[derive(Debug, Clone)]
struct BoundedLp {
    sense: Sense,
    objective: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    rows: Vec<Row>,
}

impl BoundedLp {
    fn to_problem(&self) -> Problem {
        let n = self.objective.len();
        let mut p = Problem::new(n, self.sense);
        p.set_objective(&self.objective);
        for (j, &(lo, hi)) in self.bounds.iter().enumerate() {
            p.set_bounds(j, lo, hi);
        }
        for row in &self.rows {
            p.add_row(&row.a, row.rel, row.b);
        }
        p
    }

    fn feasible(&self, x: &[f64]) -> bool {
        for (j, &(lo, hi)) in self.bounds.iter().enumerate() {
            if x[j] < lo - FEAS_TOL || x[j] > hi + FEAS_TOL {
                return false;
            }
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.a.iter().zip(x).map(|(a, v)| a * v).sum();
            match row.rel {
                Relation::Le => lhs <= row.b + FEAS_TOL,
                Relation::Ge => lhs >= row.b - FEAS_TOL,
                Relation::Eq => (lhs - row.b).abs() <= FEAS_TOL,
            }
        })
    }

    fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Best feasible vertex value, or `None` when no vertex is feasible
    /// (⇔ the bounded LP is infeasible).
    fn enumerate_optimum(&self) -> Option<f64> {
        let n = self.objective.len();
        // Candidate active constraints as equalities `a · x = b`.
        let mut eqs: Vec<(Vec<f64>, f64)> = Vec::new();
        for row in &self.rows {
            eqs.push((row.a.clone(), row.b));
        }
        for (j, &(lo, hi)) in self.bounds.iter().enumerate() {
            let mut unit = vec![0.0; n];
            unit[j] = 1.0;
            eqs.push((unit.clone(), lo));
            eqs.push((unit, hi));
        }
        let mut best: Option<f64> = None;
        for combo in combinations(eqs.len(), n) {
            let system: Vec<&(Vec<f64>, f64)> = combo.iter().map(|&i| &eqs[i]).collect();
            let Some(x) = solve_square(&system) else {
                continue;
            };
            if !self.feasible(&x) {
                continue;
            }
            let v = self.objective_at(&x);
            best = Some(match (best, self.sense) {
                (None, _) => v,
                (Some(b), Sense::Maximize) => b.max(v),
                (Some(b), Sense::Minimize) => b.min(v),
            });
        }
        best
    }
}

/// All `k`-subsets of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = (0..k).collect();
    if k > n {
        return out;
    }
    loop {
        out.push(combo.clone());
        // Advance the rightmost index that can still move.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if combo[i] + (k - i) < n {
                combo[i] += 1;
                for j in i + 1..k {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Solves `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting; `None` when (near-)singular.
fn solve_square(system: &[&(Vec<f64>, f64)]) -> Option<Vec<f64>> {
    let n = system.len();
    let mut m: Vec<Vec<f64>> = system
        .iter()
        .map(|(a, b)| {
            let mut row = a.clone();
            row.push(*b);
            row
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-10 {
            return None;
        }
        m.swap(col, pivot);
        let pivot_row = m[col].clone();
        for (i, row) in m.iter_mut().enumerate() {
            if i == col {
                continue;
            }
            let f = row[col] / pivot_row[col];
            for (x, &p) in row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                *x -= f * p;
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Builds a `BoundedLp` from raw generated material, truncating the raw
/// vectors to the drawn dimension.
fn assemble(
    n: usize,
    raw_bounds: &[(f64, f64)],
    raw_obj: &[f64],
    raw_rows: &[(Vec<f64>, u8, f64)],
    maximize: bool,
) -> BoundedLp {
    BoundedLp {
        sense: if maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        },
        objective: raw_obj[..n].to_vec(),
        bounds: raw_bounds[..n]
            .iter()
            .map(|&(lo, width)| (lo, lo + width))
            .collect(),
        rows: raw_rows
            .iter()
            .map(|(a, rel, b)| Row {
                a: a[..n].to_vec(),
                rel: match rel % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                },
                b: *b,
            })
            .collect(),
    }
}

/// Feasibility check against `lp` with variable `j`'s box shrunk the same
/// way `warm_start_matches_cold_after_bound_perturbation` shrinks it.
fn lp_feasible_perturbed(lp: &BoundedLp, j: usize, from_above: bool, shrink: f64, x: &[f64]) -> bool {
    let mut lp2 = lp.clone();
    let (lo, hi) = lp2.bounds[j];
    lp2.bounds[j] = if from_above {
        (lo, hi - shrink * (hi - lo))
    } else {
        (lo + shrink * (hi - lo), hi)
    };
    lp2.feasible(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn simplex_matches_vertex_enumeration(
        n in 1usize..=3,
        raw_bounds in vec((-2.0..0.0_f64, 0.1..3.0_f64), 3),
        raw_obj in vec(-2.0..2.0_f64, 3),
        raw_rows in vec((vec(-2.0..2.0_f64, 3), 0u8..6, -2.0..2.0_f64), 0..4),
        maximize in 0u8..2,
    ) {
        let lp = assemble(n, &raw_bounds, &raw_obj, &raw_rows, maximize == 1);
        let sol = lp.to_problem().solve();
        let reference = lp.enumerate_optimum();
        match (sol, reference) {
            (Ok(sol), Some(best)) => {
                prop_assert_eq!(sol.status, Status::Optimal, "enumerator found {}", best);
                prop_assert!(
                    (sol.objective - best).abs() <= OBJ_TOL,
                    "simplex {} vs enumerated {}",
                    sol.objective,
                    best
                );
                prop_assert!(lp.feasible(&sol.x), "optimal point violates constraints");
                let at_point = lp.objective_at(&sol.x);
                prop_assert!(
                    (sol.objective - at_point).abs() <= OBJ_TOL,
                    "reported objective {} but c·x = {}",
                    sol.objective,
                    at_point
                );
            }
            (Ok(sol), None) => {
                prop_assert_eq!(
                    sol.status,
                    Status::Infeasible,
                    "no feasible vertex but simplex says {:?} at {:?}",
                    sol.status,
                    sol.x
                );
            }
            (Err(e), _) => prop_assert!(false, "solver error on bounded LP: {e}"),
        }
    }

    /// Warm-start equivalence: perturbing one variable bound and
    /// re-solving from the old optimal basis must reach the same status
    /// and the same optimal objective as a cold solve of the perturbed
    /// problem — the core soundness contract of `solve_warm`.
    #[test]
    fn warm_start_matches_cold_after_bound_perturbation(
        n in 1usize..=3,
        raw_bounds in vec((-2.0..0.0_f64, 0.1..3.0_f64), 3),
        raw_obj in vec(-2.0..2.0_f64, 3),
        raw_rows in vec((vec(-2.0..2.0_f64, 3), 0u8..6, -2.0..2.0_f64), 0..4),
        maximize in 0u8..2,
        perturb_var in 0usize..3,
        shrink in 0.1..0.9_f64,
        from_above in 0u8..2,
    ) {
        let lp = assemble(n, &raw_bounds, &raw_obj, &raw_rows, maximize == 1);
        let base = lp.to_problem();
        let Ok(sol) = base.solve() else { return Ok(()); };
        let Some(ws) = sol.warm else { return Ok(()); };

        // Perturb one bound: shrink the variable's box from one side.
        let j = perturb_var % n;
        let (lo, hi) = lp.bounds[j];
        let mut perturbed = base.clone();
        if from_above == 1 {
            perturbed.set_bounds(j, lo, hi - shrink * (hi - lo));
        } else {
            perturbed.set_bounds(j, lo + shrink * (hi - lo), hi);
        }

        let cold = perturbed.solve().unwrap();
        let warm = perturbed.solve_warm(&ws).unwrap();
        prop_assert_eq!(warm.status, cold.status,
            "warm status {:?} vs cold {:?}", warm.status, cold.status);
        if cold.status == Status::Optimal {
            prop_assert!(
                (warm.objective - cold.objective).abs() <= OBJ_TOL,
                "warm objective {} vs cold {}", warm.objective, cold.objective
            );
            prop_assert!(lp_feasible_perturbed(&lp, j, from_above == 1, shrink, &warm.x));
            // Identical terminal bases extract bit-identical solutions.
            if warm.warm == cold.warm {
                prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
                for (a, b) in warm.x.iter().zip(&cold.x) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// A warm start from a *different* problem's basis (wrong shape) must
    /// deterministically fall back to the two-phase path and still solve
    /// the problem exactly like a cold solve.
    #[test]
    fn warm_start_fallback_equals_cold(
        n in 1usize..=3,
        raw_bounds in vec((-2.0..0.0_f64, 0.1..3.0_f64), 3),
        raw_obj in vec(-2.0..2.0_f64, 3),
        raw_rows in vec((vec(-2.0..2.0_f64, 3), 0u8..6, -2.0..2.0_f64), 1..4),
        maximize in 0u8..2,
    ) {
        let lp = assemble(n, &raw_bounds, &raw_obj, &raw_rows, maximize == 1);
        let p = lp.to_problem();
        // A basis with a mismatched row count can never be installed.
        let mut donor = Problem::new(n, Sense::Minimize);
        for j in 0..n {
            donor.set_bounds(j, 0.0, 1.0);
        }
        let Some(ws) = donor.solve().unwrap().warm else { return Ok(()); };
        let cold = p.solve().unwrap();
        let warm = p.solve_warm(&ws).unwrap();
        prop_assert!(!warm.warmed, "0-row basis must not install into a rowful problem");
        prop_assert_eq!(warm.status, cold.status);
        prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    }

    /// Pure box LPs: the optimum is read straight off the bounds, so the
    /// solver must place every coordinate at the bound matching its
    /// objective sign (bound-flip handling with no rows at all).
    #[test]
    fn box_only_optimum_sits_on_bounds(
        raw_bounds in vec((-2.0..0.0_f64, 0.1..3.0_f64), 3),
        raw_obj in vec(-2.0..2.0_f64, 3),
    ) {
        let lp = assemble(3, &raw_bounds, &raw_obj, &[], true);
        let sol = lp.to_problem().solve().unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        let expected: f64 = lp
            .objective
            .iter()
            .zip(&lp.bounds)
            .map(|(&c, &(lo, hi))| if c >= 0.0 { c * hi } else { c * lo })
            .sum();
        prop_assert!((sol.objective - expected).abs() <= OBJ_TOL);
    }
}

#[test]
fn degenerate_vertex_is_handled() {
    // Three constraints meet at (1, 1): any basis choice there is
    // degenerate, which exercises the Bland's-rule fallback.
    let mut p = Problem::new(2, Sense::Maximize);
    p.set_objective(&[1.0, 1.0]);
    p.set_bounds(0, 0.0, 5.0);
    p.set_bounds(1, 0.0, 5.0);
    p.add_row(&[1.0, 0.0], Relation::Le, 1.0);
    p.add_row(&[0.0, 1.0], Relation::Le, 1.0);
    p.add_row(&[1.0, 1.0], Relation::Le, 2.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 2.0).abs() < 1e-9);
}

#[test]
fn redundant_equalities_stay_feasible() {
    // The same equality twice: a degenerate but consistent system.
    let mut p = Problem::new(2, Sense::Minimize);
    p.set_objective(&[1.0, 2.0]);
    p.set_bounds(0, 0.0, 10.0);
    p.set_bounds(1, 0.0, 10.0);
    p.add_row(&[1.0, 1.0], Relation::Eq, 3.0);
    p.add_row(&[2.0, 2.0], Relation::Eq, 6.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!((sol.objective - 3.0).abs() < 1e-9, "minimum at (3, 0)");
}

#[test]
fn contradictory_rows_are_infeasible() {
    let mut p = Problem::new(1, Sense::Minimize);
    p.set_objective(&[1.0]);
    p.set_bounds(0, -10.0, 10.0);
    p.add_row(&[1.0], Relation::Ge, 1.0);
    p.add_row(&[1.0], Relation::Le, 0.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Infeasible);
}

#[test]
fn bound_window_excluded_by_row_is_infeasible() {
    // Row forces x ≥ 5 but the variable's own upper bound is 2.
    let mut p = Problem::new(1, Sense::Maximize);
    p.set_objective(&[1.0]);
    p.set_bounds(0, 0.0, 2.0);
    p.add_row(&[1.0], Relation::Ge, 5.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Infeasible);
}

#[test]
fn free_variable_detects_unbounded() {
    let mut p = Problem::new(2, Sense::Maximize);
    p.set_objective(&[1.0, 0.0]);
    p.set_bounds(0, 0.0, f64::INFINITY);
    p.set_bounds(1, 0.0, 1.0);
    p.add_row(&[-1.0, 1.0], Relation::Le, 1.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Unbounded);
}

#[test]
fn minimisation_with_free_negative_direction_is_unbounded() {
    let mut p = Problem::new(1, Sense::Minimize);
    p.set_objective(&[1.0]);
    p.set_bounds(0, f64::NEG_INFINITY, 0.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Unbounded);
}

#[test]
fn flipped_bounds_at_upper_then_lower() {
    // Same constraint matrix, opposite objective signs: the optimum must
    // flip from the upper to the lower bound of each variable.
    // Maximising +x puts each variable at its upper bound (2 + 3);
    // maximising -x puts it at the lower bound (-(-1) - (-2) = 3).
    for (c0, c1, expected) in [(1.0, 1.0, 5.0), (-1.0, -1.0, 3.0)] {
        let mut p = Problem::new(2, Sense::Maximize);
        p.set_objective(&[c0, c1]);
        p.set_bounds(0, -1.0, 2.0);
        p.set_bounds(1, -2.0, 3.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective - expected).abs() < 1e-9,
            "objective ({c0}, {c1}): got {}, want {expected}",
            sol.objective
        );
    }
}

#[test]
fn combinations_enumerate_all_subsets() {
    assert_eq!(combinations(4, 2).len(), 6);
    assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    assert!(combinations(2, 3).is_empty());
}
