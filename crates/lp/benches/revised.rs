//! Dense-tableau vs revised-simplex pivot cost in the wide regime: many
//! box-bounded variables, few rows (`total ≫ m`), where the dense engine
//! rewrites a full `m × total` tableau per pivot and the revised engine
//! only touches the `m × m` basis inverse, so the per-pivot separation
//! grows with `total / m`. (The bound crate's triangle LPs sit at
//! `m ≈ 2 · total`; there the separation is the ~40% pivot-cell cut that
//! `abonn-bound`'s counters report, not this bench's asymptotic gap.)
//! Per-pivot cell counts — exact and machine-independent, unlike the
//! timings — are printed once outside the timed loops. Run with
//! `cargo bench -p abonn-lp --bench revised`; under `cargo test` each
//! routine runs once as a smoke check.

use abonn_lp::{Problem, Relation, Sense};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 768;
const M: usize = 48;

/// A random feasible LP in the wide aspect ratio: `N` boxed variables,
/// `M` sparse `Le` rows with positive slack at the origin.
fn wide_problem(seed: u64) -> Problem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Problem::new(N, Sense::Maximize);
    let c: Vec<f64> = (0..N).map(|_| rng.gen_range(-1.0..1.0)).collect();
    p.set_objective(&c);
    for j in 0..N {
        p.set_bounds(j, rng.gen_range(-1.5..-0.5), rng.gen_range(0.5..1.5));
    }
    for _ in 0..M {
        // Sparse rows (~6 nonzeros) like the ReLU encodings feeding the
        // verifier: the revised FTRAN cost scales with these, not with N.
        let mut row = vec![0.0; N];
        for _ in 0..6 {
            let j = rng.gen_range(0..N);
            row[j] = rng.gen_range(-1.0..1.0);
        }
        p.add_row(&row, Relation::Le, rng.gen_range(0.5..1.5));
    }
    p
}

fn bench_pivot_engines(c: &mut Criterion) {
    let problems: Vec<Problem> = (0..6).map(|k| wide_problem(10 + k)).collect();

    let mut dense_pivots = 0usize;
    let mut dense_cells = 0usize;
    let mut revised_pivots = 0usize;
    let mut revised_cells = 0usize;
    for p in &problems {
        let d = p.solve_dense().expect("bench problems are well-formed");
        let r = p.solve_revised().expect("bench problems are well-formed");
        assert_eq!(d.status, r.status, "engines must agree on the fixture");
        dense_pivots += d.pivots;
        dense_cells += d.pivot_cells;
        revised_pivots += r.pivots;
        revised_cells += r.pivot_cells;
    }
    println!(
        "pivot engines ({} LPs, {}x{}): dense {} cells / {} pivots vs revised {} cells / {} pivots",
        problems.len(),
        N,
        M,
        dense_cells,
        dense_pivots,
        revised_cells,
        revised_pivots,
    );

    c.bench_function("lp/pivot_dense", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &problems {
                acc += black_box(p).solve_dense().unwrap().objective;
            }
            black_box(acc)
        })
    });
    c.bench_function("lp/pivot_revised", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &problems {
                acc += black_box(p).solve_revised().unwrap().objective;
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_pivot_engines);
criterion_main!(benches);
