//! Simplex warm-start benchmarks: cold solves vs basis-reused re-solves.
//!
//! Mirrors the two reuse patterns of the triangle-LP verifier: re-solving
//! a *perturbed* problem (a child node with tightened variable bounds)
//! from the parent's optimal basis, and sweeping several *objectives*
//! over one fixed feasible set (one LP per output row) with the basis
//! chained from solve to solve. Pivot counts — exact and
//! machine-independent, unlike the timings — are printed once outside
//! the timed loops. Run with `cargo bench -p abonn-lp`; under
//! `cargo test` each routine runs once as a smoke check.

use abonn_lp::{Problem, Relation, Sense, WarmStart};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 30;
const M: usize = 20;

/// A random feasible bounded LP: box bounds straddling zero and `Le`
/// rows with positive slack at the origin, so the origin is always an
/// interior feasible point and every solve terminates `Optimal`.
fn random_problem(seed: u64) -> Problem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Problem::new(N, Sense::Maximize);
    let c: Vec<f64> = (0..N).map(|_| rng.gen_range(-1.0..1.0)).collect();
    p.set_objective(&c);
    for j in 0..N {
        p.set_bounds(j, rng.gen_range(-1.5..-0.5), rng.gen_range(0.5..1.5));
    }
    for _ in 0..M {
        let row: Vec<f64> = (0..N).map(|_| rng.gen_range(-1.0..1.0)).collect();
        p.add_row(&row, Relation::Le, rng.gen_range(0.5..1.5));
    }
    p
}

/// A child-node style perturbation: replace every variable's box with a
/// seed-dependent symmetric one straddling zero, preserving origin
/// feasibility while moving most optimal-basis bounds.
fn tightened(base: &Problem, seed: u64) -> Problem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut child = base.clone();
    for j in 0..N {
        let f = rng.gen_range(0.7..0.95);
        child.set_bounds(j, -1.5 * f, 1.5 * f);
    }
    child
}

fn warm_of(p: &Problem) -> WarmStart {
    p.solve()
        .expect("bench problems are well-formed")
        .warm
        .expect("optimal solves carry a warm start")
}

fn bench_child_resolve(c: &mut Criterion) {
    let base = random_problem(1);
    let warm = warm_of(&base);
    let children: Vec<Problem> = (0..8).map(|k| tightened(&base, 100 + k)).collect();

    let cold_pivots: usize = children.iter().map(|p| p.solve().unwrap().pivots).sum();
    let warm_pivots: usize = children
        .iter()
        .map(|p| p.solve_warm(&warm).unwrap().pivots)
        .sum();
    println!(
        "child re-solves ({} perturbed LPs, {}x{}): {} cold pivots vs {} warm",
        children.len(),
        N,
        M,
        cold_pivots,
        warm_pivots,
    );

    c.bench_function("lp/child_resolve_cold", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &children {
                acc += black_box(p).solve().unwrap().objective;
            }
            black_box(acc)
        })
    });
    c.bench_function("lp/child_resolve_warm", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for p in &children {
                acc += black_box(p).solve_warm(&warm).unwrap().objective;
            }
            black_box(acc)
        })
    });
}

fn bench_objective_sweep(c: &mut Criterion) {
    let base = random_problem(2);
    let mut rng = SmallRng::seed_from_u64(3);
    let objectives: Vec<Vec<f64>> = (0..6)
        .map(|_| (0..N).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let mut scratch = base.clone();
    let mut cold_pivots = 0usize;
    let mut warm_pivots = 0usize;
    let mut warm: Option<WarmStart> = None;
    for obj in &objectives {
        scratch.set_objective(obj);
        cold_pivots += scratch.solve().unwrap().pivots;
        let sol = match &warm {
            Some(w) => scratch.solve_warm(w).unwrap(),
            None => scratch.solve().unwrap(),
        };
        warm_pivots += sol.pivots;
        warm = sol.warm;
    }
    println!(
        "objective sweep ({} objectives, {}x{}): {} cold pivots vs {} chained-warm",
        objectives.len(),
        N,
        M,
        cold_pivots,
        warm_pivots,
    );

    c.bench_function("lp/objective_sweep_cold", |bench| {
        bench.iter(|| {
            let mut p = base.clone();
            let mut acc = 0.0;
            for obj in &objectives {
                p.set_objective(black_box(obj));
                acc += p.solve().unwrap().objective;
            }
            black_box(acc)
        })
    });
    c.bench_function("lp/objective_sweep_warm", |bench| {
        bench.iter(|| {
            let mut p = base.clone();
            let mut acc = 0.0;
            let mut warm: Option<WarmStart> = None;
            for obj in &objectives {
                p.set_objective(black_box(obj));
                let sol = match &warm {
                    Some(w) => p.solve_warm(w).unwrap(),
                    None => p.solve().unwrap(),
                };
                acc += sol.objective;
                warm = sol.warm;
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_child_resolve, bench_objective_sweep);
criterion_main!(benches);
