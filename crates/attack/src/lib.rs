#![forbid(unsafe_code)]
//! Gradient-based falsification: FGSM and multi-restart PGD.
//!
//! αβ-CROWN-class verifiers run an adversarial attack before (and during)
//! branch and bound; a found adversarial example settles the problem
//! immediately. This crate implements the classic attacks on top of the
//! reverse-mode gradients of `abonn-nn`, constrained to an arbitrary input
//! box (so they also work inside BaB sub-problems).
//!
//! All attacks *validate* their output: a returned point is guaranteed to
//! be misclassified and inside the box, so callers can treat `Some(x)` as
//! a real counterexample without re-checking.
//!
//! # Examples
//!
//! ```
//! use abonn_attack::Pgd;
//! use abonn_nn::{Layer, Network, Shape};
//! use abonn_tensor::Matrix;
//!
//! // A linear "classifier" that predicts class 0 iff x0 > x1.
//! let net = Network::new(
//!     Shape::Flat(2),
//!     vec![Layer::dense(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]), vec![0.0, 0.0])],
//! )?;
//! // Around (0.6, 0.4) with radius 0.3 an adversarial point exists.
//! let adv = Pgd::default().attack(&net, 0, &[0.3, 0.1], &[0.9, 0.7]);
//! assert!(adv.is_some());
//! # Ok::<(), abonn_nn::NetworkError>(())
//! ```

use abonn_nn::{grad, CanonicalNetwork, Network};
use abonn_tensor::vecops;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Margin of `label` at `x`: `logit_label − max_{j≠label} logit_j`.
///
/// Negative means `x` is misclassified (a counterexample to local
/// robustness).
///
/// # Examples
///
/// ```
/// use abonn_attack::margin;
/// use abonn_nn::{Layer, Network, Shape};
/// use abonn_tensor::Matrix;
///
/// # fn main() -> Result<(), abonn_nn::NetworkError> {
/// let net = Network::new(
///     Shape::Flat(2),
///     vec![Layer::dense(Matrix::identity(2), vec![0.0, 0.0])],
/// )?;
/// assert!(margin(&net, &[0.9, 0.1], 0) > 0.0);
/// assert!(margin(&net, &[0.1, 0.9], 0) < 0.0);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `label` is out of range for the network output.
#[must_use]
pub fn margin(net: &Network, x: &[f64], label: usize) -> f64 {
    let logits = net.forward(x);
    assert!(label < logits.len(), "margin: label out of range");
    let runner_up = logits
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != label)
        .map(|(_, &v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    logits[label] - runner_up
}

/// Returns `true` if `x` is a genuine counterexample: inside `[lo, hi]`
/// and classified differently from `label`.
#[must_use]
pub fn is_counterexample(net: &Network, x: &[f64], label: usize, lo: &[f64], hi: &[f64]) -> bool {
    x.len() == lo.len()
        && x.iter()
            .zip(lo.iter().zip(hi))
            .all(|(&v, (&l, &h))| v >= l - 1e-9 && v <= h + 1e-9)
        && net.classify(x) != label
}

/// Gradient of the margin with respect to the input, using the current
/// runner-up class as the attack target.
fn margin_gradient(net: &Network, x: &[f64], label: usize) -> Vec<f64> {
    let logits = net.forward(x);
    let runner_up = logits
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != label)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are not NaN"))
        .map(|(j, _)| j)
        .expect("at least two classes");
    let mut coeffs = vec![0.0; logits.len()];
    coeffs[label] = 1.0;
    coeffs[runner_up] = -1.0;
    grad::input_gradient(net, x, &coeffs)
}

/// Single-step fast gradient sign method inside `[lo, hi]`.
///
/// Starts from the box centre, steps once against the margin gradient to
/// the box boundary, and returns the point only if it is a validated
/// counterexample.
#[must_use]
pub fn fgsm(net: &Network, label: usize, lo: &[f64], hi: &[f64]) -> Option<Vec<f64>> {
    let mut x: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| 0.5 * (l + h)).collect();
    let g = margin_gradient(net, &x, label);
    for ((xi, &gi), (&l, &h)) in x.iter_mut().zip(&g).zip(lo.iter().zip(hi)) {
        // Move against the margin: decrease it as much as the box allows.
        *xi = if gi > 0.0 { l } else { h };
    }
    is_counterexample(net, &x, label, lo, hi).then_some(x)
}

/// Projected gradient descent on the margin, with random restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pgd {
    /// Gradient steps per restart.
    pub steps: usize,
    /// Number of random restarts (the first start is the box centre).
    pub restarts: usize,
    /// Step length as a fraction of each coordinate's box width.
    pub step_frac: f64,
    /// Seed for the restart sampling.
    pub seed: u64,
}

impl Default for Pgd {
    fn default() -> Self {
        Self {
            steps: 20,
            restarts: 3,
            step_frac: 0.25,
            seed: 0,
        }
    }
}

impl Pgd {
    /// Creates a PGD attack with the given budget.
    #[must_use]
    pub fn new(steps: usize, restarts: usize, step_frac: f64, seed: u64) -> Self {
        Self {
            steps,
            restarts,
            step_frac,
            seed,
        }
    }

    /// Searches `[lo, hi]` for a misclassified point; `Some` is validated.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the network input size.
    #[must_use]
    pub fn attack(&self, net: &Network, label: usize, lo: &[f64], hi: &[f64]) -> Option<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let center: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| 0.5 * (l + h)).collect();
        for restart in 0..=self.restarts {
            let start = if restart == 0 {
                center.clone()
            } else {
                lo.iter()
                    .zip(hi)
                    .map(|(&l, &h)| rng.gen_range(l..=h))
                    .collect()
            };
            if let Some(adv) = self.descend(net, label, start, lo, hi) {
                return Some(adv);
            }
        }
        None
    }

    /// Runs PGD from an explicit start point (used to refine verifier
    /// candidates); `Some` is validated.
    #[must_use]
    pub fn refine(
        &self,
        net: &Network,
        label: usize,
        start: &[f64],
        lo: &[f64],
        hi: &[f64],
    ) -> Option<Vec<f64>> {
        let mut x = start.to_vec();
        vecops::clamp_box(&mut x, lo, hi);
        self.descend(net, label, x, lo, hi)
    }

    /// Targeted variant: pushes the margin `logit_label − logit_target`
    /// down specifically, instead of chasing the current runner-up. Useful
    /// when a verifier has already identified which class is closest to
    /// flipping; `Some` is validated like [`Pgd::attack`].
    ///
    /// # Panics
    ///
    /// Panics if `target == label` or either index is out of range.
    #[must_use]
    pub fn attack_targeted(
        &self,
        net: &Network,
        label: usize,
        target: usize,
        lo: &[f64],
        hi: &[f64],
    ) -> Option<Vec<f64>> {
        assert_ne!(target, label, "attack_targeted: target equals label");
        let classes = net.output_dim();
        assert!(label < classes && target < classes, "class out of range");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut coeffs = vec![0.0; classes];
        coeffs[label] = 1.0;
        coeffs[target] = -1.0;
        for restart in 0..=self.restarts {
            let mut x: Vec<f64> = if restart == 0 {
                lo.iter().zip(hi).map(|(l, h)| 0.5 * (l + h)).collect()
            } else {
                lo.iter()
                    .zip(hi)
                    .map(|(&l, &h)| rng.gen_range(l..=h))
                    .collect()
            };
            for _ in 0..self.steps {
                if is_counterexample(net, &x, label, lo, hi) {
                    return Some(x);
                }
                let g = grad::input_gradient(net, &x, &coeffs);
                for ((xi, &gi), (&l, &h)) in x.iter_mut().zip(&g).zip(lo.iter().zip(hi)) {
                    *xi -= self.step_frac * (h - l) * gi.signum();
                }
                vecops::clamp_box(&mut x, lo, hi);
            }
            if is_counterexample(net, &x, label, lo, hi) {
                return Some(x);
            }
        }
        None
    }

    fn descend(
        &self,
        net: &Network,
        label: usize,
        mut x: Vec<f64>,
        lo: &[f64],
        hi: &[f64],
    ) -> Option<Vec<f64>> {
        if is_counterexample(net, &x, label, lo, hi) {
            return Some(x);
        }
        for _ in 0..self.steps {
            let g = margin_gradient(net, &x, label);
            for ((xi, &gi), (&l, &h)) in x.iter_mut().zip(&g).zip(lo.iter().zip(hi)) {
                let width = h - l;
                *xi -= self.step_frac * width * gi.signum();
            }
            vecops::clamp_box(&mut x, lo, hi);
            if is_counterexample(net, &x, label, lo, hi) {
                return Some(x);
            }
        }
        None
    }
}

/// PGD directly on a *margin network* (canonical form whose outputs must
/// all stay positive): finds a point in `[lo, hi]` where some margin row
/// is non-positive. This is the attack that works for general safety
/// properties, where no class label exists.
///
/// Returned points are validated: inside the box with `min margin ≤ 0`.
///
/// # Examples
///
/// ```
/// use abonn_attack::{margin_pgd, Pgd};
/// use abonn_nn::{AffinePair, CanonicalNetwork};
/// use abonn_tensor::Matrix;
///
/// // margin(x) = x: violated at x <= 0.
/// let margin_net = CanonicalNetwork::from_affine_pairs(1, vec![
///     AffinePair::new(Matrix::identity(1), vec![0.0]),
///     AffinePair::new(Matrix::identity(1), vec![0.0]),
/// ]);
/// let hit = margin_pgd(&margin_net, &Pgd::default(), &[-1.0], &[1.0]);
/// assert!(hit.is_some());
/// let miss = margin_pgd(&margin_net, &Pgd::default(), &[0.5], &[1.0]);
/// assert!(miss.is_none());
/// ```
///
/// # Panics
///
/// Panics if the slice lengths differ from the margin network's input
/// dimension.
#[must_use]
pub fn margin_pgd(
    margin_net: &CanonicalNetwork,
    config: &Pgd,
    lo: &[f64],
    hi: &[f64],
) -> Option<Vec<f64>> {
    assert_eq!(lo.len(), margin_net.input_dim(), "margin_pgd: box mismatch");
    assert_eq!(hi.len(), margin_net.input_dim(), "margin_pgd: box mismatch");
    let violated = |x: &[f64]| -> bool {
        margin_net.forward(x).into_iter().any(|m| m <= 0.0)
    };
    let mut rng = SmallRng::seed_from_u64(config.seed);
    for restart in 0..=config.restarts {
        let mut x: Vec<f64> = if restart == 0 {
            lo.iter().zip(hi).map(|(l, h)| 0.5 * (l + h)).collect()
        } else {
            lo.iter()
                .zip(hi)
                .map(|(&l, &h)| rng.gen_range(l..=h))
                .collect()
        };
        for _ in 0..config.steps {
            if violated(&x) {
                return Some(x);
            }
            // Descend the currently most-violated margin row.
            let margins = margin_net.forward(&x);
            let worst = margins
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("margins are not NaN"))
                .map(|(i, _)| i)
                .expect("margin net has outputs");
            let mut coeffs = vec![0.0; margins.len()];
            coeffs[worst] = 1.0;
            let g = margin_net.input_gradient(&x, &coeffs);
            for ((xi, &gi), (&l, &h)) in x.iter_mut().zip(&g).zip(lo.iter().zip(hi)) {
                *xi -= config.step_frac * (h - l) * gi.signum();
            }
            vecops::clamp_box(&mut x, lo, hi);
        }
        if violated(&x) {
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    /// Classifier predicting 0 iff x0 > x1 (two logits: x0 and x1).
    fn compare_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
                vec![0.0, 0.0],
            )],
        )
        .unwrap()
    }

    #[test]
    fn margin_sign_tracks_classification() {
        let net = compare_net();
        assert!(margin(&net, &[1.0, 0.0], 0) > 0.0);
        assert!(margin(&net, &[0.0, 1.0], 0) < 0.0);
    }

    #[test]
    fn fgsm_crosses_a_reachable_boundary() {
        let net = compare_net();
        // Box straddles the x0 = x1 boundary.
        let adv = fgsm(&net, 0, &[0.3, 0.1], &[0.9, 0.7]);
        let adv = adv.expect("boundary is reachable");
        assert!(is_counterexample(&net, &adv, 0, &[0.3, 0.1], &[0.9, 0.7]));
    }

    #[test]
    fn attacks_fail_cleanly_on_robust_region() {
        let net = compare_net();
        // Entire box classifies as 0 (x0 always larger).
        let lo = [0.8, 0.0];
        let hi = [1.0, 0.5];
        assert_eq!(fgsm(&net, 0, &lo, &hi), None);
        assert_eq!(Pgd::default().attack(&net, 0, &lo, &hi), None);
    }

    #[test]
    fn pgd_finds_counterexample_through_relu() {
        // y0 = relu(x) and y1 = relu(-x) + 0.1: class 0 requires x > 0.1.
        let net = Network::new(
            Shape::Flat(1),
            vec![
                Layer::dense(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                Layer::relu(),
                Layer::dense(Matrix::identity(2), vec![0.0, 0.1]),
            ],
        )
        .unwrap();
        let adv = Pgd::default().attack(&net, 0, &[-0.5], &[1.0]);
        let adv = adv.expect("negative x region misclassifies");
        assert!(adv[0] < 0.1 + 1e-9);
    }

    #[test]
    fn refine_improves_a_near_miss_candidate() {
        let net = compare_net();
        let lo = [0.3, 0.1];
        let hi = [0.9, 0.7];
        // Start just on the correct side of the boundary.
        let start = [0.45, 0.4];
        let adv = Pgd::default().refine(&net, 0, &start, &lo, &hi);
        assert!(adv.is_some());
    }

    #[test]
    fn targeted_attack_reaches_the_named_class() {
        // Three logits: x0, x1, and a constant mid-level class.
        let net = Network::new(
            Shape::Flat(2),
            vec![Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]),
                vec![0.0, 0.0, 0.45],
            )],
        )
        .unwrap();
        // Around (0.6, 0.2), class 0 wins; class 1 can overtake inside the
        // box but class 2 (constant 0.45) is also reachable by shrinking x0.
        let lo = [0.3, 0.0];
        let hi = [0.9, 0.55];
        let pgd = Pgd::default();
        let adv = pgd
            .attack_targeted(&net, 0, 1, &lo, &hi)
            .expect("class 1 reachable");
        assert!(is_counterexample(&net, &adv, 0, &lo, &hi));
        let adv2 = pgd
            .attack_targeted(&net, 0, 2, &lo, &hi)
            .expect("class 2 reachable");
        // The flip class of a targeted attack may be any wrong class, but
        // the point must come from driving the named margin down.
        assert!(net.classify(&adv2) != 0);
    }

    #[test]
    #[should_panic(expected = "target equals label")]
    fn targeted_attack_rejects_self_target() {
        let net = compare_net();
        let _ = Pgd::default().attack_targeted(&net, 0, 0, &[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    fn returned_points_always_in_box() {
        let net = compare_net();
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        if let Some(adv) = Pgd::default().attack(&net, 0, &lo, &hi) {
            assert!(adv.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn margin_pgd_descends_through_relu() {
        use abonn_nn::AffinePair;
        // margin = relu(x0 - x1) - 0.05 on the unit box: violated where
        // x0 - x1 <= 0.05 — reachable from the centre by descent.
        let margin_net = CanonicalNetwork::from_affine_pairs(
            2,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0, -1.0]]), vec![0.0]),
                AffinePair::new(Matrix::identity(1), vec![-0.05]),
            ],
        );
        let hit = margin_pgd(&margin_net, &Pgd::default(), &[0.0, 0.0], &[1.0, 1.0])
            .expect("violation reachable");
        let m = margin_net.forward(&hit);
        assert!(m[0] <= 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let net = compare_net();
        let a = Pgd::new(10, 5, 0.2, 3).attack(&net, 0, &[0.0, 0.0], &[1.0, 1.0]);
        let b = Pgd::new(10, 5, 0.2, 3).attack(&net, 0, &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(a, b);
    }
}
