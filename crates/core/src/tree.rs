//! The BaB tree: an arena of sub-problems `Γ` with MCTS bookkeeping.

use abonn_bound::{NeuronId, SplitSet, SplitSign};

/// Index of a node in a [`BabTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The root node `ε`.
    pub const ROOT: NodeId = NodeId(0);

    /// Raw arena index (stable for the tree's lifetime).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Lifecycle state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Evaluated, a false alarm, children not yet created.
    Open,
    /// Children created (the node is internal).
    Expanded,
    /// The node's entire subtree is verified — nothing to find below.
    Closed,
}

/// One BaB sub-problem.
#[derive(Debug, Clone)]
pub struct Node {
    /// The split sequence `Γ` identifying the sub-problem.
    pub splits: SplitSet,
    /// `depth(Γ)` — number of splits on the path.
    pub depth: usize,
    /// The verifier's `p̂` for this node.
    pub p_hat: f64,
    /// The MCTS reward `R(Γ)` (counterexample potentiality, propagated).
    pub reward: f64,
    /// `|T(Γ)|` — number of nodes in the subtree rooted here.
    pub subtree_size: usize,
    /// Lifecycle state.
    pub state: NodeState,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children `(Γ·r⁺, Γ·r⁻)` once expanded.
    pub children: Option<(NodeId, NodeId)>,
    /// The ReLU this node was expanded on.
    pub branch_neuron: Option<NeuronId>,
}

/// Arena-allocated BaB tree.
///
/// # Examples
///
/// ```
/// use abonn_core::{BabTree, NodeId};
/// use abonn_bound::{NeuronId, SplitSign};
///
/// let mut tree = BabTree::new(-1.5);
/// let (pos, neg) = tree.expand(NodeId::ROOT, NeuronId::new(0, 2), -1.2, -1.4);
/// assert_eq!(tree.node(pos).depth, 1);
/// assert_eq!(tree.node(NodeId::ROOT).subtree_size, 3);
/// assert_ne!(pos, neg);
/// ```
#[derive(Debug, Clone)]
pub struct BabTree {
    nodes: Vec<Node>,
    /// Most negative `p̂` observed anywhere in the tree (the Def. 1
    /// normaliser).
    p_hat_min: f64,
}

impl BabTree {
    /// Creates a tree whose root has the given `p̂`.
    #[must_use]
    pub fn new(root_p_hat: f64) -> Self {
        Self {
            nodes: vec![Node {
                splits: SplitSet::new(),
                depth: 0,
                p_hat: root_p_hat,
                reward: 0.0,
                subtree_size: 1,
                state: NodeState::Open,
                parent: None,
                children: None,
                branch_neuron: None,
            }],
            p_hat_min: root_p_hat.min(0.0),
        }
    }

    /// Total number of nodes ever created.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is only the root (never the case after
    /// construction plus an expansion).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// The Def. 1 normaliser: the most negative `p̂` seen so far.
    #[must_use]
    pub fn p_hat_min(&self) -> f64 {
        self.p_hat_min
    }

    /// Records an observed `p̂`, updating the normaliser.
    pub fn observe_p_hat(&mut self, p_hat: f64) {
        if p_hat < self.p_hat_min {
            self.p_hat_min = p_hat;
        }
    }

    /// Expands `parent` on `neuron`, creating the `r⁺` and `r⁻` children
    /// with the given `p̂` values, and updates subtree sizes up to the
    /// root. Returns `(positive_child, negative_child)`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` was already expanded.
    pub fn expand(
        &mut self,
        parent: NodeId,
        neuron: NeuronId,
        p_hat_pos: f64,
        p_hat_neg: f64,
    ) -> (NodeId, NodeId) {
        assert!(
            self.nodes[parent.0].children.is_none(),
            "BabTree::expand: node already expanded"
        );
        let depth = self.nodes[parent.0].depth + 1;
        let base_splits = self.nodes[parent.0].splits.clone();
        let mut make = |sign: SplitSign, p_hat: f64| {
            let id = NodeId(self.nodes.len());
            self.nodes.push(Node {
                splits: base_splits.with(neuron, sign),
                depth,
                p_hat,
                reward: 0.0,
                subtree_size: 1,
                state: NodeState::Open,
                parent: Some(parent),
                children: None,
                branch_neuron: None,
            });
            id
        };
        let pos = make(SplitSign::Pos, p_hat_pos);
        let neg = make(SplitSign::Neg, p_hat_neg);
        self.observe_p_hat(p_hat_pos);
        self.observe_p_hat(p_hat_neg);

        let parent_node = &mut self.nodes[parent.0];
        parent_node.children = Some((pos, neg));
        parent_node.branch_neuron = Some(neuron);
        parent_node.state = NodeState::Expanded;

        // |T(Γ)| grows by two along the whole ancestor path.
        let mut cur = Some(parent);
        while let Some(id) = cur {
            self.nodes[id.0].subtree_size += 2;
            cur = self.nodes[id.0].parent;
        }
        (pos, neg)
    }

    /// Recomputes `R(Γ)` bottom-up from `from` to the root as the maximum
    /// of the children's rewards, and closes nodes whose children are both
    /// closed.
    pub fn back_propagate(&mut self, from: NodeId) {
        let mut cur = Some(from);
        while let Some(id) = cur {
            if let Some((a, b)) = self.nodes[id.0].children {
                let ra = self.nodes[a.0].reward;
                let rb = self.nodes[b.0].reward;
                self.nodes[id.0].reward = ra.max(rb);
                if self.nodes[a.0].state == NodeState::Closed
                    && self.nodes[b.0].state == NodeState::Closed
                {
                    self.nodes[id.0].state = NodeState::Closed;
                }
            }
            cur = self.nodes[id.0].parent;
        }
    }

    /// Marks a node verified: reward `−∞`, state closed.
    pub fn close(&mut self, id: NodeId) {
        let node = &mut self.nodes[id.0];
        node.reward = f64::NEG_INFINITY;
        node.state = NodeState::Closed;
    }

    /// Depth of the deepest node ever created.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Iterates over all node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Checks the structural invariants of the tree, returning the first
    /// violation found. Used by tests and debug assertions; `None` means
    /// the tree is consistent.
    ///
    /// Invariants checked per node:
    /// * `subtree_size` equals `1 +` the children's sizes;
    /// * children are exactly one deeper than their parent;
    /// * an expanded node's reward is the maximum of its children's;
    /// * a node whose children are both closed is closed;
    /// * children record this node as parent.
    #[must_use]
    pub fn check_invariants(&self) -> Option<String> {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some((a, b)) = node.children {
                let (na, nb) = (&self.nodes[a.0], &self.nodes[b.0]);
                if node.subtree_size != 1 + na.subtree_size + nb.subtree_size {
                    return Some(format!(
                        "node {i}: size {} != 1 + {} + {}",
                        node.subtree_size, na.subtree_size, nb.subtree_size
                    ));
                }
                if na.depth != node.depth + 1 || nb.depth != node.depth + 1 {
                    return Some(format!("node {i}: child depth mismatch"));
                }
                if na.parent != Some(NodeId(i)) || nb.parent != Some(NodeId(i)) {
                    return Some(format!("node {i}: child parent link broken"));
                }
                let max_child = na.reward.max(nb.reward);
                // Rewards are only required to agree after back-propagation;
                // infinite rewards (terminal states) dominate correctly.
                if node.state != NodeState::Open && node.reward < max_child - 1e-12 {
                    return Some(format!(
                        "node {i}: reward {} below children max {max_child}",
                        node.reward
                    ));
                }
                if na.state == NodeState::Closed
                    && nb.state == NodeState::Closed
                    && node.state != NodeState::Closed
                {
                    return Some(format!("node {i}: both children closed but node open"));
                }
            } else if node.subtree_size != 1 {
                return Some(format!("leaf {i}: subtree size {} != 1", node.subtree_size));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_builds_split_sequences() {
        let mut tree = BabTree::new(-2.0);
        let n0 = NeuronId::new(0, 1);
        let (pos, neg) = tree.expand(NodeId::ROOT, n0, -1.0, -1.5);
        assert_eq!(tree.node(pos).splits.sign_of(n0), Some(SplitSign::Pos));
        assert_eq!(tree.node(neg).splits.sign_of(n0), Some(SplitSign::Neg));
        let n1 = NeuronId::new(1, 0);
        let (pp, _) = tree.expand(pos, n1, -0.2, -0.9);
        assert_eq!(tree.node(pp).depth, 2);
        assert_eq!(tree.node(pp).splits.len(), 2);
    }

    #[test]
    fn subtree_sizes_propagate_to_root() {
        let mut tree = BabTree::new(-2.0);
        let (pos, _) = tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -1.0, -1.0);
        tree.expand(pos, NeuronId::new(0, 1), -0.5, -0.5);
        assert_eq!(tree.node(NodeId::ROOT).subtree_size, 5);
        assert_eq!(tree.node(pos).subtree_size, 3);
    }

    #[test]
    fn p_hat_min_tracks_most_negative() {
        let mut tree = BabTree::new(-2.0);
        assert_eq!(tree.p_hat_min(), -2.0);
        tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -3.5, -0.1);
        assert_eq!(tree.p_hat_min(), -3.5);
        tree.observe_p_hat(-1.0);
        assert_eq!(tree.p_hat_min(), -3.5);
    }

    #[test]
    fn back_propagation_takes_max_and_closes() {
        let mut tree = BabTree::new(-2.0);
        let (pos, neg) = tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -1.0, -1.0);
        tree.node_mut(pos).reward = 0.4;
        tree.node_mut(neg).reward = 0.7;
        tree.back_propagate(NodeId::ROOT);
        assert_eq!(tree.node(NodeId::ROOT).reward, 0.7);

        tree.close(pos);
        tree.close(neg);
        tree.back_propagate(NodeId::ROOT);
        assert_eq!(tree.node(NodeId::ROOT).state, NodeState::Closed);
        assert_eq!(tree.node(NodeId::ROOT).reward, f64::NEG_INFINITY);
    }

    #[test]
    fn infinite_reward_propagates_up() {
        let mut tree = BabTree::new(-2.0);
        let (pos, _) = tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -1.0, -1.0);
        let (pp, _) = tree.expand(pos, NeuronId::new(0, 1), -0.5, -0.5);
        tree.node_mut(pp).reward = f64::INFINITY;
        tree.back_propagate(pos);
        assert_eq!(tree.node(NodeId::ROOT).reward, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "already expanded")]
    fn double_expansion_panics() {
        let mut tree = BabTree::new(-1.0);
        tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -1.0, -1.0);
        tree.expand(NodeId::ROOT, NeuronId::new(0, 1), -1.0, -1.0);
    }

    #[test]
    fn invariants_hold_through_random_growth() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        runner
            .run(
                &proptest::collection::vec((0usize..64, -3.0..0.0_f64, -3.0..0.0_f64), 1..40),
                |ops| {
                    let mut tree = BabTree::new(-2.0);
                    let mut frontier = vec![NodeId::ROOT];
                    for (pick, pa, pb) in ops {
                        let node = frontier[pick % frontier.len()];
                        if tree.node(node).children.is_some() {
                            continue;
                        }
                        let neuron = NeuronId::new(0, tree.len());
                        let (a, b) = tree.expand(node, neuron, pa, pb);
                        tree.node_mut(a).reward = 0.5;
                        tree.node_mut(b).reward = 0.25;
                        tree.back_propagate(node);
                        frontier.push(a);
                        frontier.push(b);
                    }
                    prop_assert_eq!(tree.check_invariants(), None);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn closing_all_leaves_closes_the_root() {
        let mut tree = BabTree::new(-1.0);
        let (a, b) = tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -0.5, -0.5);
        let (aa, ab) = tree.expand(a, NeuronId::new(0, 1), -0.3, -0.3);
        for leaf in [aa, ab] {
            tree.close(leaf);
        }
        tree.back_propagate(a);
        assert_eq!(tree.node(a).state, NodeState::Closed);
        assert_eq!(tree.node(NodeId::ROOT).state, NodeState::Expanded);
        tree.close(b);
        tree.back_propagate(NodeId::ROOT);
        assert_eq!(tree.node(NodeId::ROOT).state, NodeState::Closed);
        assert_eq!(tree.check_invariants(), None);
    }

    #[test]
    fn max_depth_reflects_growth() {
        let mut tree = BabTree::new(-1.0);
        assert_eq!(tree.max_depth(), 0);
        let (pos, _) = tree.expand(NodeId::ROOT, NeuronId::new(0, 0), -1.0, -1.0);
        tree.expand(pos, NeuronId::new(0, 1), -1.0, -1.0);
        assert_eq!(tree.max_depth(), 2);
    }
}
