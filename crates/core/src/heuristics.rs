//! ReLU selection (branching) heuristics — the `H` of Algorithm 1.
//!
//! ABONN is orthogonal to the branching heuristic (§VI of the paper): it
//! changes *which sub-problem to visit next*, not *how a sub-problem is
//! split*. Following the paper we default to a DeepSplit-style
//! indirect-effect score, and also provide the classic BaBSR score, a
//! max-range baseline, and a seeded random pick for ablations.

use abonn_bound::{Analysis, NeuronId, SplitSet};
use abonn_nn::CanonicalNetwork;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Everything a heuristic may consult when picking the next ReLU to split.
#[derive(Debug, Clone, Copy)]
pub struct BranchContext<'a> {
    /// The margin-form network under verification.
    pub net: &'a CanonicalNetwork,
    /// The verifier's analysis of the current sub-problem.
    pub analysis: &'a Analysis,
    /// The current split set `Γ`.
    pub splits: &'a SplitSet,
}

/// A ReLU selection heuristic.
pub trait BranchingHeuristic: Send + Sync {
    /// Picks the neuron to split, or `None` when no unstable unsplit
    /// neuron remains.
    fn select(&self, ctx: &BranchContext<'_>) -> Option<NeuronId>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Serializable choice of heuristic, turned into a concrete instance per
/// problem with [`HeuristicKind::build`] (score tables are precomputed per
/// network).
///
/// # Examples
///
/// ```
/// use abonn_core::heuristics::HeuristicKind;
/// use abonn_nn::{AffinePair, CanonicalNetwork};
/// use abonn_tensor::Matrix;
///
/// let net = CanonicalNetwork::from_affine_pairs(2, vec![
///     AffinePair::new(Matrix::identity(2), vec![0.0; 2]),
///     AffinePair::new(Matrix::from_rows(&[&[1.0, -1.0]]), vec![0.0]),
/// ]);
/// let heuristic = HeuristicKind::DeepSplit.build(&net);
/// assert_eq!(heuristic.name(), "deepsplit");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// DeepSplit-style indirect-effect score (the paper's default).
    DeepSplit,
    /// BaBSR-style relaxation-intercept score.
    Babsr,
    /// Widest unstable interval.
    MaxRange,
    /// Deterministic pseudo-random pick (for ablations).
    Random(u64),
}

impl HeuristicKind {
    /// Instantiates the heuristic for `net`.
    #[must_use]
    pub fn build(&self, net: &CanonicalNetwork) -> Box<dyn BranchingHeuristic> {
        match self {
            HeuristicKind::DeepSplit => Box::new(DeepSplitLike::for_network(net)),
            HeuristicKind::Babsr => Box::new(BabsrScore::for_network(net)),
            HeuristicKind::MaxRange => Box::new(MaxRange),
            HeuristicKind::Random(seed) => Box::new(Random { seed: *seed }),
        }
    }
}

/// Per-neuron "influence" of each ReLU layer on the output: column sums of
/// the product of absolute weight matrices from that layer to the output.
/// A crude but effective stand-in for sensitivity/indirect-effect
/// estimates, computable once per network.
fn output_influence(net: &CanonicalNetwork) -> Vec<Vec<f64>> {
    let layers = net.layers();
    let mut influence = vec![Vec::new(); layers.len().saturating_sub(1)];
    // v over the current stage's outputs, starting at the network output.
    let last = layers.len() - 1;
    let mut v = vec![1.0; layers[last].out_dim()];
    for j in (0..last).rev() {
        // Influence of a_j on the output goes through W_{j+1}.
        let w = &layers[j + 1].weight;
        let mut vj = vec![0.0; w.cols()];
        for (r, &vr) in v.iter().enumerate() {
            for (t, &wv) in w.row(r).iter().enumerate() {
                vj[t] += vr * wv.abs();
            }
        }
        influence[j] = vj.clone();
        v = vj;
    }
    influence
}

/// Picks the unstable neuron maximising `score`; ties go to the earlier
/// (layer, index).
fn argmax_unstable(
    ctx: &BranchContext<'_>,
    mut score: impl FnMut(NeuronId, f64, f64) -> f64,
) -> Option<NeuronId> {
    let mut best: Option<(NeuronId, f64)> = None;
    for id in ctx.analysis.unstable_neurons(ctx.splits) {
        let lb = &ctx.analysis.bounds[id.layer];
        let (l, u) = (lb.lower[id.index], lb.upper[id.index]);
        let s = score(id, l, u);
        match best {
            Some((_, bs)) if bs >= s => {}
            _ => best = Some((id, s)),
        }
    }
    best.map(|(id, _)| id)
}

/// DeepSplit-style heuristic: scores each unstable ReLU by the estimated
/// *indirect effect* of stabilising it — the relaxation triangle's area
/// `½·(−l)·u` weighted by the neuron's influence on the output.
#[derive(Debug, Clone)]
pub struct DeepSplitLike {
    influence: Vec<Vec<f64>>,
}

impl DeepSplitLike {
    /// Precomputes influence tables for `net`.
    #[must_use]
    pub fn for_network(net: &CanonicalNetwork) -> Self {
        Self {
            influence: output_influence(net),
        }
    }
}

impl BranchingHeuristic for DeepSplitLike {
    fn select(&self, ctx: &BranchContext<'_>) -> Option<NeuronId> {
        argmax_unstable(ctx, |id, l, u| {
            0.5 * (-l) * u * self.influence[id.layer][id.index]
        })
    }

    fn name(&self) -> &'static str {
        "deepsplit"
    }
}

/// BaBSR-style heuristic: scores by the upper relaxation's intercept
/// `u·(−l)/(u−l)` (the bound slack the split removes), influence-weighted.
#[derive(Debug, Clone)]
pub struct BabsrScore {
    influence: Vec<Vec<f64>>,
}

impl BabsrScore {
    /// Precomputes influence tables for `net`.
    #[must_use]
    pub fn for_network(net: &CanonicalNetwork) -> Self {
        Self {
            influence: output_influence(net),
        }
    }
}

impl BranchingHeuristic for BabsrScore {
    fn select(&self, ctx: &BranchContext<'_>) -> Option<NeuronId> {
        argmax_unstable(ctx, |id, l, u| {
            let intercept = if u > l { u * (-l) / (u - l) } else { 0.0 };
            intercept * self.influence[id.layer][id.index]
        })
    }

    fn name(&self) -> &'static str {
        "babsr"
    }
}

/// Picks the unstable neuron whose interval reaches furthest into both
/// phases (`min(−l, u)` maximal).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxRange;

impl BranchingHeuristic for MaxRange {
    fn select(&self, ctx: &BranchContext<'_>) -> Option<NeuronId> {
        argmax_unstable(ctx, |_, l, u| (-l).min(u))
    }

    fn name(&self) -> &'static str {
        "max-range"
    }
}

/// Deterministic pseudo-random pick: hashes the split set and a seed so
/// the same node always branches the same way within a run.
#[derive(Debug, Clone, Copy)]
pub struct Random {
    /// Hash seed.
    pub seed: u64,
}

impl BranchingHeuristic for Random {
    fn select(&self, ctx: &BranchContext<'_>) -> Option<NeuronId> {
        let unstable = ctx.analysis.unstable_neurons(ctx.splits);
        if unstable.is_empty() {
            return None;
        }
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        for (n, s) in ctx.splits.iter() {
            (n.layer, n.index, s == abonn_bound::SplitSign::Pos).hash(&mut hasher);
        }
        let pick = (hasher.finish() as usize) % unstable.len();
        Some(unstable[pick])
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_bound::{AppVer, DeepPoly, InputBox};
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;

    /// Two unstable neurons; neuron 1 has a much larger effect on the
    /// output (weight 10 vs 0.1).
    fn lopsided_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            2,
            vec![
                AffinePair::new(Matrix::identity(2), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[0.1, 10.0]]), vec![-1.0]),
            ],
        )
    }

    fn analyze(net: &CanonicalNetwork) -> Analysis {
        DeepPoly::new().analyze(
            net,
            &InputBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]),
            &SplitSet::new(),
        )
    }

    #[test]
    fn influence_weighted_heuristics_prefer_the_heavy_neuron() {
        let net = lopsided_net();
        let analysis = analyze(&net);
        let splits = SplitSet::new();
        let ctx = BranchContext {
            net: &net,
            analysis: &analysis,
            splits: &splits,
        };
        for kind in [HeuristicKind::DeepSplit, HeuristicKind::Babsr] {
            let h = kind.build(&net);
            assert_eq!(
                h.select(&ctx),
                Some(NeuronId::new(0, 1)),
                "{} should pick the influential neuron",
                h.name()
            );
        }
    }

    #[test]
    fn all_heuristics_return_none_when_nothing_is_unstable() {
        let net = lopsided_net();
        let analysis = analyze(&net);
        // Split both neurons: nothing left.
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), abonn_bound::SplitSign::Pos)
            .with(NeuronId::new(0, 1), abonn_bound::SplitSign::Neg);
        let ctx = BranchContext {
            net: &net,
            analysis: &analysis,
            splits: &splits,
        };
        for kind in [
            HeuristicKind::DeepSplit,
            HeuristicKind::Babsr,
            HeuristicKind::MaxRange,
            HeuristicKind::Random(1),
        ] {
            assert_eq!(kind.build(&net).select(&ctx), None);
        }
    }

    #[test]
    fn random_is_deterministic_per_node() {
        let net = lopsided_net();
        let analysis = analyze(&net);
        let splits = SplitSet::new();
        let ctx = BranchContext {
            net: &net,
            analysis: &analysis,
            splits: &splits,
        };
        let h = HeuristicKind::Random(9).build(&net);
        assert_eq!(h.select(&ctx), h.select(&ctx));
    }

    #[test]
    fn max_range_prefers_balanced_wide_intervals() {
        let net = lopsided_net();
        // Fake analysis with controlled bounds: neuron 0 straddles widely,
        // neuron 1 barely crosses zero.
        let analysis = Analysis {
            p_hat: -1.0,
            candidate: None,
            bounds: vec![
                abonn_bound::LayerBounds::new(vec![-2.0, -0.1], vec![2.0, 0.1]),
                abonn_bound::LayerBounds::new(vec![-1.0], vec![1.0]),
            ],
            infeasible: false,
        };
        let splits = SplitSet::new();
        let ctx = BranchContext {
            net: &net,
            analysis: &analysis,
            splits: &splits,
        };
        assert_eq!(MaxRange.select(&ctx), Some(NeuronId::new(0, 0)));
    }

    #[test]
    fn influence_reflects_weight_magnitudes() {
        let net = lopsided_net();
        let inf = output_influence(&net);
        assert_eq!(inf.len(), 1);
        assert!(inf[0][1] > inf[0][0] * 50.0);
    }
}
