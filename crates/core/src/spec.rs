//! Specification encoding: local robustness as a margin network.

use abonn_bound::InputBox;
use abonn_nn::{CanonicalNetwork, Network};
use abonn_tensor::Matrix;
use std::error::Error;
use std::fmt;

/// Error building a [`RobustnessProblem`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// `label` is not a valid output class of the network.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The network's number of classes.
        classes: usize,
    },
    /// The reference input has the wrong dimensionality.
    InputDimMismatch {
        /// Provided input length.
        got: usize,
        /// Expected input length.
        expected: usize,
    },
    /// The radius is not a positive finite number.
    BadEpsilon(f64),
    /// The network could not be lowered to canonical form.
    Lowering(String),
    /// A VNN-LIB property does not fit the supported robustness shape or
    /// disagrees with the network's dimensions.
    BadProperty(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            SpecError::InputDimMismatch { got, expected } => {
                write!(f, "input has {got} values, network expects {expected}")
            }
            SpecError::BadEpsilon(e) => write!(f, "epsilon {e} must be positive and finite"),
            SpecError::Lowering(msg) => write!(f, "cannot lower network: {msg}"),
            SpecError::BadProperty(msg) => write!(f, "unusable property: {msg}"),
        }
    }
}

impl Error for SpecError {}

/// A verification problem in *margin form*: the specification holds on
/// the region iff every output of `margin_net` is positive there.
///
/// The common instantiation is L∞ local robustness
/// (`∀x. ‖x − x₀‖∞ ≤ ε ∧ x ∈ [0,1]ⁿ ⇒ argmax N(x) = label`, margin rows
/// `logit_label − logit_j`), built by [`RobustnessProblem::new`] or
/// [`RobustnessProblem::from_vnnlib`]. General output constraints
/// (ACAS-Xu-style safety properties `C·N(x) + d > 0`) are built with
/// [`RobustnessProblem::from_output_constraints`]; those carry no class
/// label, so attack-based shortcuts are skipped automatically.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct RobustnessProblem {
    network: Network,
    margin_net: CanonicalNetwork,
    region: InputBox,
    input: Vec<f64>,
    label: Option<usize>,
    epsilon: f64,
}

impl RobustnessProblem {
    /// Encodes the robustness query for `net` around `input` with radius
    /// `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the label, input size, or radius is
    /// invalid, or the network cannot be lowered.
    pub fn new(
        net: &Network,
        input: Vec<f64>,
        label: usize,
        epsilon: f64,
    ) -> Result<Self, SpecError> {
        if input.len() != net.input_dim() {
            return Err(SpecError::InputDimMismatch {
                got: input.len(),
                expected: net.input_dim(),
            });
        }
        let classes = net.output_dim();
        if label >= classes {
            return Err(SpecError::LabelOutOfRange { label, classes });
        }
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(SpecError::BadEpsilon(epsilon));
        }
        let adversarial: Vec<usize> = (0..classes).filter(|&j| j != label).collect();
        let region = InputBox::linf_ball(&input, epsilon, 0.0, 1.0);
        Self::build(net, region, input, label, epsilon, adversarial)
    }

    /// Encodes a general safety property `∀x ∈ region: C·N(x) + d > 0`
    /// (every margin row positive), the form ACAS-Xu-style properties
    /// take. No class label is involved, so label-guided attacks are
    /// disabled for the resulting problem.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the region or constraint dimensions
    /// disagree with the network, or the network cannot be lowered.
    pub fn from_output_constraints(
        net: &Network,
        region: InputBox,
        c: &Matrix,
        d: &[f64],
    ) -> Result<Self, SpecError> {
        if region.dim() != net.input_dim() {
            return Err(SpecError::InputDimMismatch {
                got: region.dim(),
                expected: net.input_dim(),
            });
        }
        if c.cols() != net.output_dim() {
            return Err(SpecError::BadProperty(format!(
                "constraint matrix has {} columns, network has {} outputs",
                c.cols(),
                net.output_dim()
            )));
        }
        if d.len() != c.rows() || c.rows() == 0 {
            return Err(SpecError::BadProperty(
                "constraint rows and offsets must be non-empty and equal-length".into(),
            ));
        }
        let canon = CanonicalNetwork::from_network(net)
            .map_err(|e| SpecError::Lowering(e.to_string()))?;
        let margin_net = canon.with_output_transform(c, d);
        let input = region.center();
        let epsilon = region
            .lo()
            .iter()
            .zip(region.hi())
            .map(|(l, h)| 0.5 * (h - l))
            .fold(0.0_f64, f64::max)
            .max(1e-9);
        Ok(Self {
            network: net.clone(),
            margin_net,
            region,
            input,
            label: None,
            epsilon,
        })
    }

    /// Encodes a robustness query from a parsed VNN-LIB property.
    ///
    /// The property must have the classification-robustness shape
    /// recognised by [`abonn_vnnlib::Property::as_robustness`]; its input
    /// box becomes the verification region and its disjuncts select the
    /// adversarial classes (which may be a strict subset of all classes).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::BadProperty`] for non-robustness shapes or
    /// dimension mismatches, and the other variants as in
    /// [`RobustnessProblem::new`].
    pub fn from_vnnlib(
        net: &Network,
        property: &abonn_vnnlib::Property,
    ) -> Result<Self, SpecError> {
        let canon =
            CanonicalNetwork::from_network(net).map_err(|e| SpecError::Lowering(e.to_string()))?;
        Self::from_vnnlib_prelowered(net, &canon, property)
    }

    /// [`RobustnessProblem::from_vnnlib`] with the lowering step hoisted
    /// out: `canon` must be `CanonicalNetwork::from_network(net)`.
    ///
    /// Long-lived services answering many queries against the same model
    /// lower it once, cache the canonical form, and build each query's
    /// margin network from the cached copy.
    ///
    /// # Errors
    ///
    /// As [`RobustnessProblem::from_vnnlib`].
    pub fn from_vnnlib_prelowered(
        net: &Network,
        canon: &CanonicalNetwork,
        property: &abonn_vnnlib::Property,
    ) -> Result<Self, SpecError> {
        if property.num_inputs() != net.input_dim() {
            return Err(SpecError::InputDimMismatch {
                got: property.num_inputs(),
                expected: net.input_dim(),
            });
        }
        if property.num_outputs != net.output_dim() {
            return Err(SpecError::BadProperty(format!(
                "property declares {} outputs, network has {}",
                property.num_outputs,
                net.output_dim()
            )));
        }
        let (label, adversarial) = property.as_robustness().ok_or_else(|| {
            SpecError::BadProperty("not a classification-robustness property".into())
        })?;
        if label >= net.output_dim() || adversarial.iter().any(|&j| j >= net.output_dim()) {
            return Err(SpecError::BadProperty("class index out of range".into()));
        }
        if adversarial.is_empty() {
            return Err(SpecError::BadProperty("no adversarial classes".into()));
        }
        // Wire-supplied boxes can be empty (contradictory bounds); the
        // InputBox constructor treats that as a caller bug and panics, so
        // reject it here where "caller" means an untrusted client.
        if let Some(i) = (0..property.num_inputs())
            .find(|&i| property.input_lo[i] > property.input_hi[i])
        {
            return Err(SpecError::BadProperty(format!(
                "empty input box: lo[{i}] = {} > hi[{i}] = {}",
                property.input_lo[i], property.input_hi[i]
            )));
        }
        let region = InputBox::new(property.input_lo.clone(), property.input_hi.clone());
        let input: Vec<f64> = region.center();
        let epsilon = property
            .input_lo
            .iter()
            .zip(&property.input_hi)
            .map(|(l, h)| 0.5 * (h - l))
            .fold(0.0_f64, f64::max)
            .max(1e-9);
        Self::build_prelowered(net, canon, region, input, label, epsilon, adversarial)
    }

    /// Shared constructor: margin rows `e_label − e_j` for each
    /// adversarial class `j`.
    fn build(
        net: &Network,
        region: InputBox,
        input: Vec<f64>,
        label: usize,
        epsilon: f64,
        adversarial: Vec<usize>,
    ) -> Result<Self, SpecError> {
        let canon =
            CanonicalNetwork::from_network(net).map_err(|e| SpecError::Lowering(e.to_string()))?;
        Self::build_prelowered(net, &canon, region, input, label, epsilon, adversarial)
    }

    /// [`RobustnessProblem::build`] with the network already lowered.
    fn build_prelowered(
        net: &Network,
        canon: &CanonicalNetwork,
        region: InputBox,
        input: Vec<f64>,
        label: usize,
        epsilon: f64,
        adversarial: Vec<usize>,
    ) -> Result<Self, SpecError> {
        let classes = net.output_dim();
        let mut c = Matrix::zeros(adversarial.len(), classes);
        for (r, &j) in adversarial.iter().enumerate() {
            c.set(r, label, 1.0);
            c.set(r, j, -1.0);
        }
        let margin_net = canon.with_output_transform(&c, &vec![0.0; adversarial.len()]);
        Ok(Self {
            network: net.clone(),
            margin_net,
            region,
            input,
            label: Some(label),
            epsilon,
        })
    }

    /// The original network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The margin-form canonical network consumed by `AppVer`s.
    #[must_use]
    pub fn margin_net(&self) -> &CanonicalNetwork {
        &self.margin_net
    }

    /// The perturbation region.
    #[must_use]
    pub fn region(&self) -> &InputBox {
        &self.region
    }

    /// The reference input `x₀`.
    #[must_use]
    pub fn input(&self) -> &[f64] {
        &self.input
    }

    /// The required label, when the problem is a classification-robustness
    /// query (`None` for general output-constraint properties).
    #[must_use]
    pub fn label(&self) -> Option<usize> {
        self.label
    }

    /// The perturbation radius ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Total number of ReLU neurons — the `K` of the paper's Def. 1.
    #[must_use]
    pub fn num_relu_neurons(&self) -> usize {
        self.margin_net.num_relu_neurons()
    }

    /// Validates a candidate counterexample: inside the region *and* with
    /// some margin output non-positive — i.e. an adversarial class matches
    /// or beats the required label (the paper's `valid(x̂)`, in VNN-LIB's
    /// non-strict violation semantics).
    #[must_use]
    pub fn validate_witness(&self, x: &[f64]) -> bool {
        self.region.contains(x, 1e-9) && self.margin_net.forward(x).into_iter().any(|m| m <= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Shape};

    fn three_class_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, -1.0]]),
                vec![0.0, 0.0, 0.6],
            )],
        )
        .unwrap()
    }

    #[test]
    fn margin_net_is_positive_iff_correctly_classified() {
        let net = three_class_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.1], 0, 0.05).unwrap();
        // At x0, class 0 wins, so all margins positive.
        let margins = p.margin_net().forward(&[0.8, 0.1]);
        assert_eq!(margins.len(), 2);
        assert!(margins.iter().all(|&m| m > 0.0));
        // At a point where class 1 wins, some margin is negative.
        let margins = p.margin_net().forward(&[0.1, 0.9]);
        assert!(margins.iter().any(|&m| m < 0.0));
    }

    #[test]
    fn witness_validation_checks_region_and_classification() {
        let net = three_class_net();
        let p = RobustnessProblem::new(&net, vec![0.5, 0.45], 0, 0.1).unwrap();
        // Inside the ball and misclassified (x1 > x0 → class 1).
        assert!(p.validate_witness(&[0.45, 0.55]));
        // Correctly classified point is not a witness.
        assert!(!p.validate_witness(&[0.6, 0.4]));
        // Outside the ball is not a witness even if misclassified.
        assert!(!p.validate_witness(&[0.0, 1.0]));
    }

    #[test]
    fn rejects_bad_parameters() {
        let net = three_class_net();
        assert!(matches!(
            RobustnessProblem::new(&net, vec![0.5], 0, 0.1),
            Err(SpecError::InputDimMismatch { .. })
        ));
        assert!(matches!(
            RobustnessProblem::new(&net, vec![0.5, 0.5], 7, 0.1),
            Err(SpecError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            RobustnessProblem::new(&net, vec![0.5, 0.5], 0, -1.0),
            Err(SpecError::BadEpsilon(_))
        ));
    }

    #[test]
    fn region_is_clamped_to_unit_box() {
        let net = three_class_net();
        let p = RobustnessProblem::new(&net, vec![0.02, 0.99], 0, 0.1).unwrap();
        assert!(p.region().lo().iter().all(|&v| v >= 0.0));
        assert!(p.region().hi().iter().all(|&v| v <= 1.0));
    }

    #[test]
    fn vnnlib_roundtrip_builds_equivalent_problem() {
        let net = three_class_net();
        let direct = RobustnessProblem::new(&net, vec![0.5, 0.45], 0, 0.1).unwrap();
        let text = abonn_vnnlib::write_robustness(&[0.5, 0.45], 0.1, 0, 3);
        let property = abonn_vnnlib::parse(&text).unwrap();
        let via_vnnlib = RobustnessProblem::from_vnnlib(&net, &property).unwrap();
        assert_eq!(via_vnnlib.label(), Some(0));
        assert_eq!(direct.region(), via_vnnlib.region());
        let x = [0.45, 0.5];
        assert_eq!(
            direct.margin_net().forward(&x),
            via_vnnlib.margin_net().forward(&x)
        );
        assert_eq!(direct.validate_witness(&x), via_vnnlib.validate_witness(&x));
    }

    #[test]
    fn empty_wire_box_is_rejected_not_panicked() {
        // A client can assert contradictory bounds; the parser accepts
        // them (the box is syntactically complete), so the spec layer
        // must reject the empty region instead of tripping InputBox's
        // panic.
        let net = three_class_net();
        let text = "\
(declare-const X_0 Real)
(declare-const X_1 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(declare-const Y_2 Real)
(assert (>= X_0 0.9))
(assert (<= X_0 0.1))
(assert (>= X_1 0.0))
(assert (<= X_1 1.0))
(assert (or (and (<= Y_0 Y_1))))
";
        let property = abonn_vnnlib::parse(text).unwrap();
        assert!(matches!(
            RobustnessProblem::from_vnnlib(&net, &property),
            Err(SpecError::BadProperty(_))
        ));
    }

    #[test]
    fn prelowered_constructor_matches_from_vnnlib() {
        let net = three_class_net();
        let canon = CanonicalNetwork::from_network(&net).unwrap();
        let text = abonn_vnnlib::write_robustness(&[0.5, 0.45], 0.1, 0, 3);
        let property = abonn_vnnlib::parse(&text).unwrap();
        let direct = RobustnessProblem::from_vnnlib(&net, &property).unwrap();
        let pre = RobustnessProblem::from_vnnlib_prelowered(&net, &canon, &property).unwrap();
        assert_eq!(direct.region(), pre.region());
        assert_eq!(direct.label(), pre.label());
        let x = [0.45, 0.5];
        assert_eq!(
            direct.margin_net().forward(&x),
            pre.margin_net().forward(&x)
        );
    }

    #[test]
    fn vnnlib_dimension_mismatch_rejected() {
        let net = three_class_net();
        let text = abonn_vnnlib::write_robustness(&[0.5, 0.45, 0.1], 0.1, 0, 3);
        let property = abonn_vnnlib::parse(&text).unwrap();
        assert!(matches!(
            RobustnessProblem::from_vnnlib(&net, &property),
            Err(SpecError::InputDimMismatch { .. })
        ));
        let text = abonn_vnnlib::write_robustness(&[0.5, 0.45], 0.1, 0, 5);
        let property = abonn_vnnlib::parse(&text).unwrap();
        assert!(matches!(
            RobustnessProblem::from_vnnlib(&net, &property),
            Err(SpecError::BadProperty(_))
        ));
    }

    #[test]
    fn subset_adversarial_classes_narrow_the_margin_net() {
        let net = three_class_net();
        // Only class 2 is adversarial: one margin row.
        let text = "\
(declare-const X_0 Real)
(declare-const X_1 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(declare-const Y_2 Real)
(assert (>= X_0 0.4))
(assert (<= X_0 0.6))
(assert (>= X_1 0.3))
(assert (<= X_1 0.5))
(assert (or (and (<= Y_0 Y_2))))
";
        let property = abonn_vnnlib::parse(text).unwrap();
        let p = RobustnessProblem::from_vnnlib(&net, &property).unwrap();
        assert_eq!(p.margin_net().output_dim(), 1);
        // A point where class 1 beats class 0 is NOT a witness here,
        // because only class 2 matters for this property.
        assert!(!p.validate_witness(&[0.41, 0.5]));
    }

    #[test]
    fn output_constraint_problem_encodes_safety_properties() {
        let net = three_class_net();
        // Safety: logit 2 stays below 0.7 on the box (i.e. 0.7 − y2 > 0).
        let c = Matrix::from_rows(&[&[0.0, 0.0, -1.0]]);
        let region = InputBox::new(vec![0.2, 0.2], vec![0.4, 0.4]);
        let p =
            RobustnessProblem::from_output_constraints(&net, region, &c, &[0.7]).unwrap();
        assert_eq!(p.label(), None);
        assert_eq!(p.margin_net().output_dim(), 1);
        // y2 = -x0 - x1 + 0.6 ≤ 0.6 - 0.4 = 0.2 < 0.7 on the box: margin
        // positive at a sample point.
        let m = p.margin_net().forward(&[0.3, 0.3]);
        assert!(m[0] > 0.0);
        // Witness validation uses the margin rows directly: a point where
        // y2 ≥ 0.7 would be a violation; none exists in this box.
        assert!(!p.validate_witness(&[0.2, 0.2]));
    }

    #[test]
    fn output_constraint_dimension_checks() {
        let net = three_class_net();
        let region = InputBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // Wrong number of columns.
        let bad_c = Matrix::from_rows(&[&[1.0, 0.0]]);
        assert!(matches!(
            RobustnessProblem::from_output_constraints(&net, region.clone(), &bad_c, &[0.0]),
            Err(SpecError::BadProperty(_))
        ));
        // Offset length mismatch.
        let c = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        assert!(matches!(
            RobustnessProblem::from_output_constraints(&net, region.clone(), &c, &[0.0, 1.0]),
            Err(SpecError::BadProperty(_))
        ));
        // Wrong region dimensionality.
        let bad_region = InputBox::new(vec![0.0], vec![1.0]);
        assert!(matches!(
            RobustnessProblem::from_output_constraints(&net, bad_region, &c, &[0.0]),
            Err(SpecError::InputDimMismatch { .. })
        ));
    }
}
