//! ABONN: the MCTS-style adaptive BaB verification algorithm
//! (Algorithm 1 of the paper).
//!
//! Each iteration walks from the root towards an unexpanded node, choosing
//! among expanded children by UCB1 over counterexample-potentiality
//! rewards, then expands the reached node (two `AppVer` calls, one per
//! ReLU phase), validates any candidate counterexamples, and
//! back-propagates rewards and subtree sizes to the root. Termination:
//! a validated counterexample (`false`), a fully closed root (`true`), or
//! budget exhaustion (`timeout`).
//!
//! Deviations from the paper's pseudocode (reward propagation after the
//! recursive call, skipping closed subtrees, exact-LP leaf resolution) are
//! documented in `DESIGN.md` §3.

use crate::certificate::{Certificate, ProofNode};
use crate::driver::{
    check_candidate, resolve_exhausted_leaf, Budget, Clock, RunResult, RunStats, Verdict, Verifier,
};
use crate::heuristics::{BranchContext, HeuristicKind};
use crate::pool::WorkerPool;
use crate::potentiality::{potentiality, ucb1, NodeOutcome};
use crate::spec::RobustnessProblem;
use crate::tree::{BabTree, NodeId, NodeState};
use abonn_bound::{
    Analysis, AppVer, BoundComputeStats, BoundPrefix, CachedAnalysis, DeepPoly, SplitSet, SplitSign,
};
use std::sync::Arc;

/// Hyperparameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbonnConfig {
    /// λ — weight between node depth and `p̂` in counterexample
    /// potentiality (paper default 0.5).
    pub lambda: f64,
    /// c — UCB1 exploration constant (paper default 0.2).
    pub c: f64,
    /// PGD polish steps applied to spurious candidates before declaring a
    /// false alarm (0 reproduces the paper's plain `valid(x̂)` check).
    pub refine_steps: usize,
    /// Branching heuristic `H`.
    pub heuristic: HeuristicKind,
    /// Thread parent bound prefixes into child expansions so the verifier
    /// only recomputes layers below the split (results are bit-for-bit
    /// identical either way; disabling is for A/B checks and debugging).
    pub incremental: bool,
    /// Warm-start the exact-LP leaf solver from previously computed simplex
    /// bases (verdicts and reports are bit-for-bit identical either way;
    /// only in-memory work counters differ — see DESIGN.md §5f).
    pub warm_start: bool,
}

impl Default for AbonnConfig {
    fn default() -> Self {
        Self {
            lambda: 0.5,
            c: 0.2,
            refine_steps: 0,
            heuristic: HeuristicKind::DeepSplit,
            incremental: true,
            warm_start: true,
        }
    }
}

/// The ABONN verifier.
///
/// See the [crate-level example](crate) for usage.
#[derive(Clone)]
pub struct AbonnVerifier {
    /// Algorithm hyperparameters.
    pub config: AbonnConfig,
    appver: Arc<dyn AppVer>,
    pool: Arc<WorkerPool>,
}

impl Default for AbonnVerifier {
    fn default() -> Self {
        Self {
            config: AbonnConfig::default(),
            appver: Arc::new(DeepPoly::new()),
            pool: Arc::new(WorkerPool::inline()),
        }
    }
}

impl std::fmt::Debug for AbonnVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbonnVerifier")
            .field("config", &self.config)
            .field("appver", &self.appver.name())
            .finish()
    }
}

impl AbonnVerifier {
    /// Creates an ABONN verifier with the given configuration and
    /// approximated verifier.
    #[must_use]
    pub fn new(config: AbonnConfig, appver: Arc<dyn AppVer>) -> Self {
        Self {
            config,
            appver,
            pool: Arc::new(WorkerPool::inline()),
        }
    }

    /// Convenience constructor overriding only λ and c.
    #[must_use]
    pub fn with_hyperparameters(lambda: f64, c: f64) -> Self {
        Self {
            config: AbonnConfig {
                lambda,
                c,
                ..AbonnConfig::default()
            },
            appver: Arc::new(DeepPoly::new()),
            pool: Arc::new(WorkerPool::inline()),
        }
    }

    /// Runs the two `AppVer` calls of each expansion on `pool`
    /// ([`WorkerPool::join2`]). Verdicts, statistics, and certificates are
    /// bit-for-bit identical to the sequential search regardless of the
    /// pool size: the clock is charged up front and the two child results
    /// are applied in fixed (pos, neg) order.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }
}

/// Outcome of evaluating one fresh child node.
enum ChildEval {
    /// Child verified (or infeasible): close it.
    Closed,
    /// Real counterexample found.
    Witness(Vec<f64>),
    /// False alarm: keep exploring below it.
    FalseAlarm(Analysis),
}

/// A child evaluation plus its reusable bound prefix and work counters.
struct ChildOutcome {
    eval: ChildEval,
    prefix: Option<Arc<BoundPrefix>>,
    stats: BoundComputeStats,
}

struct Search<'p> {
    problem: &'p RobustnessProblem,
    config: AbonnConfig,
    appver: Arc<dyn AppVer>,
    pool: Arc<WorkerPool>,
    heuristic: Box<dyn crate::heuristics::BranchingHeuristic>,
    tree: BabTree,
    /// Analyses of open nodes, dropped on expansion.
    analyses: Vec<Option<Analysis>>,
    /// Bound prefixes of open nodes, threaded into their expansions and
    /// dropped afterwards (children carry their own).
    prefixes: Vec<Option<Arc<BoundPrefix>>>,
    clock: Clock,
    nodes_visited: usize,
}

/// Evaluates one fresh child sub-problem (one `AppVer` call). Pure in the
/// inputs — no clock or tree access — so the two children of an expansion
/// can be evaluated concurrently without touching shared search state.
/// With `incremental`, the parent's bound prefix lets the verifier skip
/// layers below the new split; the analysis is bit-for-bit the same.
fn evaluate_child(
    appver: &dyn AppVer,
    problem: &RobustnessProblem,
    refine_steps: usize,
    splits: &SplitSet,
    parent: Option<&Arc<BoundPrefix>>,
    incremental: bool,
) -> ChildOutcome {
    let cached = if incremental {
        appver.analyze_cached(problem.margin_net(), problem.region(), splits, parent)
    } else {
        CachedAnalysis::scratch(appver.analyze(problem.margin_net(), problem.region(), splits))
    };
    let CachedAnalysis {
        analysis,
        prefix,
        stats,
    } = cached;
    let eval = if analysis.verified() {
        ChildEval::Closed
    } else if let Some(w) = check_candidate(problem, &analysis, refine_steps) {
        ChildEval::Witness(w)
    } else {
        ChildEval::FalseAlarm(analysis)
    };
    ChildOutcome {
        eval,
        prefix,
        stats,
    }
}

impl<'p> Search<'p> {
    fn k_total(&self) -> usize {
        self.problem.num_relu_neurons().max(1)
    }

    fn reward_of(&self, depth: usize, p_hat: f64) -> f64 {
        potentiality(
            NodeOutcome::FalseAlarm { p_hat },
            depth,
            self.k_total(),
            self.tree.p_hat_min(),
            self.config.lambda,
        )
    }

    /// One MCTS iteration: select → expand → back-propagate.
    ///
    /// Returns `Some(witness)` when a counterexample is confirmed.
    fn step(&mut self) -> Option<Vec<f64>> {
        // Selection: descend through expanded nodes by UCB1.
        let mut cur = NodeId::ROOT;
        while self.tree.node(cur).state == NodeState::Expanded {
            let (a, b) = self.tree.node(cur).children.expect("expanded node");
            let parent_visits = self.tree.node(cur).subtree_size;
            let score = |id: NodeId| {
                let n = self.tree.node(id);
                if n.state == NodeState::Closed {
                    f64::NEG_INFINITY
                } else {
                    ucb1(n.reward, self.config.c, parent_visits, n.subtree_size)
                }
            };
            let (sa, sb) = (score(a), score(b));
            // Both closed would have closed `cur` during back-propagation.
            cur = if sa >= sb { a } else { b };
        }
        self.nodes_visited += 1;

        // Expansion of the reached open node.
        let node_splits = self.tree.node(cur).splits.clone();
        let analysis = self.analyses[cur.index()]
            .take()
            .expect("open node retains its analysis");
        // The node's bound prefix seeds both child evaluations, then is
        // dropped — each surviving child carries its own.
        let parent_prefix = self.prefixes[cur.index()].take();
        let ctx = BranchContext {
            net: self.problem.margin_net(),
            analysis: &analysis,
            splits: &node_splits,
        };
        let Some(neuron) = self.heuristic.select(&ctx) else {
            // Every unstable ReLU on this path is split: resolve exactly.
            if let Some(w) = resolve_exhausted_leaf(
                self.problem,
                &node_splits,
                &mut self.clock,
                self.config.warm_start,
            ) {
                return Some(w);
            }
            self.tree.close(cur);
            if let Some(parent) = self.tree.node(cur).parent {
                self.tree.back_propagate(parent);
            }
            return None;
        };

        // The two phase analyses are independent, so they may run
        // concurrently on the pool; the clock is charged for both up front
        // and the results are applied in fixed (pos, neg) order below,
        // keeping the search identical to a sequential run.
        self.clock.appver_calls += 2;
        let pos_splits = node_splits.with(neuron, SplitSign::Pos);
        let neg_splits = node_splits.with(neuron, SplitSign::Neg);
        let (appver, problem, refine, incremental) = (
            &*self.appver,
            self.problem,
            self.config.refine_steps,
            self.config.incremental,
        );
        let parent = parent_prefix.as_ref();
        let (pos_out, neg_out) = self.pool.join2(
            || evaluate_child(appver, problem, refine, &pos_splits, parent, incremental),
            || evaluate_child(appver, problem, refine, &neg_splits, parent, incremental),
        );
        drop(parent_prefix);
        // Work counters are merged here on the search thread in fixed
        // (pos, neg) order, so they are invariant to the pool size.
        self.clock.bound_stats.absorb(&pos_out.stats);
        self.clock.bound_stats.absorb(&neg_out.stats);
        let child_results = vec![pos_out, neg_out];
        let p_hat_of = |r: &ChildOutcome| match &r.eval {
            ChildEval::FalseAlarm(a) => a.p_hat,
            _ => f64::INFINITY, // closed/witness children: p̂ unused below
        };
        let (pos_p, neg_p) = (p_hat_of(&child_results[0]), p_hat_of(&child_results[1]));
        let (pos_id, neg_id) = self.tree.expand(cur, neuron, pos_p, neg_p);
        self.analyses.resize(self.tree.len(), None);
        self.prefixes.resize(self.tree.len(), None);

        let mut witness = None;
        for (id, result) in [(pos_id, neg_id), (neg_id, pos_id)]
            .iter()
            .map(|&(id, _)| id)
            .zip(child_results)
        {
            match result.eval {
                ChildEval::Closed => self.tree.close(id),
                ChildEval::Witness(w) => {
                    self.tree.node_mut(id).reward = f64::INFINITY;
                    witness = Some(w);
                }
                ChildEval::FalseAlarm(a) => {
                    let depth = self.tree.node(id).depth;
                    self.tree.node_mut(id).reward = self.reward_of(depth, a.p_hat);
                    self.analyses[id.index()] = Some(a);
                    // Only nodes that stay open can be expanded later and
                    // profit from a cached prefix.
                    self.prefixes[id.index()] = result.prefix;
                }
            }
        }

        // Back-propagation (rewards, visits, and closure) to the root.
        self.tree.back_propagate(cur);
        debug_assert_eq!(self.tree.check_invariants(), None);
        witness
    }
}

impl AbonnVerifier {
    /// Like [`Verifier::verify`], additionally returning a checkable
    /// [`Certificate`] when the verdict is [`Verdict::Verified`], or a
    /// *partial* certificate (containing [`ProofNode::Open`] obligations,
    /// see [`Certificate::is_complete`]) when the budget ran out.
    ///
    /// The certificate is the branch tree: each leaf is one sub-problem a
    /// sound `AppVer` verified, each branch an exhaustive ReLU case
    /// split. Falsified runs carry their witness in the verdict instead.
    #[must_use]
    pub fn verify_with_certificate(
        &self,
        problem: &RobustnessProblem,
        budget: &Budget,
    ) -> (RunResult, Option<Certificate>) {
        self.verify_impl(problem, budget, true)
    }

    fn verify_impl(
        &self,
        problem: &RobustnessProblem,
        budget: &Budget,
        want_certificate: bool,
    ) -> (RunResult, Option<Certificate>) {
        let mut clock = Clock::new(*budget);

        // Initialisation (Lines 1–9): analyze the root problem.
        clock.appver_calls += 1;
        let root_cached = if self.config.incremental {
            self.appver
                .analyze_cached(problem.margin_net(), problem.region(), &SplitSet::new(), None)
        } else {
            CachedAnalysis::scratch(self.appver.analyze(
                problem.margin_net(),
                problem.region(),
                &SplitSet::new(),
            ))
        };
        clock.bound_stats.absorb(&root_cached.stats);
        let root_analysis = root_cached.analysis;
        let root_prefix = root_cached.prefix;
        let stats = |clock: &Clock, tree: Option<&BabTree>, visited: usize| RunStats {
            appver_calls: clock.appver_calls,
            nodes_visited: visited,
            tree_size: tree.map_or(1, BabTree::len),
            max_depth: tree.map_or(0, BabTree::max_depth),
            cache_layers_reused: clock.bound_stats.layers_reused,
            cache_layers_recomputed: clock.bound_stats.layers_recomputed,
            backsub_steps: clock.bound_stats.backsub_steps,
            lp_pivots: clock.bound_stats.lp_pivots,
            lp_warm_hits: clock.bound_stats.lp_warm_hits,
            lp_cold_solves: clock.bound_stats.lp_cold_solves,
            backsub_rows_skipped: clock.bound_stats.backsub_rows_skipped,
            backsub_rows_total: clock.bound_stats.backsub_rows_total,
            blocks_skipped: clock.bound_stats.blocks_skipped,
            arena_bytes_peak: clock.bound_stats.arena_bytes_peak,
            lp_pivot_cells: clock.bound_stats.lp_pivot_cells,
            wall: clock.elapsed(),
        };
        if root_analysis.verified() {
            let certificate = want_certificate.then(|| Certificate::new(ProofNode::root_leaf()));
            return (
                RunResult {
                    verdict: Verdict::Verified,
                    stats: stats(&clock, None, 1),
                },
                certificate,
            );
        }
        if let Some(w) = check_candidate(problem, &root_analysis, self.config.refine_steps) {
            return (
                RunResult {
                    verdict: Verdict::Falsified(w),
                    stats: stats(&clock, None, 1),
                },
                None,
            );
        }

        let tree = BabTree::new(root_analysis.p_hat);
        let heuristic = self.config.heuristic.build(problem.margin_net());
        let mut search = Search {
            problem,
            config: self.config,
            appver: Arc::clone(&self.appver),
            pool: Arc::clone(&self.pool),
            heuristic,
            tree,
            analyses: vec![Some(root_analysis)],
            prefixes: vec![root_prefix],
            clock,
            nodes_visited: 1,
        };
        let k = search.k_total();
        let root_p = search.tree.node(NodeId::ROOT).p_hat;
        search.tree.node_mut(NodeId::ROOT).reward = potentiality(
            NodeOutcome::FalseAlarm { p_hat: root_p },
            0,
            k,
            search.tree.p_hat_min(),
            search.config.lambda,
        );

        // Main loop (Lines 4–7).
        loop {
            if search.tree.node(NodeId::ROOT).state == NodeState::Closed {
                let certificate = want_certificate.then(|| certificate_from_tree(&search.tree));
                return (
                    RunResult {
                        verdict: Verdict::Verified,
                        stats: stats(&search.clock, Some(&search.tree), search.nodes_visited),
                    },
                    certificate,
                );
            }
            if search.clock.exhausted() {
                // Export the partial proof: closed leaves stand, still-open
                // sub-problems become `ProofNode::Open` obligations.
                let certificate = want_certificate.then(|| certificate_from_tree(&search.tree));
                return (
                    RunResult {
                        verdict: Verdict::Timeout,
                        stats: stats(&search.clock, Some(&search.tree), search.nodes_visited),
                    },
                    certificate,
                );
            }
            if let Some(w) = search.step() {
                return (
                    RunResult {
                        verdict: Verdict::Falsified(w),
                        stats: stats(&search.clock, Some(&search.tree), search.nodes_visited),
                    },
                    None,
                );
            }
        }
    }
}

/// Converts the BaB tree into a proof tree. Closed childless nodes become
/// verified leaves; nodes the search never resolved (timeout) become
/// [`ProofNode::Open`] obligations, yielding a partial certificate. Each
/// terminal records its own split set (the node's `Γ`) as provenance.
fn certificate_from_tree(tree: &crate::tree::BabTree) -> Certificate {
    fn convert(tree: &crate::tree::BabTree, id: NodeId) -> ProofNode {
        let provenance = || tree.node(id).splits.iter().collect();
        match tree.node(id).children {
            None if tree.node(id).state == NodeState::Closed => ProofNode::leaf(provenance()),
            None => ProofNode::open(provenance()),
            Some((pos, neg)) => ProofNode::Branch {
                neuron: tree
                    .node(id)
                    .branch_neuron
                    .expect("expanded node records its neuron"),
                pos: Box::new(convert(tree, pos)),
                neg: Box::new(convert(tree, neg)),
            },
        }
    }
    Certificate::new(convert(tree, NodeId::ROOT))
}

impl Verifier for AbonnVerifier {
    fn verify(&self, problem: &RobustnessProblem, budget: &Budget) -> RunResult {
        self.verify_impl(problem, budget, false).0
    }

    fn name(&self) -> String {
        format!(
            "ABONN(lambda={}, c={}, {})",
            self.config.lambda,
            self.config.c,
            self.appver.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    /// Classifier with logits (x0, x1): class 0 iff x0 > x1, with one
    /// hidden ReLU layer to give BaB something to split.
    fn relu_compare_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                    vec![0.0, 0.0, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn verifies_a_robust_instance() {
        let net = relu_compare_net();
        // Around (0.8, 0.2) with tiny radius class 0 always wins.
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        let r = AbonnVerifier::default().verify(&p, &Budget::with_appver_calls(200));
        assert_eq!(r.verdict, Verdict::Verified);
    }

    #[test]
    fn falsifies_a_vulnerable_instance() {
        let net = relu_compare_net();
        // Radius large enough to cross the x0 = x1 boundary.
        let p = RobustnessProblem::new(&net, vec![0.55, 0.45], 0, 0.2).unwrap();
        let r = AbonnVerifier::default().verify(&p, &Budget::with_appver_calls(500));
        match r.verdict {
            Verdict::Falsified(w) => assert!(p.validate_witness(&w)),
            v => panic!("expected falsification, got {v:?}"),
        }
    }

    #[test]
    fn times_out_gracefully_under_tiny_budget() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.52, 0.48], 0, 0.06).unwrap();
        let r = AbonnVerifier::default().verify(&p, &Budget::with_appver_calls(2));
        // With two calls it can at most analyze the root and start one
        // expansion; whatever the verdict, stats must be consistent.
        assert!(r.stats.appver_calls <= 4);
        if r.verdict == Verdict::Timeout {
            assert!(r.stats.tree_size >= 1);
        }
    }

    #[test]
    fn stats_are_populated() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.05).unwrap();
        let r = AbonnVerifier::default().verify(&p, &Budget::with_appver_calls(300));
        assert!(r.stats.appver_calls >= 1);
        assert!(r.stats.nodes_visited >= 1);
    }

    #[test]
    fn hyperparameter_constructor_plumbs_values() {
        let v = AbonnVerifier::with_hyperparameters(0.25, 0.7);
        assert_eq!(v.config.lambda, 0.25);
        assert_eq!(v.config.c, 0.7);
        assert!(v.name().contains("0.25"));
    }

    #[test]
    fn pure_exploitation_and_exploration_both_terminate() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.7, 0.3], 0, 0.1).unwrap();
        for c in [0.0, 1.0] {
            let v = AbonnVerifier::with_hyperparameters(0.5, c);
            let r = v.verify(&p, &Budget::with_appver_calls(400));
            assert!(
                r.verdict.is_solved() || r.stats.appver_calls >= 400,
                "c = {c} stalled"
            );
        }
    }
}
