//! Sequential verifier portfolios.
//!
//! Production pipelines rarely run a single algorithm: they try a cheap
//! attack, then a one-shot tight bound, then full branch and bound. A
//! [`Portfolio`] expresses that: stages run in order, each with a slice of
//! the total budget, and the first conclusive verdict wins. Timeouts fall
//! through to the next stage with the unused budget rolled forward.

use crate::driver::{Budget, RunResult, RunStats, Verdict, Verifier};
use crate::spec::RobustnessProblem;
use std::time::Instant;

/// One stage of a [`Portfolio`]: a verifier plus the fraction of the
/// remaining budget it may consume.
pub struct Stage {
    verifier: Box<dyn Verifier>,
    /// Fraction of the *remaining* budget allotted (in `(0, 1]`).
    fraction: f64,
}

impl Stage {
    /// Creates a stage.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(verifier: Box<dyn Verifier>, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "Stage::new: fraction must be in (0, 1]"
        );
        Self { verifier, fraction }
    }
}

/// A sequential portfolio of verifiers.
///
/// # Examples
///
/// ```
/// use abonn_core::{AbonnVerifier, Budget, CrownStyle, Portfolio, Stage, Verifier};
/// use abonn_core::RobustnessProblem;
/// use abonn_nn::{Layer, Network, Shape};
/// use abonn_tensor::Matrix;
///
/// let net = Network::new(
///     Shape::Flat(2),
///     vec![
///         Layer::dense(Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]]), vec![0.0, 0.4]),
///         Layer::relu(),
///         Layer::dense(Matrix::identity(2), vec![0.0, 0.0]),
///     ],
/// )?;
/// let problem = RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.05)?;
/// let portfolio = Portfolio::new(vec![
///     Stage::new(Box::new(CrownStyle::default()), 0.25),
///     Stage::new(Box::new(AbonnVerifier::default()), 1.0),
/// ]);
/// let result = portfolio.verify(&problem, &Budget::with_appver_calls(400));
/// assert!(result.verdict.is_solved());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Portfolio {
    stages: Vec<Stage>,
}

impl Portfolio {
    /// Creates a portfolio from stages run in order.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    #[must_use]
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "Portfolio::new: no stages");
        Self { stages }
    }

    /// The standard pipeline: a quick CROWN-style pass (attack + tight
    /// one-shot bounds) on a quarter of the budget, then ABONN with the
    /// rest.
    #[must_use]
    pub fn standard() -> Self {
        Self::standard_with_pool(std::sync::Arc::new(crate::pool::WorkerPool::inline()))
    }

    /// [`Portfolio::standard`], with the ABONN stage bounding its
    /// expansions on `pool`. Stages still run strictly in order; the pool
    /// only parallelises work *inside* a stage, so the verdict and stats
    /// match the sequential pipeline exactly.
    #[must_use]
    pub fn standard_with_pool(pool: std::sync::Arc<crate::pool::WorkerPool>) -> Self {
        Self::new(vec![
            Stage::new(Box::new(crate::crown::CrownStyle::default()), 0.25),
            Stage::new(
                Box::new(crate::mcts::AbonnVerifier::default().with_pool(pool)),
                1.0,
            ),
        ])
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the portfolio has no stages (never after `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Verifier for Portfolio {
    fn verify(&self, problem: &RobustnessProblem, budget: &Budget) -> RunResult {
        // Audit: `start` slices the caller's *opt-in* `wall_limit` across
        // stages (suite/report budgets are call-only, so that branch never
        // runs there) and fills `RunStats::wall`, which is in-memory only
        // and excluded from persisted reports. Stage order, call
        // accounting, and verdicts are pure functions of the call budget.
        // lint: allow(wall-clock-in-engine, slices opt-in wall budgets and fills the unpersisted RunStats::wall; call-only budgets make verdicts time-independent)
        let start = Instant::now();
        let mut remaining_calls = budget.max_appver_calls;
        let mut total = RunStats::default();
        let last = self.stages.len() - 1;
        for (i, stage) in self.stages.iter().enumerate() {
            let calls = if i == last {
                remaining_calls
            } else {
                ((remaining_calls as f64) * stage.fraction).ceil() as usize
            }
            .max(1);
            let mut sub = Budget::with_appver_calls(calls);
            if let Some(limit) = budget.wall_limit {
                let left = limit.saturating_sub(start.elapsed());
                if left.is_zero() {
                    break;
                }
                sub = sub.and_wall_limit(left);
            }
            let result = stage.verifier.verify(problem, &sub);
            total.appver_calls += result.stats.appver_calls;
            total.nodes_visited += result.stats.nodes_visited;
            total.tree_size = total.tree_size.max(result.stats.tree_size);
            total.max_depth = total.max_depth.max(result.stats.max_depth);
            remaining_calls = remaining_calls.saturating_sub(result.stats.appver_calls);
            if result.verdict.is_solved() {
                total.wall = start.elapsed();
                return RunResult {
                    verdict: result.verdict,
                    stats: total,
                };
            }
            if remaining_calls == 0 {
                break;
            }
        }
        total.wall = start.elapsed();
        RunResult {
            verdict: Verdict::Timeout,
            stats: total,
        }
    }

    fn name(&self) -> String {
        let names: Vec<String> = self.stages.iter().map(|s| s.verifier.name()).collect();
        format!("portfolio[{}]", names.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bab::BabBaseline;
    use crate::mcts::AbonnVerifier;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    fn relu_compare_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                    vec![0.0, 0.0, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn standard_portfolio_solves_both_polarities() {
        let net = relu_compare_net();
        let portfolio = Portfolio::standard();
        let budget = Budget::with_appver_calls(600);
        let robust = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        assert_eq!(portfolio.verify(&robust, &budget).verdict, Verdict::Verified);
        let fragile = RobustnessProblem::new(&net, vec![0.55, 0.45], 0, 0.2).unwrap();
        assert!(matches!(
            portfolio.verify(&fragile, &budget).verdict,
            Verdict::Falsified(_)
        ));
    }

    #[test]
    fn budget_is_shared_across_stages() {
        let net = relu_compare_net();
        let portfolio = Portfolio::new(vec![
            Stage::new(Box::new(BabBaseline::default()), 0.5),
            Stage::new(Box::new(AbonnVerifier::default()), 1.0),
        ]);
        let p = RobustnessProblem::new(&net, vec![0.52, 0.48], 0, 0.06).unwrap();
        let result = portfolio.verify(&p, &Budget::with_appver_calls(10));
        assert!(
            result.stats.appver_calls <= 14,
            "portfolio overspent: {} calls",
            result.stats.appver_calls
        );
    }

    #[test]
    fn pooled_portfolio_matches_sequential() {
        let net = relu_compare_net();
        let budget = Budget::with_appver_calls(600);
        let pooled =
            Portfolio::standard_with_pool(std::sync::Arc::new(crate::pool::WorkerPool::new(3)));
        let sequential = Portfolio::standard();
        for (x0, eps) in [(vec![0.8, 0.2], 0.02), (vec![0.55, 0.45], 0.2)] {
            let p = RobustnessProblem::new(&net, x0, 0, eps).unwrap();
            let a = sequential.verify(&p, &budget);
            let b = pooled.verify(&p, &budget);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.stats.appver_calls, b.stats.appver_calls);
            assert_eq!(a.stats.nodes_visited, b.stats.nodes_visited);
        }
    }

    #[test]
    fn name_lists_stages() {
        let name = Portfolio::standard().name();
        assert!(name.starts_with("portfolio["));
        assert!(name.contains("ABONN"));
    }

    #[test]
    #[should_panic(expected = "no stages")]
    fn empty_portfolio_panics() {
        let _ = Portfolio::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let _ = Stage::new(Box::new(AbonnVerifier::default()), 1.5);
    }
}
