//! Shared verification-driver machinery: verdicts, budgets, statistics,
//! and the [`Verifier`] trait all three approaches implement.

use crate::spec::RobustnessProblem;
use abonn_attack::Pgd;
use abonn_bound::{Analysis, AppVer, BoundComputeStats, LpVerifier, SplitSet};
use std::time::{Duration, Instant};

/// Outcome of a verification run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The specification holds on the whole region.
    Verified,
    /// A concrete counterexample was found (carried as the witness).
    Falsified(Vec<f64>),
    /// The budget ran out before a conclusion.
    Timeout,
}

impl Verdict {
    /// Returns `true` for [`Verdict::Verified`] or [`Verdict::Falsified`].
    #[must_use]
    pub fn is_solved(&self) -> bool {
        !matches!(self, Verdict::Timeout)
    }

    /// The counterexample carried by a [`Verdict::Falsified`] verdict.
    #[must_use]
    pub fn witness(&self) -> Option<&[f64]> {
        match self {
            Verdict::Falsified(w) => Some(w),
            Verdict::Verified | Verdict::Timeout => None,
        }
    }
}

/// Resource budget for a run.
///
/// The primary, machine-independent budget is the number of `AppVer`
/// calls — each call is the "expensive process of problem solving" the
/// paper counts; the optional wall-clock limit mirrors the paper's 1000 s
/// timeout for real-time measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Maximum number of approximated-verifier calls.
    pub max_appver_calls: usize,
    /// Optional wall-clock limit.
    pub wall_limit: Option<Duration>,
}

impl Budget {
    /// Budget capped at `n` verifier calls (no wall-clock limit).
    #[must_use]
    pub fn with_appver_calls(n: usize) -> Self {
        Self {
            max_appver_calls: n,
            wall_limit: None,
        }
    }

    /// Adds a wall-clock limit to the budget.
    #[must_use]
    pub fn and_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Admission control: caps the call budget at `cap`, reporting
    /// whether the request was actually reduced.
    ///
    /// Services accepting client-chosen budgets clamp them with this so
    /// one query cannot monopolise the engine; because the cap is
    /// call-based (never wall-based) the admitted budget — and therefore
    /// the verdict and every counter — stays machine-independent.
    #[must_use]
    pub fn clamped_to(mut self, cap: usize) -> (Self, bool) {
        let clamped = self.max_appver_calls > cap;
        if clamped {
            self.max_appver_calls = cap;
        }
        (self, clamped)
    }

    /// Input-order budget slicing for a wave of concurrently admitted
    /// queries: position `i` of the result is the admitted budget (and
    /// clamp flag) for the `i`-th requested call count, each capped at
    /// `cap` independently.
    ///
    /// The slices are a pure function of each request alone — never of
    /// the wave's size or composition — which is the load-bearing
    /// property for a scheduler that must answer identically however the
    /// request stream happens to be chopped into waves: slicing a wave
    /// equals concatenating the slicings of any partition of it, so the
    /// admitted budgets (and therefore verdicts and counters) match a
    /// one-query-at-a-time daemon byte for byte.
    #[must_use]
    pub fn admit_slices(requested: &[usize], cap: usize) -> Vec<(Self, bool)> {
        requested
            .iter()
            .map(|&calls| Self::with_appver_calls(calls).clamped_to(cap))
            .collect()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::with_appver_calls(2_000)
    }
}

/// Counters describing how a run spent its budget.
///
/// The incremental-bounding counters (`cache_layers_reused`,
/// `cache_layers_recomputed`, `backsub_steps`) are call-based and
/// accumulated in the deterministic consumption order of each search, so
/// like every other field they are identical across thread counts and
/// machines. They live only in this in-memory struct — persisted bench
/// reports exclude them so cache-on and cache-off runs stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Approximated-verifier invocations (the paper's cost unit).
    pub appver_calls: usize,
    /// Sub-problems whose analysis was inspected (tree nodes visited).
    pub nodes_visited: usize,
    /// Total BaB tree size at termination (Fig. 3's metric).
    pub tree_size: usize,
    /// Deepest split sequence reached.
    pub max_depth: usize,
    /// Bound-propagation layers served from a parent's cached prefix.
    pub cache_layers_reused: usize,
    /// Bound-propagation layers recomputed (from the split layer down).
    pub cache_layers_recomputed: usize,
    /// Back-substitution layer-steps executed (stage `k` costs `k` steps).
    pub backsub_steps: usize,
    /// Simplex pivots across all LP solves (phases 1 + 2).
    pub lp_pivots: usize,
    /// LP solves that successfully installed a warm-start basis.
    pub lp_warm_hits: usize,
    /// LP solves run cold (no donor basis, or warm install fell back).
    pub lp_cold_solves: usize,
    /// Back-substitution rows skipped via stable-neuron sparsity.
    pub backsub_rows_skipped: usize,
    /// Total back-substitution rows considered (skip-ratio denominator).
    pub backsub_rows_total: usize,
    /// Contiguous masked column blocks elided structurally by the
    /// block-sparse back-substitution kernels (substrate-invariant).
    pub blocks_skipped: usize,
    /// Peak logical footprint of the back-substitution scratch arena in
    /// bytes (length-based, so identical whether the arena is fresh or
    /// recycled).
    pub arena_bytes_peak: usize,
    /// Simplex basis-update cell writes across all LP solves — the
    /// per-pivot work metric the revised simplex reduces.
    pub lp_pivot_cells: usize,
    /// Measured wall time.
    pub wall: Duration,
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} AppVer calls, {} nodes visited, tree size {}, depth {}, \
             {} backsub steps ({} layers reused / {} recomputed, \
             {}/{} rows skipped, {} blocks elided, arena peak {} B), \
             {} LP pivots ({} cells, {} warm / {} cold solves), \
             {:.3}s",
            self.appver_calls,
            self.nodes_visited,
            self.tree_size,
            self.max_depth,
            self.backsub_steps,
            self.cache_layers_reused,
            self.cache_layers_recomputed,
            self.backsub_rows_skipped,
            self.backsub_rows_total,
            self.blocks_skipped,
            self.arena_bytes_peak,
            self.lp_pivots,
            self.lp_pivot_cells,
            self.lp_warm_hits,
            self.lp_cold_solves,
            self.wall.as_secs_f64()
        )
    }
}

/// Verdict plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The verification outcome.
    pub verdict: Verdict,
    /// Budget usage counters.
    pub stats: RunStats,
}

/// A complete verification approach (ABONN or a baseline).
pub trait Verifier {
    /// Runs the approach on `problem` under `budget`.
    fn verify(&self, problem: &RobustnessProblem, budget: &Budget) -> RunResult;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// Budget bookkeeping shared by the three approaches.
#[derive(Debug)]
pub(crate) struct Clock {
    start: Instant,
    budget: Budget,
    pub appver_calls: usize,
    /// Incremental-bounding work counters, accumulated in deterministic
    /// consumption order (never inside worker closures).
    pub bound_stats: BoundComputeStats,
}

impl Clock {
    pub fn new(budget: Budget) -> Self {
        Self {
            // Audit: `start` feeds only (a) the `wall_limit` check in
            // `exhausted`, which is `None` on every suite/report path
            // (`Scale::budget` is AppVer-call-only) and engaged solely
            // when a caller opts in via `Budget::and_wall_limit`, and
            // (b) `elapsed`, whose value lands in `RunStats::wall` — an
            // in-memory field excluded from every persisted artefact
            // (`InstanceRecord::wall_secs` is `#[serde(skip)]`). With no
            // wall limit set, verdicts, counters, and report bytes are
            // provably independent of this read.
            // lint: allow(wall-clock-in-engine, only gates opt-in wall budgets and the unpersisted RunStats::wall; call-only suite budgets never read it)
            start: Instant::now(),
            budget,
            appver_calls: 0,
            bound_stats: BoundComputeStats::default(),
        }
    }

    /// Returns `true` once any budget dimension is exhausted.
    pub fn exhausted(&self) -> bool {
        if self.appver_calls >= self.budget.max_appver_calls {
            return true;
        }
        match self.budget.wall_limit {
            Some(limit) => self.start.elapsed() >= limit,
            None => false,
        }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Validates an analysis candidate against the concrete network, optionally
/// polishing it with a few PGD steps first (`refine_steps > 0`).
///
/// Returns a confirmed witness, or `None` for a false alarm.
pub(crate) fn check_candidate(
    problem: &RobustnessProblem,
    analysis: &Analysis,
    refine_steps: usize,
) -> Option<Vec<f64>> {
    let candidate = analysis.candidate.as_ref()?;
    if problem.validate_witness(candidate) {
        return Some(candidate.clone());
    }
    if refine_steps > 0 {
        // Label-guided refinement only applies to classification problems.
        if let Some(label) = problem.label() {
            let pgd = Pgd::new(refine_steps, 0, 0.25, 0);
            let lo = problem.region().lo();
            let hi = problem.region().hi();
            if let Some(w) = pgd.refine(problem.network(), label, candidate, lo, hi) {
                debug_assert!(problem.validate_witness(&w));
                return Some(w);
            }
        }
    }
    None
}

/// Exactly resolves a fully-split leaf (no unstable neurons remain).
///
/// With every ReLU phase fixed the triangle LP relaxation is exact, so the
/// verdict is definitive: either the leaf region is safe/infeasible
/// (`None`) or the LP optimum yields a concrete witness (`Some`).
///
/// A numerically marginal LP violation whose witness fails concrete
/// validation is treated as safe — the violation magnitude is below
/// validation tolerance in that case.
pub(crate) fn resolve_exhausted_leaf(
    problem: &RobustnessProblem,
    splits: &SplitSet,
    clock: &mut Clock,
    warm_start: bool,
) -> Option<Vec<f64>> {
    let lp = LpVerifier::new().with_warm_start(warm_start);
    clock.appver_calls += 1;
    let cached = lp.analyze_cached(problem.margin_net(), problem.region(), splits, None);
    clock.bound_stats.absorb(&cached.stats);
    let analysis = cached.analysis;
    if analysis.verified() {
        return None;
    }
    check_candidate(problem, &analysis, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_solved_classification() {
        assert!(Verdict::Verified.is_solved());
        assert!(Verdict::Falsified(vec![0.0]).is_solved());
        assert!(!Verdict::Timeout.is_solved());
    }

    #[test]
    fn clock_counts_appver_calls() {
        let mut clock = Clock::new(Budget::with_appver_calls(2));
        assert!(!clock.exhausted());
        clock.appver_calls = 2;
        assert!(clock.exhausted());
    }

    #[test]
    fn wall_limit_expires() {
        let clock = Clock::new(Budget::with_appver_calls(1000).and_wall_limit(Duration::ZERO));
        assert!(clock.exhausted());
    }

    #[test]
    fn run_stats_display_is_informative() {
        let stats = RunStats {
            appver_calls: 12,
            nodes_visited: 6,
            tree_size: 11,
            max_depth: 3,
            cache_layers_reused: 20,
            cache_layers_recomputed: 10,
            backsub_steps: 45,
            lp_pivots: 37,
            lp_warm_hits: 4,
            lp_cold_solves: 2,
            backsub_rows_skipped: 18,
            backsub_rows_total: 60,
            blocks_skipped: 7,
            arena_bytes_peak: 4096,
            lp_pivot_cells: 925,
            wall: Duration::from_millis(1500),
        };
        let text = stats.to_string();
        assert!(text.contains("12 AppVer calls"));
        assert!(text.contains("45 backsub steps"));
        assert!(text.contains("20 layers reused"));
        assert!(text.contains("18/60 rows skipped"));
        assert!(text.contains("7 blocks elided"));
        assert!(text.contains("arena peak 4096 B"));
        assert!(text.contains("37 LP pivots"));
        assert!(text.contains("925 cells"));
        assert!(text.contains("4 warm / 2 cold solves"));
        assert!(text.contains("1.500s"));
    }

    #[test]
    fn witness_accessor_only_on_falsified() {
        assert_eq!(Verdict::Verified.witness(), None);
        assert_eq!(Verdict::Timeout.witness(), None);
        let w = vec![0.25, 0.75];
        assert_eq!(Verdict::Falsified(w.clone()).witness(), Some(w.as_slice()));
    }

    #[test]
    fn budget_clamp_is_admission_control() {
        let (b, clamped) = Budget::with_appver_calls(10_000).clamped_to(500);
        assert!(clamped);
        assert_eq!(b.max_appver_calls, 500);
        // Requests at or under the cap pass through untouched.
        let (b, clamped) = Budget::with_appver_calls(200).clamped_to(500);
        assert!(!clamped);
        assert_eq!(b.max_appver_calls, 200);
        // Wall limits survive the clamp.
        let (b, _) = Budget::with_appver_calls(9)
            .and_wall_limit(Duration::from_secs(1))
            .clamped_to(4);
        assert_eq!(b.max_appver_calls, 4);
        assert_eq!(b.wall_limit, Some(Duration::from_secs(1)));
    }

    #[test]
    fn default_budget_is_bounded() {
        let b = Budget::default();
        assert!(b.max_appver_calls > 0);
        assert!(b.wall_limit.is_none());
    }

    #[test]
    fn admit_slices_matches_sequential_clamping() {
        let requested = [10_000, 200, 500, 0];
        let slices = Budget::admit_slices(&requested, 500);
        let expected: Vec<(Budget, bool)> = requested
            .iter()
            .map(|&c| Budget::with_appver_calls(c).clamped_to(500))
            .collect();
        assert_eq!(slices.len(), 4);
        for ((got, got_clamped), (want, want_clamped)) in slices.iter().zip(&expected) {
            assert_eq!(got.max_appver_calls, want.max_appver_calls);
            assert_eq!(got_clamped, want_clamped);
        }
        assert_eq!(slices[0].0.max_appver_calls, 500);
        assert!(slices[0].1);
        assert!(!slices[1].1);
    }

    #[test]
    fn admit_slices_is_partition_invariant() {
        // Slicing one wave equals concatenating the slicings of any
        // partition of it — the property the wave scheduler's
        // byte-identity claim rests on.
        let requested = [7, 10_000, 3, 999, 42];
        let whole = Budget::admit_slices(&requested, 100);
        for cut in 0..=requested.len() {
            let (a, b) = requested.split_at(cut);
            let mut parts = Budget::admit_slices(a, 100);
            parts.extend(Budget::admit_slices(b, 100));
            assert_eq!(parts.len(), whole.len());
            for (x, y) in parts.iter().zip(&whole) {
                assert_eq!(x.0.max_appver_calls, y.0.max_appver_calls);
                assert_eq!(x.1, y.1);
            }
        }
    }
}
