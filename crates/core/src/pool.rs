//! A std-only work-stealing thread pool shared by the parallel search
//! engines and the benchmark harness.
//!
//! Two usage levels map onto the two parallelism levels of the engine:
//!
//! * [`WorkerPool::map`] — fan a batch of independent tasks out over the
//!   pool and collect the results *in input order*. The benchmark grid
//!   uses it to verify suite instances concurrently, and the BaB baseline
//!   uses it to bound a breadth-first frontier slice.
//! * [`WorkerPool::join2`] — run two closures concurrently and return
//!   both results. ABONN uses it for the two `AppVer` calls of one
//!   expansion (one per ReLU phase).
//!
//! Determinism is the design constraint: callers receive results in a
//! fixed order regardless of which thread computed what, so every search
//! built on the pool is bit-for-bit identical to its sequential run.
//!
//! The pool is deadlock-free under nesting (pool tasks may themselves
//! call `map`/`join2` on the same pool): the submitting thread always
//! *helps* — it claims still-unstarted jobs and runs them itself rather
//! than blocking on a saturated queue. A panicking task never poisons the
//! pool: the payload is caught on the worker, carried back, and resumed
//! on the submitting thread, while the worker keeps serving jobs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased job body. Safety of the erasure is argued at the
/// two `transmute` sites: a job is always either executed or discarded
/// before the submitting call returns, so captured borrows cannot
/// dangle.
type TaskBody = Box<dyn FnOnce() + Send + 'static>;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One unit of work. The body sits behind a mutex so that exactly one
/// thread — a worker or the submitter helping out — claims and runs it.
struct Job {
    body: Mutex<Option<TaskBody>>,
    done: Mutex<bool>,
    done_signal: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

impl Job {
    fn new(body: TaskBody) -> Self {
        Self {
            body: Mutex::new(Some(body)),
            done: Mutex::new(false),
            done_signal: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Worker side: run the body unless another thread already claimed it.
    fn execute(&self) {
        let Some(body) = self.body.lock().expect("job body lock").take() else {
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(body));
        if let Err(payload) = outcome {
            *self.panic.lock().expect("job panic lock") = Some(payload);
        }
        self.finish();
    }

    /// Submitter side: claim and run the body on this thread, or wait for
    /// the worker that got there first. Returns the task's panic payload,
    /// if any, for the caller to resume.
    fn run_or_wait(&self) -> Option<PanicPayload> {
        if let Some(body) = self.body.lock().expect("job body lock").take() {
            let outcome = catch_unwind(AssertUnwindSafe(body));
            self.finish();
            return outcome.err();
        }
        let mut done = self.done.lock().expect("job done lock");
        while !*done {
            // lint: allow(lock-discipline, the condvar protocol requires holding the mutex - wait atomically releases it while blocked)
            done = self.done_signal.wait(done).expect("job done wait");
        }
        self.panic.lock().expect("job panic lock").take()
    }

    fn finish(&self) {
        *self.done.lock().expect("job done lock") = true;
        self.done_signal.notify_all();
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One deque per worker; submissions round-robin across them and an
    /// idle worker steals from its siblings.
    queues: Vec<Mutex<VecDeque<Arc<Job>>>>,
    next_queue: AtomicUsize,
    /// Sleep coordination: workers park on `signal` holding `sleep`, and
    /// a submitter touches `sleep` after pushing so no wakeup is lost.
    sleep: Mutex<()>,
    signal: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn submit(&self, job: Arc<Job>) {
        // lint: allow(relaxed-atomics, monotonic round-robin counter; only spreads jobs across queues and work-stealing makes any placement correct, so no ordering is needed)
        let i = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i]
            .lock()
            .expect("pool queue lock")
            .push_back(job);
        // Taking the sleep lock (even empty) orders this push before any
        // in-progress "queues are empty → park" decision of a worker.
        drop(self.sleep.lock().expect("pool sleep lock"));
        self.signal.notify_all();
    }

    /// Pops a job, preferring the worker's own queue, else stealing
    /// round-robin from its siblings.
    fn grab(&self, own: usize) -> Option<Arc<Job>> {
        let n = self.queues.len();
        for offset in 0..n {
            let q = (own + offset) % n;
            if let Some(job) = self.queues[q].lock().expect("pool queue lock").pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q.lock().expect("pool queue lock").is_empty())
    }

    fn worker_loop(&self, own: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(job) = self.grab(own) {
                job.execute();
                continue;
            }
            let guard = self.sleep.lock().expect("pool sleep lock");
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.has_work() {
                continue;
            }
            // lint: allow(lock-discipline, the condvar protocol requires holding the mutex - wait atomically releases it while blocked)
            drop(self.signal.wait(guard).expect("pool sleep wait"));
        }
    }
}

/// A fixed-size work-stealing thread pool.
///
/// `threads` counts the submitting thread: a pool of `n` spawns `n − 1`
/// workers, and the caller of [`map`](WorkerPool::map) /
/// [`join2`](WorkerPool::join2) contributes the remaining lane by helping
/// execute jobs. A pool of one thread spawns nothing and runs everything
/// inline, so sequential callers pay no synchronisation cost.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` total execution lanes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "WorkerPool::new: pool must have >= 1 thread");
        let worker_count = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..worker_count.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_queue: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("abonn-pool-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// A single-lane pool: no worker threads, every call runs inline.
    #[must_use]
    pub fn inline() -> Self {
        Self::new(1)
    }

    /// A pool sized to the machine, via [`std::thread::available_parallelism`].
    #[must_use]
    pub fn with_available_parallelism() -> Self {
        Self::new(default_threads())
    }

    /// Total execution lanes (workers plus the submitting thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, possibly concurrently, returning the
    /// results in input order.
    ///
    /// # Panics
    ///
    /// If any task panics, the first payload (in input order) is resumed
    /// on the calling thread after all tasks have settled; the pool
    /// itself stays usable.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Arc<Job>> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let f = &f;
                let slots = &slots;
                let body: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let r = f(item);
                    *slots[i].lock().expect("map slot lock") = Some(r);
                });
                // SAFETY: this erases the closure's borrow lifetime to
                // `'static` so it can cross the queue (`TaskBody` must be
                // nameable without the caller's lifetime). The borrows of
                // `f` and `slots` stay valid because `map` never returns
                // — not even by unwinding — before every job has settled:
                // the `run_or_wait` loop below claims each unstarted body
                // and runs it inline, or blocks until the worker that
                // claimed it signals `done`. A worker can therefore never
                // hold a body after `map`'s stack frame (and the borrows
                // it anchors) is gone. Layout is unchanged: both types
                // are `Box<dyn FnOnce() + Send>` differing only in
                // lifetime, which has no runtime representation.
                let body: TaskBody = unsafe { std::mem::transmute(body) };
                Arc::new(Job::new(body))
            })
            .collect();
        for job in &jobs {
            self.shared.submit(Arc::clone(job));
        }
        let mut first_panic: Option<PanicPayload> = None;
        for job in &jobs {
            if let Some(p) = job.run_or_wait() {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("map slot lock")
                    .expect("completed job filled its slot")
            })
            .collect()
    }

    /// Runs `fa` and `fb`, possibly concurrently, returning both results.
    ///
    /// `fa` is offered to the pool while `fb` runs on the calling thread;
    /// if no worker picks `fa` up in time the caller runs it too, so a
    /// saturated pool degrades to inline execution instead of
    /// deadlocking.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from either closure (`fa`'s first) after both
    /// have settled.
    pub fn join2<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads <= 1 {
            return (fa(), fb());
        }
        let slot_a: Mutex<Option<A>> = Mutex::new(None);
        let job = {
            let slot = &slot_a;
            let body: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                *slot.lock().expect("join2 slot lock") = Some(fa());
            });
            // SAFETY: same lifetime erasure as in `map` (see above), with
            // the same settlement guarantee: `fb` runs under
            // `catch_unwind`, so control always reaches the
            // `run_or_wait` call below, which either executes the body on
            // this thread or waits for the claiming worker's `done`
            // signal. Only after that can `join2` return or unwind, so
            // the borrow of `slot_a` captured in `body` outlives every
            // possible execution of it; the transmute itself only erases
            // a lifetime between representation-identical `Box<dyn
            // FnOnce>` types.
            let body: TaskBody = unsafe { std::mem::transmute(body) };
            Arc::new(Job::new(body))
        };
        self.shared.submit(Arc::clone(&job));
        let b = catch_unwind(AssertUnwindSafe(fb));
        let a_panic = job.run_or_wait();
        if let Some(p) = a_panic {
            resume_unwind(p);
        }
        match b {
            Err(p) => resume_unwind(p),
            Ok(b) => (
                slot_a
                    .into_inner()
                    .expect("join2 slot lock")
                    .expect("join2 task filled its slot"),
                b,
            ),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.sleep.lock().expect("pool sleep lock"));
        self.shared.signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The machine's available parallelism, with a fallback of one.
///
/// This is the single audited place where machine topology enters the
/// system, and it only ever sizes worker pools: the parallel-grid and
/// thread-invariance tests prove verdicts, stats, and report bytes are
/// identical for every lane count, so the value cannot leak into
/// results.
#[must_use]
pub fn default_threads() -> usize {
    // lint: allow(nondeterministic-api, sizes pools only; verdicts/stats/reports are proven lane-count-invariant by the determinism test suite)
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map((0..100).collect(), |i: usize| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn inline_pool_runs_everything_on_the_caller() {
        let pool = WorkerPool::inline();
        let caller = std::thread::current().id();
        let ids = pool.map(vec![(), ()], |()| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
        let (a, b) = pool.join2(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn join2_returns_both_results() {
        let pool = WorkerPool::new(2);
        for i in 0..50u64 {
            let (a, b) = pool.join2(move || i * 2, move || i * 3);
            assert_eq!((a, b), (i * 2, i * 3));
        }
    }

    #[test]
    fn nested_use_does_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        // Saturate the pool with tasks that themselves call join2.
        let inner = Arc::clone(&pool);
        let out = pool.map((0..16).collect(), move |i: u64| {
            let (a, b) = inner.join2(move || i + 1, move || i + 2);
            a + b
        });
        assert_eq!(out, (0..16).map(|i| 2 * i + 3).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0, 1, 2, 3], |i: usize| {
                assert!(i != 2, "boom on {i}");
                i
            })
        }));
        assert!(attempt.is_err(), "panic must reach the caller");
        // The pool keeps working after a task panicked.
        let out = pool.map(vec![10, 20], |i: usize| i + 1);
        assert_eq!(out, vec![11, 21]);
        let (a, b) = pool.join2(|| "a", || "b");
        assert_eq!((a, b), ("a", "b"));
    }

    #[test]
    fn map_actually_uses_worker_threads() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        let caller = std::thread::current().id();
        // Slow-ish tasks so workers get a chance to steal some.
        pool.map((0..64).collect::<Vec<u64>>(), |_| {
            if std::thread::current().id() != caller {
                // lint: allow(relaxed-atomics, test-only monotonic hit counter; read after map joins all tasks)
                hits.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // With 3 workers and 64 sleeping tasks at least one lands off the
        // caller (single-core machines still satisfy this: workers exist).
        // lint: allow(relaxed-atomics, test-only read of the counter above; map already joined every task so the value is final)
        assert!(hits.load(Ordering::Relaxed) > 0, "no worker ever ran a task");
    }
}
