//! The BaB-baseline: classical breadth-first branch and bound (§III).
//!
//! Sub-problems are visited strictly first-come-first-served: pop a split
//! set, apply `AppVer`, conclude/skip/split, push the two children at the
//! back of the queue. This reproduces the paper's "naive" exploration
//! order that ABONN improves on.

use crate::certificate::{Certificate, ProofNode};
use crate::driver::{
    check_candidate, resolve_exhausted_leaf, Budget, Clock, RunResult, RunStats, Verdict, Verifier,
};
use crate::heuristics::{BranchContext, HeuristicKind};
use crate::pool::WorkerPool;
use crate::spec::RobustnessProblem;
use abonn_bound::{AppVer, BoundPrefix, CachedAnalysis, DeepPoly, NeuronId, SplitSet, SplitSign};
use std::collections::VecDeque;
use std::sync::Arc;

/// Proof-tree bookkeeping: one entry per sub-problem the search created.
/// Assembled into a [`Certificate`] on demand — terminal split sets are
/// re-derived by walking the branch structure, so nothing but the branch
/// neuron and the resolution state is stored.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProtoNode {
    /// `true` once the sub-problem was concluded safe (verified,
    /// infeasible, or exactly resolved by the LP fallback).
    pub resolved: bool,
    /// Set when the sub-problem was split: `(neuron, pos idx, neg idx)`.
    pub branch: Option<(NeuronId, usize, usize)>,
}

impl ProtoNode {
    pub fn pending() -> Self {
        Self {
            resolved: false,
            branch: None,
        }
    }
}

/// Assembles the proof tree rooted at `idx`. Unresolved sub-problems
/// become [`ProofNode::Open`] obligations; every terminal records the
/// split set accumulated along its branch path as provenance.
pub(crate) fn assemble_certificate(protos: &[ProtoNode], idx: usize, splits: &SplitSet) -> ProofNode {
    match protos[idx].branch {
        Some((neuron, pos, neg)) => ProofNode::Branch {
            neuron,
            pos: Box::new(assemble_certificate(
                protos,
                pos,
                &splits.with(neuron, SplitSign::Pos),
            )),
            neg: Box::new(assemble_certificate(
                protos,
                neg,
                &splits.with(neuron, SplitSign::Neg),
            )),
        },
        None if protos[idx].resolved => ProofNode::leaf(splits.iter().collect()),
        None => ProofNode::open(splits.iter().collect()),
    }
}

/// Breadth-first BaB, the paper's `BaB-baseline`.
///
/// Shares the approximated verifier and the branching heuristic with
/// [`AbonnVerifier`](crate::AbonnVerifier), so measured differences come
/// from the exploration order alone.
#[derive(Clone)]
pub struct BabBaseline {
    /// Branching heuristic `H` (same default as ABONN).
    pub heuristic: HeuristicKind,
    /// PGD polish steps for spurious candidates (0 = paper-plain).
    pub refine_steps: usize,
    /// Thread parent bound prefixes into child nodes (bit-for-bit
    /// identical results; disabling is for A/B checks and debugging).
    pub incremental: bool,
    /// Warm-start the exact-LP leaf solver from previously computed simplex
    /// bases (bit-for-bit identical results; only in-memory work counters
    /// differ — see DESIGN.md §5f).
    pub warm_start: bool,
    appver: Arc<dyn AppVer>,
    pool: Arc<WorkerPool>,
}

impl Default for BabBaseline {
    fn default() -> Self {
        Self {
            heuristic: HeuristicKind::DeepSplit,
            refine_steps: 0,
            incremental: true,
            warm_start: true,
            appver: Arc::new(DeepPoly::new()),
            pool: Arc::new(WorkerPool::inline()),
        }
    }
}

impl std::fmt::Debug for BabBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BabBaseline")
            .field("heuristic", &self.heuristic)
            .field("appver", &self.appver.name())
            .finish()
    }
}

impl BabBaseline {
    /// Creates a baseline with an explicit verifier and heuristic.
    #[must_use]
    pub fn new(heuristic: HeuristicKind, appver: Arc<dyn AppVer>) -> Self {
        Self {
            heuristic,
            refine_steps: 0,
            incremental: true,
            warm_start: true,
            appver,
            pool: Arc::new(WorkerPool::inline()),
        }
    }

    /// Bounds the breadth-first frontier on `pool`: up to
    /// [`WorkerPool::threads`] already-enqueued sub-problems are analyzed
    /// concurrently per round ([`WorkerPool::map`]), but conclusions are
    /// consumed strictly in FIFO order — verdict and `RunStats` are
    /// bit-for-bit identical to the sequential search (analyses past an
    /// early termination are discarded uncounted).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }
}

impl BabBaseline {
    /// Like [`Verifier::verify`], additionally returning a checkable
    /// [`Certificate`] when the verdict is [`Verdict::Verified`], or a
    /// *partial* certificate (containing [`ProofNode::Open`] obligations
    /// for every sub-problem still enqueued) when the budget ran out.
    /// Falsified runs carry their witness in the verdict instead.
    #[must_use]
    pub fn verify_with_certificate(
        &self,
        problem: &RobustnessProblem,
        budget: &Budget,
    ) -> (RunResult, Option<Certificate>) {
        self.verify_impl(problem, budget, true)
    }

    fn verify_impl(
        &self,
        problem: &RobustnessProblem,
        budget: &Budget,
        want_certificate: bool,
    ) -> (RunResult, Option<Certificate>) {
        let mut clock = Clock::new(*budget);
        let heuristic = self.heuristic.build(problem.margin_net());
        // Each queued sub-problem carries its parent's bound prefix so the
        // verifier only recomputes layers below the new split, plus its
        // index into the proof-tree bookkeeping.
        let mut queue: VecDeque<(SplitSet, Option<Arc<BoundPrefix>>, usize)> =
            VecDeque::from([(SplitSet::new(), None, 0)]);
        let mut protos = vec![ProtoNode::pending()];
        let mut nodes_visited = 0usize;
        let mut tree_size = 1usize;
        let mut max_depth = 0usize;

        let finish = |verdict: Verdict, clock: &Clock, visited, tree_size, max_depth| RunResult {
            verdict,
            stats: RunStats {
                appver_calls: clock.appver_calls,
                nodes_visited: visited,
                tree_size,
                max_depth,
                cache_layers_reused: clock.bound_stats.layers_reused,
                cache_layers_recomputed: clock.bound_stats.layers_recomputed,
                backsub_steps: clock.bound_stats.backsub_steps,
                lp_pivots: clock.bound_stats.lp_pivots,
                lp_warm_hits: clock.bound_stats.lp_warm_hits,
                lp_cold_solves: clock.bound_stats.lp_cold_solves,
                backsub_rows_skipped: clock.bound_stats.backsub_rows_skipped,
                backsub_rows_total: clock.bound_stats.backsub_rows_total,
                blocks_skipped: clock.bound_stats.blocks_skipped,
                arena_bytes_peak: clock.bound_stats.arena_bytes_peak,
                lp_pivot_cells: clock.bound_stats.lp_pivot_cells,
                wall: clock.elapsed(),
            },
        };
        let cert = |protos: &[ProtoNode]| {
            want_certificate
                .then(|| Certificate::new(assemble_certificate(protos, 0, &SplitSet::new())))
        };

        while !queue.is_empty() {
            // Pop up to `threads` already-enqueued sub-problems and bound
            // them concurrently. Consumption below is strictly FIFO, so
            // the exploration order, verdict, and stats match the
            // sequential search exactly: breadth-first children always go
            // to the back of the queue, behind every batched node.
            let width = self.pool.threads().min(queue.len()).max(1);
            let batch: Vec<(SplitSet, Option<Arc<BoundPrefix>>, usize)> = (0..width)
                .map(|_| queue.pop_front().expect("width <= queue.len()"))
                .collect();
            let analyses = self.pool.map(
                batch.iter().collect(),
                |(splits, parent, _): &(SplitSet, Option<Arc<BoundPrefix>>, usize)| {
                    if self.incremental {
                        self.appver.analyze_cached(
                            problem.margin_net(),
                            problem.region(),
                            splits,
                            parent.as_ref(),
                        )
                    } else {
                        CachedAnalysis::scratch(self.appver.analyze(
                            problem.margin_net(),
                            problem.region(),
                            splits,
                        ))
                    }
                },
            );
            for ((splits, _, proto), cached) in batch.iter().zip(analyses) {
                // Budget accounting happens here, in consumption order:
                // analyses past an exhausted budget or a found witness are
                // speculative work, discarded without being counted (the
                // bound-work counters included). Sub-problems not consumed
                // remain pending and export as `Open` obligations.
                if clock.exhausted() {
                    return (
                        finish(
                            Verdict::Timeout,
                            &clock,
                            nodes_visited,
                            tree_size,
                            max_depth,
                        ),
                        cert(&protos),
                    );
                }
                nodes_visited += 1;
                max_depth = max_depth.max(splits.len());
                clock.appver_calls += 1;
                clock.bound_stats.absorb(&cached.stats);
                let analysis = cached.analysis;
                if analysis.verified() {
                    protos[*proto].resolved = true;
                    continue;
                }
                if let Some(w) = check_candidate(problem, &analysis, self.refine_steps) {
                    return (
                        finish(
                            Verdict::Falsified(w),
                            &clock,
                            nodes_visited,
                            tree_size,
                            max_depth,
                        ),
                        None,
                    );
                }
                let ctx = BranchContext {
                    net: problem.margin_net(),
                    analysis: &analysis,
                    splits,
                };
                match heuristic.select(&ctx) {
                    Some(neuron) => {
                        tree_size += 2;
                        let pos_idx = protos.len();
                        protos.push(ProtoNode::pending());
                        protos.push(ProtoNode::pending());
                        protos[*proto].branch = Some((neuron, pos_idx, pos_idx + 1));
                        queue.push_back((
                            splits.with(neuron, SplitSign::Pos),
                            cached.prefix.clone(),
                            pos_idx,
                        ));
                        queue.push_back((
                            splits.with(neuron, SplitSign::Neg),
                            cached.prefix,
                            pos_idx + 1,
                        ));
                    }
                    None => {
                        // Fully split: resolve exactly with the LP.
                        if let Some(w) =
                            resolve_exhausted_leaf(problem, splits, &mut clock, self.warm_start)
                        {
                            return (
                                finish(
                                    Verdict::Falsified(w),
                                    &clock,
                                    nodes_visited,
                                    tree_size,
                                    max_depth,
                                ),
                                None,
                            );
                        }
                        protos[*proto].resolved = true;
                    }
                }
            }
        }
        (
            finish(
                Verdict::Verified,
                &clock,
                nodes_visited,
                tree_size,
                max_depth,
            ),
            cert(&protos),
        )
    }
}

impl Verifier for BabBaseline {
    fn verify(&self, problem: &RobustnessProblem, budget: &Budget) -> RunResult {
        self.verify_impl(problem, budget, false).0
    }

    fn name(&self) -> String {
        format!("BaB-baseline({})", self.appver.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    fn relu_compare_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                    vec![0.0, 0.0, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn verifies_robust_instance() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(300));
        assert_eq!(r.verdict, Verdict::Verified);
    }

    #[test]
    fn falsifies_vulnerable_instance_with_valid_witness() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.55, 0.45], 0, 0.2).unwrap();
        let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(500));
        match r.verdict {
            Verdict::Falsified(w) => assert!(p.validate_witness(&w)),
            v => panic!("expected falsification, got {v:?}"),
        }
    }

    #[test]
    fn agrees_with_abonn_when_both_finish() {
        use crate::mcts::AbonnVerifier;
        let net = relu_compare_net();
        let budget = Budget::with_appver_calls(1_000);
        for (x0, eps) in [
            (vec![0.8, 0.2], 0.02),
            (vec![0.7, 0.3], 0.1),
            (vec![0.55, 0.45], 0.2),
            (vec![0.6, 0.4], 0.05),
        ] {
            let p = RobustnessProblem::new(&net, x0.clone(), 0, eps).unwrap();
            let a = AbonnVerifier::default().verify(&p, &budget);
            let b = BabBaseline::default().verify(&p, &budget);
            if a.verdict.is_solved() && b.verdict.is_solved() {
                assert_eq!(
                    matches!(a.verdict, Verdict::Verified),
                    matches!(b.verdict, Verdict::Verified),
                    "disagreement at x0 = {x0:?}, eps = {eps}"
                );
            }
        }
    }

    #[test]
    fn timeout_reports_partial_stats() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.52, 0.48], 0, 0.06).unwrap();
        let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(1));
        assert!(r.stats.appver_calls <= 2);
    }

    #[test]
    fn verified_run_emits_checkable_certificate() {
        use abonn_bound::{Cascade, DeepPoly, LpVerifier};
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        let (r, cert) =
            BabBaseline::default().verify_with_certificate(&p, &Budget::with_appver_calls(300));
        assert_eq!(r.verdict, Verdict::Verified);
        let cert = cert.expect("verified run must emit a certificate");
        assert!(cert.is_complete());
        let checker = Cascade::new(vec![Arc::new(DeepPoly::new()), Arc::new(LpVerifier::new())]);
        cert.check(&p, &checker).expect("certificate checks");
        // Certificate bookkeeping must not perturb the search: all stats
        // besides the wall clock match the plain path bit-for-bit.
        let plain = BabBaseline::default().verify(&p, &Budget::with_appver_calls(300));
        let no_wall = |mut s: RunStats| {
            s.wall = std::time::Duration::ZERO;
            s
        };
        assert_eq!(no_wall(plain.stats), no_wall(r.stats));
    }

    /// A net whose margin subtracts ReLU "gates" near their threshold:
    /// out0 = relu(x0) - 0.2 relu(x0+x1-1) - 0.2 relu(x0+x1-0.9),
    /// out1 = relu(x1). Around (0.8, 0.2) with eps 0.28 the instance is
    /// robust (min margin 0.02 at the x0-low/x1-high corner) but the
    /// subtracted unstable gates make the root relaxation loose, forcing
    /// the search to branch.
    fn gate_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]),
                    vec![-1.0, -0.9, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[-0.2, -0.2, 1.0, 0.0], &[0.0, 0.0, 0.0, 1.0]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn timeout_run_emits_partial_certificate_with_open_obligations() {
        // Robust instance (no witness exists) that needs branching, so a
        // one-call budget must time out after expanding the root.
        let p = RobustnessProblem::new(&gate_net(), vec![0.8, 0.2], 0, 0.28).unwrap();
        let (r, cert) =
            BabBaseline::default().verify_with_certificate(&p, &Budget::with_appver_calls(1));
        assert_eq!(r.verdict, Verdict::Timeout);
        let cert = cert.expect("timeout must emit a partial certificate");
        assert!(!cert.is_complete());
        assert!(cert.num_open() >= 1);
    }

    #[test]
    fn falsified_run_carries_witness_not_certificate() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.55, 0.45], 0, 0.2).unwrap();
        let (r, cert) =
            BabBaseline::default().verify_with_certificate(&p, &Budget::with_appver_calls(500));
        assert!(matches!(r.verdict, Verdict::Falsified(_)));
        assert!(cert.is_none());
    }
}
