//! The BaB-baseline: classical breadth-first branch and bound (§III).
//!
//! Sub-problems are visited strictly first-come-first-served: pop a split
//! set, apply `AppVer`, conclude/skip/split, push the two children at the
//! back of the queue. This reproduces the paper's "naive" exploration
//! order that ABONN improves on.

use crate::driver::{
    check_candidate, resolve_exhausted_leaf, Budget, Clock, RunResult, RunStats, Verdict, Verifier,
};
use crate::heuristics::{BranchContext, HeuristicKind};
use crate::pool::WorkerPool;
use crate::spec::RobustnessProblem;
use abonn_bound::{AppVer, BoundPrefix, CachedAnalysis, DeepPoly, SplitSet, SplitSign};
use std::collections::VecDeque;
use std::sync::Arc;

/// Breadth-first BaB, the paper's `BaB-baseline`.
///
/// Shares the approximated verifier and the branching heuristic with
/// [`AbonnVerifier`](crate::AbonnVerifier), so measured differences come
/// from the exploration order alone.
#[derive(Clone)]
pub struct BabBaseline {
    /// Branching heuristic `H` (same default as ABONN).
    pub heuristic: HeuristicKind,
    /// PGD polish steps for spurious candidates (0 = paper-plain).
    pub refine_steps: usize,
    /// Thread parent bound prefixes into child nodes (bit-for-bit
    /// identical results; disabling is for A/B checks and debugging).
    pub incremental: bool,
    appver: Arc<dyn AppVer>,
    pool: Arc<WorkerPool>,
}

impl Default for BabBaseline {
    fn default() -> Self {
        Self {
            heuristic: HeuristicKind::DeepSplit,
            refine_steps: 0,
            incremental: true,
            appver: Arc::new(DeepPoly::new()),
            pool: Arc::new(WorkerPool::inline()),
        }
    }
}

impl std::fmt::Debug for BabBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BabBaseline")
            .field("heuristic", &self.heuristic)
            .field("appver", &self.appver.name())
            .finish()
    }
}

impl BabBaseline {
    /// Creates a baseline with an explicit verifier and heuristic.
    #[must_use]
    pub fn new(heuristic: HeuristicKind, appver: Arc<dyn AppVer>) -> Self {
        Self {
            heuristic,
            refine_steps: 0,
            incremental: true,
            appver,
            pool: Arc::new(WorkerPool::inline()),
        }
    }

    /// Bounds the breadth-first frontier on `pool`: up to
    /// [`WorkerPool::threads`] already-enqueued sub-problems are analyzed
    /// concurrently per round ([`WorkerPool::map`]), but conclusions are
    /// consumed strictly in FIFO order — verdict and `RunStats` are
    /// bit-for-bit identical to the sequential search (analyses past an
    /// early termination are discarded uncounted).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }
}

impl Verifier for BabBaseline {
    fn verify(&self, problem: &RobustnessProblem, budget: &Budget) -> RunResult {
        let mut clock = Clock::new(*budget);
        let heuristic = self.heuristic.build(problem.margin_net());
        // Each queued sub-problem carries its parent's bound prefix so the
        // verifier only recomputes layers below the new split.
        let mut queue: VecDeque<(SplitSet, Option<Arc<BoundPrefix>>)> =
            VecDeque::from([(SplitSet::new(), None)]);
        let mut nodes_visited = 0usize;
        let mut tree_size = 1usize;
        let mut max_depth = 0usize;

        let finish = |verdict: Verdict, clock: &Clock, visited, tree_size, max_depth| RunResult {
            verdict,
            stats: RunStats {
                appver_calls: clock.appver_calls,
                nodes_visited: visited,
                tree_size,
                max_depth,
                cache_layers_reused: clock.bound_stats.layers_reused,
                cache_layers_recomputed: clock.bound_stats.layers_recomputed,
                backsub_steps: clock.bound_stats.backsub_steps,
                wall: clock.elapsed(),
            },
        };

        while !queue.is_empty() {
            // Pop up to `threads` already-enqueued sub-problems and bound
            // them concurrently. Consumption below is strictly FIFO, so
            // the exploration order, verdict, and stats match the
            // sequential search exactly: breadth-first children always go
            // to the back of the queue, behind every batched node.
            let width = self.pool.threads().min(queue.len()).max(1);
            let batch: Vec<(SplitSet, Option<Arc<BoundPrefix>>)> = (0..width)
                .map(|_| queue.pop_front().expect("width <= queue.len()"))
                .collect();
            let analyses = self.pool.map(
                batch.iter().collect(),
                |(splits, parent): &(SplitSet, Option<Arc<BoundPrefix>>)| {
                    if self.incremental {
                        self.appver.analyze_cached(
                            problem.margin_net(),
                            problem.region(),
                            splits,
                            parent.as_ref(),
                        )
                    } else {
                        CachedAnalysis::scratch(self.appver.analyze(
                            problem.margin_net(),
                            problem.region(),
                            splits,
                        ))
                    }
                },
            );
            for ((splits, _), cached) in batch.iter().zip(analyses) {
                // Budget accounting happens here, in consumption order:
                // analyses past an exhausted budget or a found witness are
                // speculative work, discarded without being counted (the
                // bound-work counters included).
                if clock.exhausted() {
                    return finish(
                        Verdict::Timeout,
                        &clock,
                        nodes_visited,
                        tree_size,
                        max_depth,
                    );
                }
                nodes_visited += 1;
                max_depth = max_depth.max(splits.len());
                clock.appver_calls += 1;
                clock.bound_stats.absorb(&cached.stats);
                let analysis = cached.analysis;
                if analysis.verified() {
                    continue;
                }
                if let Some(w) = check_candidate(problem, &analysis, self.refine_steps) {
                    return finish(
                        Verdict::Falsified(w),
                        &clock,
                        nodes_visited,
                        tree_size,
                        max_depth,
                    );
                }
                let ctx = BranchContext {
                    net: problem.margin_net(),
                    analysis: &analysis,
                    splits,
                };
                match heuristic.select(&ctx) {
                    Some(neuron) => {
                        tree_size += 2;
                        queue.push_back((splits.with(neuron, SplitSign::Pos), cached.prefix.clone()));
                        queue.push_back((splits.with(neuron, SplitSign::Neg), cached.prefix));
                    }
                    None => {
                        // Fully split: resolve exactly with the LP.
                        if let Some(w) = resolve_exhausted_leaf(problem, splits, &mut clock) {
                            return finish(
                                Verdict::Falsified(w),
                                &clock,
                                nodes_visited,
                                tree_size,
                                max_depth,
                            );
                        }
                    }
                }
            }
        }
        finish(
            Verdict::Verified,
            &clock,
            nodes_visited,
            tree_size,
            max_depth,
        )
    }

    fn name(&self) -> String {
        format!("BaB-baseline({})", self.appver.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    fn relu_compare_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                    vec![0.0, 0.0, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn verifies_robust_instance() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(300));
        assert_eq!(r.verdict, Verdict::Verified);
    }

    #[test]
    fn falsifies_vulnerable_instance_with_valid_witness() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.55, 0.45], 0, 0.2).unwrap();
        let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(500));
        match r.verdict {
            Verdict::Falsified(w) => assert!(p.validate_witness(&w)),
            v => panic!("expected falsification, got {v:?}"),
        }
    }

    #[test]
    fn agrees_with_abonn_when_both_finish() {
        use crate::mcts::AbonnVerifier;
        let net = relu_compare_net();
        let budget = Budget::with_appver_calls(1_000);
        for (x0, eps) in [
            (vec![0.8, 0.2], 0.02),
            (vec![0.7, 0.3], 0.1),
            (vec![0.55, 0.45], 0.2),
            (vec![0.6, 0.4], 0.05),
        ] {
            let p = RobustnessProblem::new(&net, x0.clone(), 0, eps).unwrap();
            let a = AbonnVerifier::default().verify(&p, &budget);
            let b = BabBaseline::default().verify(&p, &budget);
            if a.verdict.is_solved() && b.verdict.is_solved() {
                assert_eq!(
                    matches!(a.verdict, Verdict::Verified),
                    matches!(b.verdict, Verdict::Verified),
                    "disagreement at x0 = {x0:?}, eps = {eps}"
                );
            }
        }
    }

    #[test]
    fn timeout_reports_partial_stats() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.52, 0.48], 0, 0.06).unwrap();
        let r = BabBaseline::default().verify(&p, &Budget::with_appver_calls(1));
        assert!(r.stats.appver_calls <= 2);
    }
}
