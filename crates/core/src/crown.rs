//! An αβ-CROWN-style baseline: attack first, then best-first BaB over
//! α-optimised bounds.
//!
//! The real αβ-CROWN combines GPU-batched bound propagation, optimised
//! slopes (α), Lagrangian split multipliers (β), and PGD attacks. This
//! reproduction keeps the algorithmic skeleton on the shared substrate
//! (see `DESIGN.md` §2): a multi-restart PGD pre-attack, the
//! [`AlphaCrown`] bound optimiser, split-constraint bound clamping in
//! place of β, and a most-violated-first priority queue in place of
//! batched frontier expansion.

use crate::bab::{assemble_certificate, ProtoNode};
use crate::certificate::Certificate;
use crate::driver::{
    check_candidate, resolve_exhausted_leaf, Budget, Clock, RunResult, RunStats, Verdict, Verifier,
};
use crate::heuristics::{BranchContext, HeuristicKind};
use crate::spec::RobustnessProblem;
use abonn_attack::{margin_pgd, Pgd};
use abonn_bound::{AlphaCrown, AppVer, SplitSet, SplitSign};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Priority-queue entry ordered so the most negative `p̂` pops first,
/// with an insertion counter as a deterministic tie-break.
struct Entry {
    p_hat: f64,
    seq: usize,
    splits: SplitSet,
    /// Index into the proof-tree bookkeeping for certificate assembly.
    proto: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.p_hat == other.p_hat && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest p̂ wins.
        other
            .p_hat
            .total_cmp(&self.p_hat)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The αβ-CROWN-style verifier.
#[derive(Clone)]
pub struct CrownStyle {
    /// Branching heuristic.
    pub heuristic: HeuristicKind,
    /// PGD pre-attack configuration.
    pub attack: Pgd,
    /// PGD polish steps for spurious candidates during the search.
    pub refine_steps: usize,
    appver: Arc<dyn AppVer>,
}

impl Default for CrownStyle {
    fn default() -> Self {
        Self {
            heuristic: HeuristicKind::DeepSplit,
            attack: Pgd::default(),
            refine_steps: 5,
            appver: Arc::new(AlphaCrown::default()),
        }
    }
}

impl std::fmt::Debug for CrownStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrownStyle")
            .field("heuristic", &self.heuristic)
            .field("appver", &self.appver.name())
            .finish()
    }
}

impl CrownStyle {
    /// Creates a CROWN-style verifier with an explicit bound engine.
    #[must_use]
    pub fn new(heuristic: HeuristicKind, appver: Arc<dyn AppVer>) -> Self {
        Self {
            heuristic,
            attack: Pgd::default(),
            refine_steps: 5,
            appver,
        }
    }
}

impl CrownStyle {
    /// Like [`Verifier::verify`], additionally returning a checkable
    /// [`Certificate`] when the verdict is [`Verdict::Verified`], or a
    /// partial certificate with open obligations on timeout. Falsified
    /// runs carry their witness in the verdict instead.
    #[must_use]
    pub fn verify_with_certificate(
        &self,
        problem: &RobustnessProblem,
        budget: &Budget,
    ) -> (RunResult, Option<Certificate>) {
        self.verify_impl(problem, budget, true)
    }

    fn verify_impl(
        &self,
        problem: &RobustnessProblem,
        budget: &Budget,
        want_certificate: bool,
    ) -> (RunResult, Option<Certificate>) {
        let mut clock = Clock::new(*budget);
        let mut nodes_visited = 0usize;
        let mut tree_size = 1usize;
        let mut max_depth = 0usize;

        let finish = |verdict: Verdict, clock: &Clock, visited, tree_size, max_depth| RunResult {
            verdict,
            stats: RunStats {
                appver_calls: clock.appver_calls,
                nodes_visited: visited,
                tree_size,
                max_depth,
                wall: clock.elapsed(),
                // α/β-CROWN-style search re-optimises slopes per node, so
                // prefix reuse does not apply; counters stay zero.
                ..RunStats::default()
            },
        };
        let mut protos = vec![ProtoNode::pending()];
        let cert = |protos: &[ProtoNode]| {
            want_certificate
                .then(|| Certificate::new(assemble_certificate(protos, 0, &SplitSet::new())))
        };

        // Stage 1: PGD pre-attack on the whole region. Classification
        // problems use the label-guided attack; general margin properties
        // fall back to descent on the margin network itself.
        let pre_attack_hit = match problem.label() {
            Some(label) => self.attack.attack(
                problem.network(),
                label,
                problem.region().lo(),
                problem.region().hi(),
            ),
            None => margin_pgd(
                problem.margin_net(),
                &self.attack,
                problem.region().lo(),
                problem.region().hi(),
            ),
        };
        if let Some(w) = pre_attack_hit {
            debug_assert!(problem.validate_witness(&w));
            return (finish(Verdict::Falsified(w), &clock, 0, 1, 0), None);
        }

        // Stage 2: best-first BaB, most violated sub-problem first.
        let heuristic = self.heuristic.build(problem.margin_net());
        let mut heap = BinaryHeap::new();
        let mut seq = 0usize;

        clock.appver_calls += 1;
        let root = self
            .appver
            .analyze(problem.margin_net(), problem.region(), &SplitSet::new());
        if root.verified() {
            protos[0].resolved = true;
            return (finish(Verdict::Verified, &clock, 1, 1, 0), cert(&protos));
        }
        if let Some(w) = check_candidate(problem, &root, self.refine_steps) {
            return (finish(Verdict::Falsified(w), &clock, 1, 1, 0), None);
        }
        heap.push(Entry {
            p_hat: root.p_hat,
            seq,
            splits: SplitSet::new(),
            proto: 0,
        });

        while let Some(entry) = heap.pop() {
            if clock.exhausted() {
                return (
                    finish(
                        Verdict::Timeout,
                        &clock,
                        nodes_visited,
                        tree_size,
                        max_depth,
                    ),
                    cert(&protos),
                );
            }
            nodes_visited += 1;
            max_depth = max_depth.max(entry.splits.len());

            // Re-analyze the popped node to branch on fresh bounds. (The
            // queue stores only p̂ to keep memory flat, like batched
            // frontier implementations.)
            clock.appver_calls += 1;
            let analysis =
                self.appver
                    .analyze(problem.margin_net(), problem.region(), &entry.splits);
            if analysis.verified() {
                protos[entry.proto].resolved = true;
                continue;
            }
            if let Some(w) = check_candidate(problem, &analysis, self.refine_steps) {
                return (
                    finish(
                        Verdict::Falsified(w),
                        &clock,
                        nodes_visited,
                        tree_size,
                        max_depth,
                    ),
                    None,
                );
            }
            let ctx = BranchContext {
                net: problem.margin_net(),
                analysis: &analysis,
                splits: &entry.splits,
            };
            let Some(neuron) = heuristic.select(&ctx) else {
                if let Some(w) = resolve_exhausted_leaf(problem, &entry.splits, &mut clock, true) {
                    return (
                        finish(
                            Verdict::Falsified(w),
                            &clock,
                            nodes_visited,
                            tree_size,
                            max_depth,
                        ),
                        None,
                    );
                }
                protos[entry.proto].resolved = true;
                continue;
            };
            let pos_idx = protos.len();
            protos.push(ProtoNode::pending());
            protos.push(ProtoNode::pending());
            protos[entry.proto].branch = Some((neuron, pos_idx, pos_idx + 1));
            for (child_idx, sign) in [(pos_idx, SplitSign::Pos), (pos_idx + 1, SplitSign::Neg)] {
                let child = entry.splits.with(neuron, sign);
                clock.appver_calls += 1;
                let child_analysis =
                    self.appver
                        .analyze(problem.margin_net(), problem.region(), &child);
                tree_size += 1;
                if child_analysis.verified() {
                    protos[child_idx].resolved = true;
                    continue;
                }
                if let Some(w) = check_candidate(problem, &child_analysis, self.refine_steps) {
                    return (
                        finish(
                            Verdict::Falsified(w),
                            &clock,
                            nodes_visited,
                            tree_size,
                            max_depth,
                        ),
                        None,
                    );
                }
                seq += 1;
                heap.push(Entry {
                    p_hat: child_analysis.p_hat,
                    seq,
                    splits: child,
                    proto: child_idx,
                });
            }
        }
        (
            finish(
                Verdict::Verified,
                &clock,
                nodes_visited,
                tree_size,
                max_depth,
            ),
            cert(&protos),
        )
    }
}

impl Verifier for CrownStyle {
    fn verify(&self, problem: &RobustnessProblem, budget: &Budget) -> RunResult {
        self.verify_impl(problem, budget, false).0
    }

    fn name(&self) -> String {
        format!("alpha-beta-CROWN-style({})", self.appver.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    fn relu_compare_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, -1.0], &[-1.0, 1.0]]),
                    vec![0.0, 0.0, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.0], &[0.0, 1.0, 0.0, 0.5]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn attack_short_circuits_obvious_violations() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.55, 0.45], 0, 0.3).unwrap();
        let r = CrownStyle::default().verify(&p, &Budget::with_appver_calls(100));
        match r.verdict {
            Verdict::Falsified(w) => {
                assert!(p.validate_witness(&w));
                // The PGD pre-attack should have found it without any
                // bound-propagation call.
                assert_eq!(r.stats.appver_calls, 0);
            }
            v => panic!("expected falsification, got {v:?}"),
        }
    }

    #[test]
    fn verifies_robust_instance() {
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        let r = CrownStyle::default().verify(&p, &Budget::with_appver_calls(300));
        assert_eq!(r.verdict, Verdict::Verified);
    }

    #[test]
    fn agrees_with_bab_baseline() {
        use crate::bab::BabBaseline;
        let net = relu_compare_net();
        let budget = Budget::with_appver_calls(1_000);
        for (x0, eps) in [(vec![0.7, 0.3], 0.1), (vec![0.6, 0.4], 0.05)] {
            let p = RobustnessProblem::new(&net, x0.clone(), 0, eps).unwrap();
            let a = CrownStyle::default().verify(&p, &budget);
            let b = BabBaseline::default().verify(&p, &budget);
            if a.verdict.is_solved() && b.verdict.is_solved() {
                assert_eq!(
                    matches!(a.verdict, Verdict::Verified),
                    matches!(b.verdict, Verdict::Verified),
                    "disagreement at {x0:?} eps {eps}"
                );
            }
        }
    }

    #[test]
    fn verified_run_emits_checkable_certificate() {
        use abonn_bound::{Cascade, DeepPoly, LpVerifier};
        let net = relu_compare_net();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.02).unwrap();
        let (r, cert) =
            CrownStyle::default().verify_with_certificate(&p, &Budget::with_appver_calls(300));
        assert_eq!(r.verdict, Verdict::Verified);
        let cert = cert.expect("verified run must emit a certificate");
        assert!(cert.is_complete());
        let checker = Cascade::new(vec![Arc::new(DeepPoly::new()), Arc::new(LpVerifier::new())]);
        cert.check(&p, &checker).expect("certificate checks");
        let plain = CrownStyle::default().verify(&p, &Budget::with_appver_calls(300));
        let no_wall = |mut s: RunStats| {
            s.wall = std::time::Duration::ZERO;
            s
        };
        assert_eq!(no_wall(plain.stats), no_wall(r.stats));
    }

    #[test]
    fn timeout_run_emits_partial_certificate() {
        // Same loose-relaxation gate construction as the BaB test: robust,
        // but the subtracted unstable gates force branching.
        let net = Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]),
                    vec![-1.0, -0.9, 0.0, 0.0],
                ),
                Layer::relu(),
                Layer::dense(
                    Matrix::from_rows(&[&[-0.2, -0.2, 1.0, 0.0], &[0.0, 0.0, 0.0, 1.0]]),
                    vec![0.0, 0.0],
                ),
            ],
        )
        .unwrap();
        let p = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.28).unwrap();
        let (r, cert) =
            CrownStyle::default().verify_with_certificate(&p, &Budget::with_appver_calls(2));
        if r.verdict == Verdict::Timeout {
            let cert = cert.expect("timeout must emit a partial certificate");
            assert!(!cert.is_complete());
            assert!(cert.num_open() >= 1);
        }
    }

    #[test]
    fn entry_ordering_pops_most_violated_first() {
        let mut heap = BinaryHeap::new();
        for (i, p) in [-0.5, -2.0, -1.0].iter().enumerate() {
            heap.push(Entry {
                p_hat: *p,
                seq: i,
                splits: SplitSet::new(),
                proto: 0,
            });
        }
        assert_eq!(heap.pop().unwrap().p_hat, -2.0);
        assert_eq!(heap.pop().unwrap().p_hat, -1.0);
        assert_eq!(heap.pop().unwrap().p_hat, -0.5);
    }
}
