//! ABONN — Adaptive BaB with Order for Neural Network verification.
//!
//! This crate implements the contribution of the DATE 2025 paper
//! *"Adaptive Branch-and-Bound Tree Exploration for Neural Network
//! Verification"* (Fukuda, Zhang, Zhang, Sui, Zhao), together with the two
//! baselines it is evaluated against:
//!
//! * [`AbonnVerifier`] — the paper's Algorithm 1: Monte-Carlo-tree-search
//!   style exploration of the BaB sub-problem tree, guided by
//!   *counterexample potentiality* (Definition 1, [`potentiality`]) and
//!   UCB1 selection;
//! * [`BabBaseline`] — classical breadth-first BaB;
//! * [`CrownStyle`] — an αβ-CROWN-style verifier: PGD pre-attack plus
//!   most-violated-first (best-first) BaB over α-optimised bounds.
//!
//! All three share the same substrates: approximated verifiers from
//! `abonn-bound`, branching heuristics ([`heuristics`]), the exact-LP leaf
//! fallback, and the [`RobustnessProblem`] specification encoding (built
//! directly or from a VNN-LIB property). `Verified` runs of ABONN can
//! additionally export a checkable [`Certificate`].
//!
//! # Examples
//!
//! ```
//! use abonn_core::{AbonnVerifier, Budget, RobustnessProblem, Verdict, Verifier};
//! use abonn_nn::{Layer, Network, Shape};
//! use abonn_tensor::Matrix;
//!
//! // A tiny network robust around (0.5, 0.5) with radius 0.05.
//! let net = Network::new(
//!     Shape::Flat(2),
//!     vec![
//!         Layer::dense(Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]]), vec![0.0, 0.4]),
//!         Layer::relu(),
//!         Layer::dense(Matrix::identity(2), vec![0.0, 0.0]),
//!     ],
//! )?;
//! let problem = RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.05)?;
//! let result = AbonnVerifier::default().verify(&problem, &Budget::with_appver_calls(100));
//! assert_eq!(result.verdict, Verdict::Verified);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bab;
mod certificate;
mod crown;
mod driver;
mod mcts;
mod portfolio;
mod spec;
mod tree;

pub mod heuristics;
pub mod pool;
pub mod potentiality;

pub use bab::BabBaseline;
pub use certificate::{Certificate, CertificateError, CheckStats, ProofNode};
pub use crown::CrownStyle;
pub use driver::{Budget, RunResult, RunStats, Verdict, Verifier};
pub use mcts::{AbonnConfig, AbonnVerifier};
pub use pool::WorkerPool;
pub use portfolio::{Portfolio, Stage};
pub use spec::{RobustnessProblem, SpecError};
pub use tree::{BabTree, NodeId, NodeState};
