//! Checkable verification certificates.
//!
//! A `Verified` verdict from branch and bound is a claim about an
//! exponentially large case split. This module makes the claim
//! *auditable*: ABONN can export the branch tree it closed as a
//! [`Certificate`], and an independent party re-establishes the result by
//! walking the tree — each [`ProofNode::Branch`] splits a ReLU into its
//! two (exhaustive) phases, and each [`ProofNode::Leaf`] must be verified
//! by whatever sound `AppVer` the checker trusts. Coverage is guaranteed
//! structurally: `r⁺ ∪ r⁻` is the whole region, so only the leaf checks
//! need to be believed. This mirrors the proof-production efforts around
//! VNN-COMP.

use crate::spec::RobustnessProblem;
use abonn_bound::{AppVer, NeuronId, SplitSet, SplitSign};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// One node of the proof tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProofNode {
    /// The sub-problem at this path is claimed verifiable by a single
    /// `AppVer` call. The leaf records its own split set (the emitting
    /// engine's provenance), so an auditor can validate the claimed
    /// region collection *flat*, without trusting the tree structure.
    Leaf {
        /// The split constraints identifying the leaf's sub-problem,
        /// sorted by `(layer, index)`.
        splits: Vec<(NeuronId, SplitSign)>,
    },
    /// The sub-problem at this path was still unresolved when the search
    /// stopped. Partial certificates exported on timeout contain these;
    /// they record an outstanding obligation and never check.
    Open {
        /// The split constraints identifying the unexplored sub-problem,
        /// sorted by `(layer, index)`.
        splits: Vec<(NeuronId, SplitSign)>,
    },
    /// Case split on one ReLU's phase.
    Branch {
        /// The split neuron.
        neuron: NeuronId,
        /// Subtree under `r⁺` (pre-activation ≥ 0).
        pos: Box<ProofNode>,
        /// Subtree under `r⁻` (pre-activation ≤ 0).
        neg: Box<ProofNode>,
    },
}

impl ProofNode {
    /// A verified leaf with its split-set provenance.
    #[must_use]
    pub fn leaf(splits: Vec<(NeuronId, SplitSign)>) -> Self {
        ProofNode::Leaf { splits }
    }

    /// The root leaf: the whole region verified in one call.
    #[must_use]
    pub fn root_leaf() -> Self {
        ProofNode::Leaf { splits: Vec::new() }
    }

    /// An open obligation with its split-set provenance.
    #[must_use]
    pub fn open(splits: Vec<(NeuronId, SplitSign)>) -> Self {
        ProofNode::Open { splits }
    }

    /// Number of verified leaves below this node (inclusive).
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        match self {
            ProofNode::Leaf { .. } => 1,
            ProofNode::Open { .. } => 0,
            ProofNode::Branch { pos, neg, .. } => pos.num_leaves() + neg.num_leaves(),
        }
    }

    /// Number of unresolved [`ProofNode::Open`] obligations (inclusive).
    #[must_use]
    pub fn num_open(&self) -> usize {
        match self {
            ProofNode::Leaf { .. } => 0,
            ProofNode::Open { .. } => 1,
            ProofNode::Branch { pos, neg, .. } => pos.num_open() + neg.num_open(),
        }
    }

    /// Height of the subtree (a leaf has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            ProofNode::Leaf { .. } | ProofNode::Open { .. } => 0,
            ProofNode::Branch { pos, neg, .. } => 1 + pos.depth().max(neg.depth()),
        }
    }

    /// Collects the recorded split sets of every terminal (leaf or open)
    /// node in depth-first `(pos, neg)` order, each tagged with whether
    /// the terminal is a verified leaf (`true`) or an open obligation
    /// (`false`).
    #[must_use]
    pub fn terminals(&self) -> Vec<(Vec<(NeuronId, SplitSign)>, bool)> {
        let mut out = Vec::new();
        self.collect_terminals(&mut out);
        out
    }

    fn collect_terminals(&self, out: &mut Vec<(Vec<(NeuronId, SplitSign)>, bool)>) {
        match self {
            ProofNode::Leaf { splits } => out.push((splits.clone(), true)),
            ProofNode::Open { splits } => out.push((splits.clone(), false)),
            ProofNode::Branch { pos, neg, .. } => {
                pos.collect_terminals(out);
                neg.collect_terminals(out);
            }
        }
    }
}

/// A verification certificate: the closed BaB branch tree.
///
/// # Examples
///
/// ```
/// use abonn_core::{AbonnVerifier, Budget, RobustnessProblem};
/// use abonn_bound::{Cascade, AppVer};
/// use abonn_nn::{Layer, Network, Shape};
/// use abonn_tensor::Matrix;
///
/// let net = Network::new(
///     Shape::Flat(2),
///     vec![
///         Layer::dense(Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]]), vec![0.0, 0.4]),
///         Layer::relu(),
///         Layer::dense(Matrix::identity(2), vec![0.0, 0.0]),
///     ],
/// )?;
/// let problem = RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.05)?;
/// let (result, certificate) =
///     AbonnVerifier::default().verify_with_certificate(&problem, &Budget::with_appver_calls(200));
/// let certificate = certificate.expect("verified runs produce certificates");
/// certificate.check(&problem, &Cascade::standard())?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    root: ProofNode,
}

/// Why a certificate failed to check.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// A leaf's sub-problem could not be verified by the checking
    /// verifier.
    LeafNotVerified {
        /// Path to the failing leaf as `(neuron, sign)` pairs.
        path: Vec<(NeuronId, SplitSign)>,
        /// The checker's `p̂` at the leaf.
        p_hat: f64,
    },
    /// A branch re-splits a neuron already fixed on its path.
    DuplicateSplit(NeuronId),
    /// The proof tree contains an unresolved [`ProofNode::Open`]
    /// obligation — a partial certificate from a timed-out run.
    IncompleteProof {
        /// Path to the open node as `(neuron, sign)` pairs.
        path: Vec<(NeuronId, SplitSign)>,
    },
    /// A terminal node's recorded split-set provenance disagrees with the
    /// branch path leading to it — the certificate was assembled
    /// inconsistently (or tampered with).
    SplitMismatch {
        /// Path to the terminal as `(neuron, sign)` pairs.
        path: Vec<(NeuronId, SplitSign)>,
        /// The split set the terminal itself recorded.
        recorded: Vec<(NeuronId, SplitSign)>,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::LeafNotVerified { path, p_hat } => {
                write!(
                    f,
                    "leaf at depth {} not verified (p_hat = {p_hat})",
                    path.len()
                )
            }
            CertificateError::DuplicateSplit(n) => {
                write!(f, "neuron {n} split twice on one path")
            }
            CertificateError::IncompleteProof { path } => {
                write!(
                    f,
                    "open proof obligation at depth {} (partial certificate)",
                    path.len()
                )
            }
            CertificateError::SplitMismatch { path, recorded } => {
                write!(
                    f,
                    "terminal at depth {} records {} splits disagreeing with its path",
                    path.len(),
                    recorded.len()
                )
            }
        }
    }
}

impl Error for CertificateError {}

/// Statistics from a successful [`Certificate::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Leaves re-verified.
    pub leaves: usize,
    /// Height of the proof tree.
    pub depth: usize,
}

impl Certificate {
    /// Wraps a proof tree.
    #[must_use]
    pub fn new(root: ProofNode) -> Self {
        Self { root }
    }

    /// The proof tree.
    #[must_use]
    pub fn root(&self) -> &ProofNode {
        &self.root
    }

    /// Number of leaf obligations.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.root.num_leaves()
    }

    /// Number of unresolved [`ProofNode::Open`] obligations.
    #[must_use]
    pub fn num_open(&self) -> usize {
        self.root.num_open()
    }

    /// Returns `true` when the proof tree has no [`ProofNode::Open`]
    /// obligation left — only complete certificates can check.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.root.num_open() == 0
    }

    /// Height of the proof tree.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// The recorded split sets of every terminal node (see
    /// [`ProofNode::terminals`]): the flat region collection an
    /// independent auditor validates for exact coverage.
    #[must_use]
    pub fn terminals(&self) -> Vec<(Vec<(NeuronId, SplitSign)>, bool)> {
        self.root.terminals()
    }

    /// Re-establishes the `Verified` verdict: walks the tree and checks
    /// every leaf with `verifier`.
    ///
    /// Soundness of the conclusion only depends on the soundness of
    /// `verifier` — the branch structure covers the region by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`CertificateError`] for an unverifiable leaf, a malformed
    /// path, or an unresolved [`ProofNode::Open`] obligation (partial
    /// certificates never check).
    pub fn check(
        &self,
        problem: &RobustnessProblem,
        verifier: &dyn AppVer,
    ) -> Result<CheckStats, CertificateError> {
        let mut leaves = 0usize;
        check_node(
            &self.root,
            problem,
            verifier,
            &SplitSet::new(),
            &mut Vec::new(),
            &mut leaves,
        )?;
        Ok(CheckStats {
            leaves,
            depth: self.depth(),
        })
    }
}

fn check_node(
    node: &ProofNode,
    problem: &RobustnessProblem,
    verifier: &dyn AppVer,
    splits: &SplitSet,
    path: &mut Vec<(NeuronId, SplitSign)>,
    leaves: &mut usize,
) -> Result<(), CertificateError> {
    match node {
        ProofNode::Leaf { splits: recorded } => {
            check_provenance(recorded, splits, path)?;
            let analysis = verifier.analyze(problem.margin_net(), problem.region(), splits);
            if !analysis.verified() {
                return Err(CertificateError::LeafNotVerified {
                    path: path.clone(),
                    p_hat: analysis.p_hat,
                });
            }
            *leaves += 1;
            Ok(())
        }
        ProofNode::Open { splits: recorded } => {
            check_provenance(recorded, splits, path)?;
            Err(CertificateError::IncompleteProof { path: path.clone() })
        }
        ProofNode::Branch { neuron, pos, neg } => {
            if splits.sign_of(*neuron).is_some() {
                return Err(CertificateError::DuplicateSplit(*neuron));
            }
            for (sign, child) in [(SplitSign::Pos, pos), (SplitSign::Neg, neg)] {
                path.push((*neuron, sign));
                check_node(
                    child,
                    problem,
                    verifier,
                    &splits.with(*neuron, sign),
                    path,
                    leaves,
                )?;
                path.pop();
            }
            Ok(())
        }
    }
}

/// Validates a terminal's recorded split-set provenance against the split
/// set accumulated along its branch path. Order-insensitive: the recorded
/// pairs are compared as a set.
fn check_provenance(
    recorded: &[(NeuronId, SplitSign)],
    splits: &SplitSet,
    path: &[(NeuronId, SplitSign)],
) -> Result<(), CertificateError> {
    let mut sorted: Vec<(NeuronId, SplitSign)> = recorded.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let from_path: Vec<(NeuronId, SplitSign)> = splits.iter().collect();
    if sorted != from_path {
        return Err(CertificateError::SplitMismatch {
            path: path.to_vec(),
            recorded: recorded.to_vec(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_bound::DeepPoly;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    fn robust_problem() -> RobustnessProblem {
        let net = Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]]),
                    vec![0.0, 0.4],
                ),
                Layer::relu(),
                Layer::dense(Matrix::identity(2), vec![0.0, 0.0]),
            ],
        )
        .unwrap();
        RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.05).unwrap()
    }

    #[test]
    fn trivial_leaf_certificate_checks_on_robust_problem() {
        let problem = robust_problem();
        let cert = Certificate::new(ProofNode::root_leaf());
        let stats = cert.check(&problem, &DeepPoly::new()).unwrap();
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn leaf_certificate_fails_on_unverifiable_problem() {
        // Radius large enough that a single DeepPoly call cannot verify.
        let net = robust_problem().network().clone();
        let problem = RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.45).unwrap();
        let cert = Certificate::new(ProofNode::root_leaf());
        assert!(matches!(
            cert.check(&problem, &DeepPoly::new()),
            Err(CertificateError::LeafNotVerified { .. })
        ));
    }

    #[test]
    fn duplicate_split_is_rejected() {
        let problem = robust_problem();
        let n = NeuronId::new(0, 0);
        let inner = ProofNode::Branch {
            neuron: n,
            pos: Box::new(ProofNode::root_leaf()),
            neg: Box::new(ProofNode::root_leaf()),
        };
        let cert = Certificate::new(ProofNode::Branch {
            neuron: n,
            pos: Box::new(inner.clone()),
            neg: Box::new(inner),
        });
        assert_eq!(
            cert.check(&problem, &DeepPoly::new()),
            Err(CertificateError::DuplicateSplit(n))
        );
    }

    #[test]
    fn open_obligations_make_a_certificate_partial() {
        let problem = robust_problem();
        let n = NeuronId::new(0, 0);
        let cert = Certificate::new(ProofNode::Branch {
            neuron: n,
            pos: Box::new(ProofNode::leaf(vec![(n, SplitSign::Pos)])),
            neg: Box::new(ProofNode::open(vec![(n, SplitSign::Neg)])),
        });
        assert!(!cert.is_complete());
        assert_eq!(cert.num_open(), 1);
        assert_eq!(cert.num_leaves(), 1);
        assert!(matches!(
            cert.check(&problem, &DeepPoly::new()),
            Err(CertificateError::IncompleteProof { path }) if path.len() == 1
        ));
        let json = serde_json::to_string(&cert).unwrap();
        let back: Certificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
    }

    #[test]
    fn mismatched_provenance_is_rejected() {
        let problem = robust_problem();
        let n = NeuronId::new(0, 0);
        // The pos leaf records the *wrong* sign for its own path.
        let cert = Certificate::new(ProofNode::Branch {
            neuron: n,
            pos: Box::new(ProofNode::leaf(vec![(n, SplitSign::Neg)])),
            neg: Box::new(ProofNode::leaf(vec![(n, SplitSign::Neg)])),
        });
        assert!(matches!(
            cert.check(&problem, &DeepPoly::new()),
            Err(CertificateError::SplitMismatch { .. })
        ));
    }

    #[test]
    fn counts_terminals_and_serde_roundtrip() {
        let (a, b) = (NeuronId::new(0, 1), NeuronId::new(1, 0));
        let cert = Certificate::new(ProofNode::Branch {
            neuron: a,
            pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Pos)])),
            neg: Box::new(ProofNode::Branch {
                neuron: b,
                pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Neg), (b, SplitSign::Pos)])),
                neg: Box::new(ProofNode::leaf(vec![(a, SplitSign::Neg), (b, SplitSign::Neg)])),
            }),
        });
        assert_eq!(cert.num_leaves(), 3);
        assert_eq!(cert.depth(), 2);
        let terminals = cert.terminals();
        assert_eq!(terminals.len(), 3);
        assert!(terminals.iter().all(|(_, closed)| *closed));
        assert_eq!(terminals[0].0, vec![(a, SplitSign::Pos)]);
        let json = serde_json::to_string(&cert).unwrap();
        let back: Certificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
    }
}
