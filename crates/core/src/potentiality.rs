//! Counterexample potentiality — Definition 1 of the paper.
//!
//! The potentiality `⟦Γ⟧` of a BaB node combines its depth (deeper nodes
//! carry less over-approximation, so a negative `p̂` there is more
//! credible) and the magnitude of the verifier's violation estimate `p̂`:
//!
//! ```text
//!           ⎧ −∞                                    p̂ > 0   (verified)
//! ⟦Γ⟧  =    ⎨ +∞                                    p̂ < 0 and valid(x̂)
//!           ⎩ λ·depth(Γ)/K + (1−λ)·p̂/p̂_min         otherwise
//! ```
//!
//! The paper leaves `p̂_min` implicit; following its intent (normalise `p̂`
//! into `[0, 1]`) we use the most negative `p̂` observed so far in the tree
//! and clamp the ratio (see `DESIGN.md` §3).

/// Outcome of evaluating a node with an approximated verifier, as far as
/// potentiality is concerned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeOutcome {
    /// `p̂ > 0` (or the split region is infeasible): no counterexample can
    /// exist below this node.
    Verified,
    /// `p̂ < 0` and the candidate validated: a real counterexample.
    ValidCounterexample,
    /// `p̂ < 0` with a spurious candidate: a false alarm to branch on.
    FalseAlarm {
        /// The verifier's violation estimate (negative).
        p_hat: f64,
    },
}

/// Evaluates Definition 1.
///
/// * `depth` — `depth(Γ)`, the number of splits on the path;
/// * `k_total` — `K`, the total number of ReLU neurons in the network;
/// * `p_hat_min` — the most negative `p̂` observed so far (normaliser);
/// * `lambda` — the weighting hyperparameter `λ ∈ [0, 1]`.
///
/// Returns a value in `[0, 1]` for false alarms, `−∞` for verified nodes
/// and `+∞` for validated counterexamples.
///
/// # Examples
///
/// ```
/// use abonn_core::potentiality::{potentiality, NodeOutcome};
///
/// // Deeper nodes with stronger violations are more promising.
/// let shallow = potentiality(NodeOutcome::FalseAlarm { p_hat: -0.5 }, 1, 100, -2.0, 0.5);
/// let deep = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.8 }, 40, 100, -2.0, 0.5);
/// assert!(deep > shallow);
/// ```
///
/// # Panics
///
/// Panics if `lambda` is outside `[0, 1]` or `k_total` is zero.
#[must_use]
pub fn potentiality(
    outcome: NodeOutcome,
    depth: usize,
    k_total: usize,
    p_hat_min: f64,
    lambda: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    assert!(k_total > 0, "network must have ReLU neurons");
    match outcome {
        NodeOutcome::Verified => f64::NEG_INFINITY,
        NodeOutcome::ValidCounterexample => f64::INFINITY,
        NodeOutcome::FalseAlarm { p_hat } => {
            let depth_term = (depth as f64 / k_total as f64).clamp(0.0, 1.0);
            // p̂ and p̂_min are both negative; the ratio lands in [0, 1]
            // when p̂ ≥ p̂_min and is clamped otherwise.
            let p_term = if p_hat_min < 0.0 {
                (p_hat / p_hat_min).clamp(0.0, 1.0)
            } else {
                0.0
            };
            lambda * depth_term + (1.0 - lambda) * p_term
        }
    }
}

/// The UCB1 score used for child selection (Line 13 of Algorithm 1):
/// `R + c·√(2·ln(parent_visits) / child_visits)`.
///
/// Infinite rewards pass through untouched, so verified subtrees are never
/// preferred and counterexample subtrees always win.
///
/// # Panics
///
/// Panics if `child_visits` is zero.
#[must_use]
pub fn ucb1(reward: f64, c: f64, parent_visits: usize, child_visits: usize) -> f64 {
    assert!(child_visits > 0, "ucb1: child must have been visited");
    if reward.is_infinite() {
        return reward;
    }
    let bonus = (2.0 * (parent_visits.max(1) as f64).ln() / child_visits as f64).sqrt();
    reward + c * bonus
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn verified_and_valid_map_to_infinities() {
        assert_eq!(
            potentiality(NodeOutcome::Verified, 3, 10, -1.0, 0.5),
            f64::NEG_INFINITY
        );
        assert_eq!(
            potentiality(NodeOutcome::ValidCounterexample, 3, 10, -1.0, 0.5),
            f64::INFINITY
        );
    }

    #[test]
    fn deeper_nodes_score_higher() {
        let shallow = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.0 }, 1, 10, -2.0, 0.5);
        let deep = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.0 }, 5, 10, -2.0, 0.5);
        assert!(deep > shallow);
    }

    #[test]
    fn more_negative_p_hat_scores_higher() {
        let mild = potentiality(NodeOutcome::FalseAlarm { p_hat: -0.5 }, 2, 10, -2.0, 0.5);
        let severe = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.9 }, 2, 10, -2.0, 0.5);
        assert!(severe > mild);
    }

    #[test]
    fn lambda_extremes_isolate_each_attribute() {
        // λ = 1: only depth matters.
        let a = potentiality(NodeOutcome::FalseAlarm { p_hat: -0.1 }, 4, 8, -2.0, 1.0);
        let b = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.9 }, 4, 8, -2.0, 1.0);
        assert_eq!(a, b);
        assert!((a - 0.5).abs() < 1e-12);
        // λ = 0: only p̂ matters.
        let c = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.0 }, 1, 8, -2.0, 0.0);
        let d = potentiality(NodeOutcome::FalseAlarm { p_hat: -1.0 }, 7, 8, -2.0, 0.0);
        assert_eq!(c, d);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ucb1_adds_exploration_bonus() {
        let often = ucb1(0.5, 0.2, 100, 90);
        let rarely = ucb1(0.5, 0.2, 100, 2);
        assert!(rarely > often);
        // c = 0 disables the bonus entirely.
        assert_eq!(ucb1(0.5, 0.0, 100, 2), 0.5);
    }

    #[test]
    fn ucb1_preserves_infinities() {
        assert_eq!(ucb1(f64::NEG_INFINITY, 0.2, 10, 1), f64::NEG_INFINITY);
        assert_eq!(ucb1(f64::INFINITY, 0.2, 10, 1), f64::INFINITY);
    }

    proptest! {
        /// Finite potentialities always land in [0, 1].
        #[test]
        fn finite_potentiality_is_normalised(
            depth in 0usize..64,
            k in 1usize..64,
            p_hat in -10.0..-1e-6_f64,
            p_min in -10.0..-1e-6_f64,
            lambda in 0.0..1.0_f64,
        ) {
            let v = potentiality(NodeOutcome::FalseAlarm { p_hat }, depth, k, p_min, lambda);
            prop_assert!((0.0..=1.0).contains(&v), "potentiality {v} out of range");
        }

        /// Monotonicity in p̂ under a fixed normaliser.
        #[test]
        fn potentiality_monotone_in_violation(
            p1 in -5.0..-0.1_f64,
            delta in 0.01..3.0_f64,
        ) {
            let worse = p1 - delta;
            let v1 = potentiality(NodeOutcome::FalseAlarm { p_hat: p1 }, 2, 10, -10.0, 0.5);
            let v2 = potentiality(NodeOutcome::FalseAlarm { p_hat: worse }, 2, 10, -10.0, 0.5);
            prop_assert!(v2 >= v1);
        }
    }
}
