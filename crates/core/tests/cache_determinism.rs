//! Determinism of incremental bounding under the parallel engine.
//!
//! Three properties, for both search strategies (ABONN/MCTS and the BaB
//! baseline):
//!
//! 1. Cache on vs off changes nothing observable except the new
//!    bound-work counters: verdict, AppVer calls, node counts, and tree
//!    shape are identical.
//! 2. With the cache on, the counters themselves are thread-count
//!    invariant — they are accumulated in consumption order on the
//!    search thread, never on pool lanes.
//! 3. The cache actually works: on an instance that branches, the
//!    incremental run reuses parent layers and performs strictly fewer
//!    back-substitution layer-steps than its from-scratch twin would.

use abonn_core::{
    AbonnVerifier, BabBaseline, Budget, RobustnessProblem, RunStats, Verdict, Verifier, WorkerPool,
};
use abonn_nn::{Layer, Network, Shape};
use abonn_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

/// A 2 -> 4 -> 2 ReLU network from flat weight/bias vectors.
fn small_net(w1: &[f64], b1: &[f64], w2: &[f64], b2: &[f64]) -> Network {
    Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[&w1[0..2], &w1[2..4], &w1[4..6], &w1[6..8]]),
                b1.to_vec(),
            ),
            Layer::relu(),
            Layer::dense(Matrix::from_rows(&[&w2[0..4], &w2[4..8]]), b2.to_vec()),
        ],
    )
    .expect("well-shaped network")
}

fn abonn_run(
    problem: &RobustnessProblem,
    budget: &Budget,
    threads: usize,
    incremental: bool,
) -> (Verdict, RunStats) {
    let mut verifier = AbonnVerifier::default().with_pool(Arc::new(WorkerPool::new(threads)));
    verifier.config.incremental = incremental;
    let result = verifier.verify(problem, budget);
    (result.verdict, result.stats)
}

fn bab_run(
    problem: &RobustnessProblem,
    budget: &Budget,
    threads: usize,
    incremental: bool,
) -> (Verdict, RunStats) {
    let mut verifier = BabBaseline::default().with_pool(Arc::new(WorkerPool::new(threads)));
    verifier.incremental = incremental;
    let result = verifier.verify(problem, budget);
    (result.verdict, result.stats)
}

/// The stats that must not depend on caching: everything except the
/// bound-work counters and wall time.
fn search_signature(stats: &RunStats) -> (usize, usize, usize, usize) {
    (
        stats.appver_calls,
        stats.nodes_visited,
        stats.tree_size,
        stats.max_depth,
    )
}

/// The bound-work counters that must not depend on the thread count.
fn counter_signature(stats: &RunStats) -> (usize, usize, usize) {
    (
        stats.cache_layers_reused,
        stats.cache_layers_recomputed,
        stats.backsub_steps,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cache_changes_nothing_but_counters(
        w1 in proptest::collection::vec(-1.5..1.5_f64, 8),
        b1 in proptest::collection::vec(-0.5..0.5_f64, 4),
        w2 in proptest::collection::vec(-1.5..1.5_f64, 8),
        b2 in proptest::collection::vec(-0.5..0.5_f64, 2),
        x0 in proptest::collection::vec(0.1..0.9_f64, 2),
        eps in 0.01..0.25_f64,
    ) {
        let net = small_net(&w1, &b1, &w2, &b2);
        let problem = RobustnessProblem::new(&net, x0, 0, eps).expect("valid problem");
        // Call-only budget: a wall limit would reintroduce timing.
        let budget = Budget::with_appver_calls(120);

        for run in [abonn_run, bab_run] {
            let (v_on, s_on) = run(&problem, &budget, 1, true);
            let (v_off, s_off) = run(&problem, &budget, 1, false);
            prop_assert_eq!(&v_on, &v_off, "cache flipped the verdict");
            prop_assert_eq!(
                search_signature(&s_on),
                search_signature(&s_off),
                "cache changed the search trajectory"
            );
            // With caching on, the counters are invariant across pool
            // widths and never exceed the from-scratch step count.
            let base = counter_signature(&s_on);
            for threads in [2usize, 4] {
                let (v, s) = run(&problem, &budget, threads, true);
                prop_assert_eq!(&v, &v_on, "verdict diverged at {} threads", threads);
                prop_assert_eq!(
                    search_signature(&s),
                    search_signature(&s_on),
                    "search diverged at {} threads", threads
                );
                prop_assert_eq!(
                    counter_signature(&s),
                    base,
                    "bound-work counters diverged at {} threads", threads
                );
            }
        }
    }
}

/// On an instance that needs branching, incremental bounding must reuse
/// parent layers: the reuse counter is positive and total layer-steps
/// stay below `calls * full-backsub` (what from-scratch would count).
#[test]
fn branching_instance_reuses_parent_layers() {
    // The gate network of `parallel_determinism.rs` (margin
    // x0 - relu(x1) - 0.2 relu(g1) - 0.2 relu(g2), robust over the box
    // but unprovable at the root), deepened with two identity+ReLU
    // stages in front. The margin network then has 4 affine stages and
    // the gate neurons sit at layer 2, so splitting them reuses two
    // cached parent layers per child evaluation.
    let id2 = || Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
    let net = Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(id2(), vec![0.0, 0.0]),
            Layer::relu(),
            Layer::dense(id2(), vec![0.0, 0.0]),
            Layer::relu(),
            Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]),
                vec![0.0, 0.0, -1.0, -0.9],
            ),
            Layer::relu(),
            Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.2, 0.2]]),
                vec![0.0, 0.0],
            ),
        ],
    )
    .expect("well-shaped network");
    let problem = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.28).expect("valid problem");
    let budget = Budget::with_appver_calls(10_000);

    // 4 affine stages: a from-scratch DeepPoly call counts 0+1+2+3 = 6
    // back-substitution layer-steps.
    let full_backsub = 6;
    for run in [abonn_run, bab_run] {
        let (verdict, stats) = run(&problem, &budget, 1, true);
        assert_eq!(verdict, Verdict::Verified, "probe: instance must be robust");
        assert!(
            stats.appver_calls > 3,
            "probe: instance must branch, took {} calls",
            stats.appver_calls
        );
        assert!(stats.cache_layers_reused > 0, "no parent layers were reused");
        assert!(
            stats.backsub_steps < stats.appver_calls * full_backsub,
            "{} steps is not below the {}-call x {}-step scratch cost",
            stats.backsub_steps,
            stats.appver_calls,
            full_backsub
        );
    }
}
