//! Determinism of the parallel engine: for random small problems, the
//! verdict, node counts, and certificate shape must be identical whether
//! a run uses 1, 2, or 4 pool lanes. The engine promises *bit-for-bit*
//! equality — parallelism may only change wall time.

use abonn_core::{
    AbonnVerifier, BabBaseline, Budget, Certificate, RobustnessProblem, Verdict, Verifier,
    WorkerPool,
};
use abonn_nn::{Layer, Network, Shape};
use abonn_tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

/// A 2 -> 4 -> 2 ReLU network from flat weight/bias vectors.
fn small_net(w1: &[f64], b1: &[f64], w2: &[f64], b2: &[f64]) -> Network {
    Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[&w1[0..2], &w1[2..4], &w1[4..6], &w1[6..8]]),
                b1.to_vec(),
            ),
            Layer::relu(),
            Layer::dense(Matrix::from_rows(&[&w2[0..4], &w2[4..8]]), b2.to_vec()),
        ],
    )
    .expect("well-shaped network")
}

/// Signature of one run that must be invariant under the thread count.
/// Wall time is deliberately excluded — it is the one quantity that may
/// (and should) change.
#[derive(Debug, PartialEq)]
struct RunSignature {
    verdict: Verdict,
    appver_calls: usize,
    nodes_visited: usize,
    tree_size: usize,
    max_depth: usize,
    certificate: Option<Certificate>,
}

fn abonn_signature(problem: &RobustnessProblem, budget: &Budget, threads: usize) -> RunSignature {
    let verifier = AbonnVerifier::default().with_pool(Arc::new(WorkerPool::new(threads)));
    let (result, certificate) = verifier.verify_with_certificate(problem, budget);
    RunSignature {
        verdict: result.verdict,
        appver_calls: result.stats.appver_calls,
        nodes_visited: result.stats.nodes_visited,
        tree_size: result.stats.tree_size,
        max_depth: result.stats.max_depth,
        certificate,
    }
}

fn bab_signature(problem: &RobustnessProblem, budget: &Budget, threads: usize) -> RunSignature {
    let verifier = BabBaseline::default().with_pool(Arc::new(WorkerPool::new(threads)));
    let result = verifier.verify(problem, budget);
    RunSignature {
        verdict: result.verdict,
        appver_calls: result.stats.appver_calls,
        nodes_visited: result.stats.nodes_visited,
        tree_size: result.stats.tree_size,
        max_depth: result.stats.max_depth,
        certificate: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ABONN (MCTS) runs are thread-count invariant: same verdict, same
    /// AppVer call count, same tree, same (possibly partial) certificate.
    #[test]
    fn abonn_is_thread_count_invariant(
        w1 in proptest::collection::vec(-1.5..1.5_f64, 8),
        b1 in proptest::collection::vec(-0.5..0.5_f64, 4),
        w2 in proptest::collection::vec(-1.5..1.5_f64, 8),
        b2 in proptest::collection::vec(-0.5..0.5_f64, 2),
        x0 in proptest::collection::vec(0.1..0.9_f64, 2),
        eps in 0.01..0.25_f64,
    ) {
        let net = small_net(&w1, &b1, &w2, &b2);
        let problem = RobustnessProblem::new(&net, x0, 0, eps).expect("valid problem");
        // Call-only budget: a wall limit would reintroduce timing.
        let budget = Budget::with_appver_calls(120);
        let base = abonn_signature(&problem, &budget, 1);
        for threads in [2usize, 4] {
            let sig = abonn_signature(&problem, &budget, threads);
            prop_assert_eq!(&sig, &base, "ABONN diverged at {} threads", threads);
        }
    }

    /// The BaB baseline is likewise invariant, including under batched
    /// frontier bounding wider than the queue.
    #[test]
    fn bab_is_thread_count_invariant(
        w1 in proptest::collection::vec(-1.5..1.5_f64, 8),
        b1 in proptest::collection::vec(-0.5..0.5_f64, 4),
        w2 in proptest::collection::vec(-1.5..1.5_f64, 8),
        b2 in proptest::collection::vec(-0.5..0.5_f64, 2),
        x0 in proptest::collection::vec(0.1..0.9_f64, 2),
        eps in 0.01..0.25_f64,
    ) {
        let net = small_net(&w1, &b1, &w2, &b2);
        let problem = RobustnessProblem::new(&net, x0, 0, eps).expect("valid problem");
        let budget = Budget::with_appver_calls(120);
        let base = bab_signature(&problem, &budget, 1);
        for threads in [2usize, 4] {
            let sig = bab_signature(&problem, &budget, threads);
            prop_assert_eq!(&sig, &base, "BaB diverged at {} threads", threads);
        }
    }
}

/// A budget exhausted mid-expansion on a worker thread must still come
/// back as a clean `Timeout` with a well-formed partial certificate, and
/// must not poison the pool: the same pool instance then completes a
/// follow-up run normally.
#[test]
fn timeout_mid_expansion_yields_partial_certificate_and_healthy_pool() {
    // margin = x0 - x1 - 0.2 relu(x0+x1-1) - 0.2 relu(x0+x1-0.9): over the
    // 0.28-box around (0.8, 0.2) the true minimum stays positive (robust),
    // but both gate neurons are unstable, so the root DeepPoly relaxation
    // under-approximates the margin below zero and the search must branch.
    let net = small_net(
        &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        &[0.0, 0.0, -1.0, -0.9],
        &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.2, 0.2],
        &[0.0, 0.0],
    );
    let pool = Arc::new(WorkerPool::new(4));
    let problem = RobustnessProblem::new(&net, vec![0.8, 0.2], 0, 0.28).expect("valid problem");

    // Probe: with a generous budget the instance verifies, and it needs
    // more than 3 AppVer calls — so a 3-call budget must hit Timeout
    // mid-expansion rather than falsify or verify at the root.
    let full = AbonnVerifier::default()
        .with_pool(Arc::clone(&pool))
        .verify(&problem, &Budget::with_appver_calls(10_000));
    assert_eq!(full.verdict, Verdict::Verified, "probe: instance must be robust");
    assert!(
        full.stats.appver_calls > 3,
        "probe: instance must need branching, took {} calls (verdict {:?})",
        full.stats.appver_calls,
        full.verdict
    );

    let verifier = AbonnVerifier::default().with_pool(Arc::clone(&pool));
    let (result, certificate) =
        verifier.verify_with_certificate(&problem, &Budget::with_appver_calls(3));
    assert_eq!(result.verdict, Verdict::Timeout, "budget of 3 calls must time out");
    let cert = certificate.expect("timeout must still yield a partial certificate");
    assert!(!cert.is_complete(), "a timed-out proof has open obligations");
    assert!(cert.num_open() >= 1);
    assert_eq!(
        cert.num_open() > 0,
        !cert.is_complete(),
        "is_complete and num_open must agree"
    );

    // The pool survives: reuse it for an easy instance and verify fully.
    let easy = RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 1e-4).expect("valid problem");
    let verifier = AbonnVerifier::default().with_pool(pool);
    let (result, certificate) =
        verifier.verify_with_certificate(&easy, &Budget::with_appver_calls(400));
    if result.verdict == Verdict::Verified {
        let cert = certificate.expect("verified run certifies");
        assert!(cert.is_complete());
        assert_eq!(cert.num_open(), 0);
    }
    // Either way the pool ran the second search to completion without
    // deadlocking or panicking, which is the property under test.
    assert!(result.stats.appver_calls >= 1);
}
