//! Deterministic renderings of a [`LintReport`](crate::LintReport):
//! a human-readable listing, a machine-readable JSON document, and a
//! SARIF 2.1.0 document for code-scanning UIs.
//!
//! All three are hand-rolled on purpose — the lint must not depend on
//! the serde shims it audits — and consume the report's already-sorted
//! vectors, so output bytes are stable across runs.

use crate::rules::{default_rules, Finding};
use crate::LintReport;
use std::fmt::Write as _;

/// Renders the report for terminals: one
/// `path:line: severity [rule] message` per finding, baselined and
/// stale-baseline sections, then a summary line.
#[must_use]
pub fn human(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}: {} [{}] {}",
            f.path,
            f.line,
            f.severity.as_str(),
            f.rule,
            f.message
        );
    }
    if !report.findings.is_empty() {
        out.push('\n');
    }
    for f in &report.baselined {
        let _ = writeln!(
            out,
            "baselined {}:{}: {} [{}] {}",
            f.path,
            f.line,
            f.severity.as_str(),
            f.rule,
            f.fingerprint
        );
    }
    for e in &report.stale_baseline {
        let _ = writeln!(
            out,
            "stale baseline entry {} ({} in {}): finding fixed, prune it with \
             `lint --write-baseline`",
            e.fingerprint, e.rule, e.path
        );
    }
    if !report.baselined.is_empty() || !report.stale_baseline.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "abonn-lint: {} finding(s), {} baselined, {} suppression(s) in {} file(s)",
        report.findings.len(),
        report.baselined.len(),
        report.suppressed.len(),
        report.files_scanned
    );
    out
}

fn write_finding(out: &mut String, f: &Finding) {
    let _ = write!(
        out,
        "{{\"rule\":{},\"path\":{},\"line\":{},\"severity\":{},\"fingerprint\":{},\"message\":{}}}",
        escape(&f.rule),
        escape(&f.path),
        f.line,
        escape(f.severity.as_str()),
        escape(&f.fingerprint),
        escape(&f.message)
    );
}

/// Renders the report as a JSON document:
///
/// ```json
/// {"files_scanned":N,"active":N,"baselined":N,"suppressed":N,
///  "findings":[{"rule":"...","path":"...","line":N,"severity":"...",
///               "fingerprint":"...","message":"..."}],
///  "baselined_findings":[...same shape...],
///  "stale_baseline":[{"fingerprint":"...","rule":"...","path":"..."}],
///  "suppressions":[{"rule":"...","path":"...","line":N,"reason":"..."}]}
/// ```
#[must_use]
pub fn json(report: &LintReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"files_scanned\":{},\"active\":{},\"baselined\":{},\"suppressed\":{},\"findings\":[",
        report.files_scanned,
        report.findings.len(),
        report.baselined.len(),
        report.suppressed.len()
    );
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_finding(&mut out, f);
    }
    out.push_str("],\"baselined_findings\":[");
    for (i, f) in report.baselined.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_finding(&mut out, f);
    }
    out.push_str("],\"stale_baseline\":[");
    for (i, e) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"fingerprint\":{},\"rule\":{},\"path\":{}}}",
            escape(&e.fingerprint),
            escape(&e.rule),
            escape(&e.path)
        );
    }
    out.push_str("],\"suppressions\":[");
    for (i, s) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{}}}",
            escape(&s.rule),
            escape(&s.path),
            s.line,
            escape(&s.reason)
        );
    }
    out.push_str("]}");
    out
}

fn sarif_result(out: &mut String, f: &Finding, suppressed: bool) {
    let _ = write!(
        out,
        "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}],\
         \"partialFingerprints\":{{\"abonnLintContent/v1\":{}}}",
        escape(&f.rule),
        escape(f.severity.as_str()),
        escape(&f.message),
        escape(&f.path),
        f.line,
        escape(&f.fingerprint)
    );
    if suppressed {
        out.push_str(",\"suppressions\":[{\"kind\":\"external\",\"justification\":\
                      \"grandfathered by lint-baseline.json\"}]");
    }
    out.push('}');
}

/// Renders the report as a minimal SARIF 2.1.0 document. Active
/// findings become plain results; baselined findings become results
/// carrying an external `suppressions` entry, so code-scanning UIs show
/// them as known-and-accepted rather than new. Byte-stable.
#[must_use]
pub fn sarif(report: &LintReport) -> String {
    let mut out = String::from(
        "{\"version\":\"2.1.0\",\"$schema\":\
         \"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\
         \"tool\":{\"driver\":{\"name\":\"abonn-lint\",\
         \"informationUri\":\"DESIGN.md\",\"rules\":[",
    );
    for (i, r) in default_rules().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            escape(r.name),
            escape(&normalize_ws(r.summary))
        );
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for f in &report.findings {
        if !first {
            out.push(',');
        }
        first = false;
        sarif_result(&mut out, f, false);
    }
    for f in &report.baselined {
        if !first {
            out.push(',');
        }
        first = false;
        sarif_result(&mut out, f, true);
    }
    out.push_str("]}]}");
    out
}

/// Collapses the continuation-line whitespace runs of `concat!`-style
/// summaries into single spaces.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEntry;
    use crate::rules::{Finding, Severity};
    use crate::Suppression;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "unordered-iteration".to_string(),
                path: "crates/bench/src/x.rs".to_string(),
                line: 7,
                message: "say \"no\" to HashMap".to_string(),
                severity: Severity::Error,
                fingerprint: "00aa00aa00aa00aa".to_string(),
            }],
            suppressed: vec![Suppression {
                rule: "relaxed-atomics".to_string(),
                path: "crates/core/src/pool.rs".to_string(),
                line: 3,
                reason: "monotonic counter".to_string(),
            }],
            baselined: vec![Finding {
                rule: "panic-path".to_string(),
                path: "crates/serve/src/persist.rs".to_string(),
                line: 12,
                message: "old friend".to_string(),
                severity: Severity::Warning,
                fingerprint: "ffeeffeeffeeffee".to_string(),
            }],
            stale_baseline: vec![BaselineEntry {
                fingerprint: "0123456789abcdef".to_string(),
                rule: "panic-path".to_string(),
                path: "crates/serve/src/server.rs".to_string(),
                note: "n".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_lists_findings_and_summary() {
        let text = human(&sample());
        assert!(text.contains("crates/bench/src/x.rs:7: error [unordered-iteration]"));
        assert!(text.contains("baselined crates/serve/src/persist.rs:12: warning"));
        assert!(text.contains("stale baseline entry 0123456789abcdef"));
        assert!(text.contains("1 finding(s), 1 baselined, 1 suppression(s) in 2 file(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let text = json(&sample());
        assert!(text.starts_with("{\"files_scanned\":2,\"active\":1,\"baselined\":1,"));
        assert!(text.contains("\\\"no\\\""), "quotes must be escaped: {text}");
        assert!(text.contains("\"severity\":\"error\""));
        assert!(text.contains("\"fingerprint\":\"00aa00aa00aa00aa\""));
        assert!(text.ends_with("]}"));
        let opens = text.matches('{').count() + text.matches('[').count();
        let closes = text.matches('}').count() + text.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn sarif_carries_rules_results_and_suppressions() {
        let text = sarif(&sample());
        assert!(text.starts_with("{\"version\":\"2.1.0\""));
        assert!(text.contains("\"name\":\"abonn-lint\""));
        assert!(text.contains("\"id\":\"panic-path\""));
        assert!(text.contains("\"ruleId\":\"unordered-iteration\""));
        assert!(text.contains("\"abonnLintContent/v1\":\"00aa00aa00aa00aa\""));
        assert!(
            text.contains("\"suppressions\":[{\"kind\":\"external\""),
            "baselined findings must carry a suppression: {text}"
        );
        let opens = text.matches('{').count() + text.matches('[').count();
        let closes = text.matches('}').count() + text.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let empty = LintReport::default();
        assert!(human(&empty).contains("0 finding(s)"));
        assert_eq!(
            json(&empty),
            "{\"files_scanned\":0,\"active\":0,\"baselined\":0,\"suppressed\":0,\
             \"findings\":[],\"baselined_findings\":[],\"stale_baseline\":[],\
             \"suppressions\":[]}"
        );
    }
}
