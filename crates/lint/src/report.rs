//! Deterministic renderings of a [`LintReport`](crate::LintReport):
//! a human-readable listing and a machine-readable JSON document.
//!
//! The JSON is hand-rolled on purpose — the lint must not depend on the
//! serde shims it audits — and both renderings consume the report's
//! already-sorted vectors, so output bytes are stable across runs.

use crate::LintReport;
use std::fmt::Write as _;

/// Renders the report for terminals: one `path:line: [rule] message`
/// per finding, then a summary line.
#[must_use]
pub fn human(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    if !report.findings.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "abonn-lint: {} finding(s), {} suppression(s) in {} file(s)",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    );
    out
}

/// Renders the report as a JSON document:
///
/// ```json
/// {"files_scanned":N,"active":N,"suppressed":N,
///  "findings":[{"rule":"...","path":"...","line":N,"message":"..."}],
///  "suppressions":[{"rule":"...","path":"...","line":N,"reason":"..."}]}
/// ```
#[must_use]
pub fn json(report: &LintReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"files_scanned\":{},\"active\":{},\"suppressed\":{},\"findings\":[",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(&f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        );
    }
    out.push_str("],\"suppressions\":[");
    for (i, s) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{}}}",
            escape(&s.rule),
            escape(&s.path),
            s.line,
            escape(&s.reason)
        );
    }
    out.push_str("]}");
    out
}

/// JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;
    use crate::Suppression;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "unordered-iteration".to_string(),
                path: "crates/bench/src/x.rs".to_string(),
                line: 7,
                message: "say \"no\" to HashMap".to_string(),
            }],
            suppressed: vec![Suppression {
                rule: "relaxed-atomics".to_string(),
                path: "crates/core/src/pool.rs".to_string(),
                line: 3,
                reason: "monotonic counter".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_lists_findings_and_summary() {
        let text = human(&sample());
        assert!(text.contains("crates/bench/src/x.rs:7: [unordered-iteration]"));
        assert!(text.contains("1 finding(s), 1 suppression(s) in 2 file(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let text = json(&sample());
        assert!(text.starts_with("{\"files_scanned\":2,\"active\":1,\"suppressed\":1,"));
        assert!(text.contains("\\\"no\\\""), "quotes must be escaped: {text}");
        assert!(text.ends_with("]}"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = text.matches('{').count() + text.matches('[').count();
        let closes = text.matches('}').count() + text.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let empty = LintReport::default();
        assert!(human(&empty).contains("0 finding(s)"));
        assert_eq!(
            json(&empty),
            "{\"files_scanned\":0,\"active\":0,\"suppressed\":0,\"findings\":[],\"suppressions\":[]}"
        );
    }
}
