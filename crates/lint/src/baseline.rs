//! Finding fingerprints and the committed baseline.
//!
//! A **fingerprint** is a stable 64-bit FNV-1a content hash of
//! `(rule, path, trimmed code line, occurrence ordinal)` rendered as 16
//! lowercase hex digits. Line numbers are deliberately *not* part of the
//! hash: inserting code above a grandfathered finding must not turn it
//! into a "new" one. The ordinal disambiguates identical lines in the
//! same file (the n-th `xs[i]` line fingerprints differently from the
//! first).
//!
//! The **baseline** (`lint-baseline.json` at the workspace root) is the
//! audited set of pre-existing findings: CI fails on any active finding
//! whose fingerprint is not in the baseline, while baselined findings
//! are reported (and exported to SARIF as suppressed results) without
//! failing the gate. Entries whose fingerprint no longer matches any
//! finding are *stale* and reported so the file gets pruned.
//!
//! This crate audits the workspace's serde shims, so it cannot depend on
//! them: the baseline is parsed with a minimal hand-rolled reader for
//! exactly the canonical subset [`render`] emits, and `load` re-renders
//! what it parsed to verify the file is byte-canonical (a hand-edited
//! or re-ordered baseline is rejected rather than silently accepted).

use crate::rules::Finding;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Content fingerprint (16 lowercase hex digits).
    pub fingerprint: String,
    /// Rule name (redundant with the hash; kept for human review).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Why this finding is grandfathered rather than fixed.
    pub note: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries sorted by `(fingerprint)`.
    pub entries: Vec<BaselineEntry>,
}

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable content fingerprint of a finding.
///
/// `content` is the trimmed code text of the finding's line; `ordinal`
/// counts earlier findings in the same file with the same
/// `(rule, content)` key, so duplicated lines stay distinguishable.
#[must_use]
pub fn fingerprint(rule: &str, path: &str, content: &str, ordinal: usize) -> String {
    let mut bytes = Vec::with_capacity(rule.len() + path.len() + content.len() + 24);
    bytes.extend_from_slice(rule.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(path.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(content.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(ordinal.to_string().as_bytes());
    format!("{:016x}", fnv1a(&bytes))
}

impl Baseline {
    /// Does the baseline contain this fingerprint?
    #[must_use]
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.iter().any(|e| e.fingerprint == fingerprint)
    }

    /// Builds a baseline grandfathering `findings` (already
    /// fingerprinted), with the default audit note.
    #[must_use]
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: Vec<BaselineEntry> = findings
            .iter()
            .map(|f| BaselineEntry {
                fingerprint: f.fingerprint.clone(),
                rule: f.rule.clone(),
                path: f.path.clone(),
                note: "grandfathered pre-existing finding; fix or justify before \
                       touching this code again"
                    .to_string(),
            })
            .collect();
        entries.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        entries.dedup();
        Baseline { entries }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the canonical baseline document: fixed key order, one entry
/// per line, sorted by fingerprint, trailing newline. Byte-stable.
#[must_use]
pub fn render(baseline: &Baseline) -> String {
    let mut entries = baseline.entries.clone();
    entries.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"fingerprint\": \"{}\", ", escape(&e.fingerprint)));
        out.push_str(&format!("\"rule\": \"{}\", ", escape(&e.rule)));
        out.push_str(&format!("\"path\": \"{}\", ", escape(&e.path)));
        out.push_str(&format!("\"note\": \"{}\"}}", escape(&e.note)));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Baseline load/parse failure.
#[derive(Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// Syntax error with a human-readable description.
    Parse(String),
    /// Parsed fine but the bytes are not the canonical rendering.
    NotCanonical,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Parse(msg) => write!(f, "baseline parse error: {msg}"),
            BaselineError::NotCanonical => write!(
                f,
                "baseline is not canonical: regenerate it with \
                 `lint --write-baseline` instead of editing by hand"
            ),
        }
    }
}

/// A minimal reader for the canonical baseline subset of JSON.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\n' | b'\t' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), BaselineError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(BaselineError::Parse(format!(
                "expected '{}' at byte {}",
                c as char, self.pos
            )))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, BaselineError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(BaselineError::Parse("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(BaselineError::Parse("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    BaselineError::Parse("bad \\u escape".into())
                                })?;
                            self.pos += 4;
                            out.push(hex);
                        }
                        other => {
                            return Err(BaselineError::Parse(format!(
                                "unsupported escape '\\{}'",
                                other as char
                            )));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| BaselineError::Parse("invalid UTF-8".into()))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn key(&mut self, expected: &str) -> Result<(), BaselineError> {
        let k = self.string()?;
        if k != expected {
            return Err(BaselineError::Parse(format!(
                "expected key \"{expected}\", found \"{k}\""
            )));
        }
        self.expect(b':')
    }
}

/// Parses a baseline document and verifies it is byte-canonical.
///
/// # Errors
///
/// [`BaselineError::Parse`] on malformed input, or
/// [`BaselineError::NotCanonical`] when the bytes differ from the
/// canonical rendering of what they parse to.
pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    r.expect(b'{')?;
    r.key("version")?;
    r.skip_ws();
    let start = r.pos;
    while r.bytes.get(r.pos).is_some_and(u8::is_ascii_digit) {
        r.pos += 1;
    }
    let version: u32 = std::str::from_utf8(&r.bytes[start..r.pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| BaselineError::Parse("bad version number".into()))?;
    if version != 1 {
        return Err(BaselineError::Parse(format!(
            "unsupported baseline version {version}"
        )));
    }
    r.expect(b',')?;
    r.key("findings")?;
    r.expect(b'[')?;
    let mut entries = Vec::new();
    if r.peek() != Some(b']') {
        loop {
            r.expect(b'{')?;
            r.key("fingerprint")?;
            let fingerprint = r.string()?;
            r.expect(b',')?;
            r.key("rule")?;
            let rule = r.string()?;
            r.expect(b',')?;
            r.key("path")?;
            let path = r.string()?;
            r.expect(b',')?;
            r.key("note")?;
            let note = r.string()?;
            r.expect(b'}')?;
            entries.push(BaselineEntry {
                fingerprint,
                rule,
                path,
                note,
            });
            match r.peek() {
                Some(b',') => {
                    r.pos += 1;
                }
                _ => break,
            }
        }
    }
    r.expect(b']')?;
    r.expect(b'}')?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(BaselineError::Parse("trailing bytes after document".into()));
    }
    let baseline = Baseline { entries };
    if render(&baseline) != text {
        return Err(BaselineError::NotCanonical);
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding(rule: &str, path: &str, fp: &str) -> Finding {
        Finding {
            rule: rule.into(),
            path: path.into(),
            line: 1,
            message: "m".into(),
            severity: Severity::Error,
            fingerprint: fp.into(),
        }
    }

    #[test]
    fn fingerprints_are_stable_and_ordinal_sensitive() {
        let a = fingerprint("panic-path", "crates/x.rs", "xs[0]", 0);
        let b = fingerprint("panic-path", "crates/x.rs", "xs[0]", 0);
        let c = fingerprint("panic-path", "crates/x.rs", "xs[0]", 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn round_trips_canonically() {
        let base = Baseline::from_findings(&[
            finding("panic-path", "crates/a.rs", "00000000000000aa"),
            finding("lock-discipline", "crates/b.rs", "0000000000000001"),
        ]);
        let text = render(&base);
        let parsed = parse(&text).expect("canonical parses");
        assert_eq!(parsed, base);
        assert_eq!(render(&parsed), text);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let text = render(&Baseline::default());
        assert_eq!(parse(&text).expect("parses"), Baseline::default());
    }

    #[test]
    fn non_canonical_bytes_are_rejected() {
        let base = Baseline::from_findings(&[finding("panic-path", "a.rs", "ab")]);
        let mut text = render(&base);
        text.push('\n');
        assert_eq!(parse(&text), Err(BaselineError::NotCanonical));
    }

    #[test]
    fn malformed_documents_are_parse_errors() {
        assert!(matches!(parse("{"), Err(BaselineError::Parse(_))));
        assert!(matches!(
            parse("{\"version\": 2, \"findings\": []}"),
            Err(BaselineError::Parse(_))
        ));
    }
}
