#![forbid(unsafe_code)]
//! `abonn-lint` — a determinism & soundness static-analysis pass over the
//! workspace's Rust sources.
//!
//! The reproduction's north-star invariant is that verdicts, stats, and
//! every persisted report byte are a pure function of `(scale, seed)` —
//! independent of wall clock, thread count, cache mode, and machine.
//! PRs 1–3 enforce that *dynamically* (report diffs in `scripts/ci.sh`,
//! the differential fuzzer); this crate enforces it *statically*, at the
//! source level, so a regression is caught the moment it is written
//! rather than the first time it happens to change a byte.
//!
//! Three pieces:
//!
//! * [`lexer`] — a comment-, string- and char-literal-aware scanner, so
//!   rules only ever fire on code (never on `"HashMap"` in a string or
//!   `Instant::now` in a doc comment) while marker comments
//!   (`// SAFETY:`, `// lint: allow(...)`) are still found.
//! * [`rules`] — the rule set (see [`rules::default_rules`]), each
//!   scoped to the paths where its invariant applies and carrying an
//!   audited file allowlist where one exists.
//! * [`report`] — deterministic human-readable and JSON renderings.
//!
//! # Suppressions
//!
//! A finding is suppressed by an inline marker comment
//!
//! ```text
//! // lint: allow(<rule>, <why this specific site is sound>)
//! ```
//!
//! placed either at the end of the offending line or on its own line
//! directly above (blank and comment-only lines in between are skipped).
//! The reason is mandatory — it is the audit trail — and markers with a
//! missing reason or an unknown rule name are themselves findings under
//! the [`rules::SUPPRESSION_SYNTAX`] meta-rule.
//!
//! # Scope
//!
//! [`lint_workspace`] scans `crates/`, `src/`, `tests/`, and `examples/`
//! under the workspace root. `compat/` is deliberately excluded: the
//! shims there vendor external crates' APIs (e.g. the `criterion`
//! stand-in must read the wall clock — benchmarking is its job), so the
//! repo's own invariants do not apply to them.

pub mod baseline;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod rules;
pub mod syntax;

use baseline::{Baseline, BaselineEntry};
use lexer::classify;
use rules::{default_rules, Finding, Rule, Severity, SourceFile, SUPPRESSION_SYNTAX};
use std::path::{Path, PathBuf};

/// A `lint: allow(...)` marker that matched (and silenced) a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule being allowed.
    pub rule: String,
    /// Workspace-relative path of the marker.
    pub path: String,
    /// 1-based line the marker applies to (the code line, not the
    /// comment line).
    pub line: usize,
    /// The mandatory justification text.
    pub reason: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survive suppression filtering.
    pub findings: Vec<Finding>,
    /// Findings silenced by a `lint: allow(...)` marker.
    pub suppressed: Vec<Suppression>,
}

/// Result of linting a whole tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Active findings, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Matched suppressions, sorted by `(path, line, rule)`.
    pub suppressed: Vec<Suppression>,
    /// Findings grandfathered by the baseline (see [`apply_baseline`]),
    /// sorted by `(path, line, rule)`.
    pub baselined: Vec<Finding>,
    /// Baseline entries whose fingerprint matched nothing: the finding
    /// was fixed, so the entry should be pruned. Reported, non-failing.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the tree is clean (no active non-baselined findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Moves baselined findings out of `report.findings` into
/// `report.baselined`, and records baseline entries that no longer
/// match anything as stale. The gate afterwards is simply
/// [`LintReport::is_clean`].
pub fn apply_baseline(report: &mut LintReport, baseline: &Baseline) {
    let findings = std::mem::take(&mut report.findings);
    for f in findings {
        if baseline.contains(&f.fingerprint) {
            report.baselined.push(f);
        } else {
            report.findings.push(f);
        }
    }
    report.stale_baseline = baseline
        .entries
        .iter()
        .filter(|e| {
            !report
                .baselined
                .iter()
                .any(|f| f.fingerprint == e.fingerprint)
        })
        .cloned()
        .collect();
}

/// A parsed `lint: allow(<rule>, <reason>)` marker.
struct AllowMarker {
    rule: String,
    reason: String,
    /// 1-based line the marker suppresses.
    target_line: usize,
}

/// Is `s` a plausible rule name (kebab-case ASCII)? Anything else after
/// `lint: allow(` is prose *mentioning* the marker, not a marker.
fn is_rule_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Index of the `)` closing the marker whose `(` was just consumed,
/// tolerating balanced parentheses inside the reason text.
fn closing_paren(body: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts every `lint: allow(...)` marker from the classified lines.
/// Malformed markers become findings.
fn collect_markers(
    path: &str,
    lines: &[lexer::SourceLine],
    findings: &mut Vec<Finding>,
) -> Vec<AllowMarker> {
    let mut markers = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            let body = &rest[pos + "lint: allow(".len()..];
            rest = body;
            // Prose like "a `lint: allow(...)` marker" must not parse as
            // a marker: the rule segment has to look like a rule name.
            let seg_end = body.find([',', ')']).unwrap_or(body.len());
            if !is_rule_name(body[..seg_end].trim()) {
                continue;
            }
            let Some(close) = closing_paren(body) else {
                findings.push(Finding {
                    rule: SUPPRESSION_SYNTAX.to_string(),
                    path: path.to_string(),
                    line: idx + 1,
                    message: "unterminated `lint: allow(` marker".to_string(),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                });
                continue;
            };
            let inner = &body[..close];
            let Some((rule, reason)) = inner.split_once(',') else {
                findings.push(Finding {
                    rule: SUPPRESSION_SYNTAX.to_string(),
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`lint: allow({inner})` is missing its mandatory reason: use \
                         `lint: allow(rule-name, why this site is sound)`"
                    ),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                });
                continue;
            };
            let (rule, reason) = (rule.trim().to_string(), reason.trim().to_string());
            if reason.is_empty() {
                findings.push(Finding {
                    rule: SUPPRESSION_SYNTAX.to_string(),
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!("`lint: allow({rule}, )` has an empty reason"),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                });
                continue;
            }
            // The marker guards its own line if it carries code, else the
            // next line that does.
            let target = if line.has_code() {
                Some(idx)
            } else {
                (idx + 1..lines.len()).find(|&j| lines[j].has_code())
            };
            let Some(target) = target else {
                findings.push(Finding {
                    rule: SUPPRESSION_SYNTAX.to_string(),
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!("`lint: allow({rule}, ...)` guards no code line"),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                });
                continue;
            };
            markers.push(AllowMarker {
                rule,
                reason,
                target_line: target + 1,
            });
        }
    }
    markers
}

/// Lints one file's text against `rules`.
#[must_use]
pub fn lint_text(path: &str, text: &str, rules: &[Rule]) -> FileOutcome {
    let lines = classify(text);
    let index = syntax::index(&lines);
    let file = SourceFile {
        path,
        lines: &lines,
        syntax: &index,
    };
    let mut raw = Vec::new();
    for rule in rules {
        if rule.in_scope(path) {
            rule.check(&file, &mut raw);
        }
    }
    let mut findings = Vec::new();
    let markers = collect_markers(path, &lines, &mut findings);
    let known: Vec<&str> = rules.iter().map(|r| r.name).collect();
    for m in &markers {
        if m.rule != SUPPRESSION_SYNTAX && !known.contains(&m.rule.as_str()) {
            findings.push(Finding {
                rule: SUPPRESSION_SYNTAX.to_string(),
                path: path.to_string(),
                line: m.target_line,
                message: format!(
                    "`lint: allow({}, ...)` names an unknown rule (known: {})",
                    m.rule,
                    known.join(", ")
                ),
                severity: Severity::Error,
                fingerprint: String::new(),
            });
        }
    }
    let mut suppressed = Vec::new();
    for f in raw {
        let hit = markers
            .iter()
            .find(|m| m.rule == f.rule && m.target_line == f.line);
        match hit {
            Some(m) => suppressed.push(Suppression {
                rule: f.rule,
                path: f.path,
                line: f.line,
                reason: m.reason.clone(),
            }),
            None => findings.push(f),
        }
    }
    assign_fingerprints(&mut findings, &lines);
    FileOutcome {
        findings,
        suppressed,
    }
}

/// Fills in each active finding's content fingerprint: a hash of
/// `(rule, path, trimmed code line, ordinal)`, where the ordinal counts
/// earlier same-file findings with the same `(rule, content)` key so
/// repeated identical lines stay distinguishable. Line numbers are not
/// hashed — baselines survive unrelated edits above a finding.
fn assign_fingerprints(findings: &mut [Finding], lines: &[lexer::SourceLine]) {
    findings.sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    let mut seen: Vec<(String, String)> = Vec::new();
    for f in findings.iter_mut() {
        let content = lines
            .get(f.line - 1)
            .map(|l| l.code.trim())
            .unwrap_or_default()
            .to_string();
        let key = (f.rule.clone(), content);
        let ordinal = seen.iter().filter(|k| **k == key).count();
        f.fingerprint = baseline::fingerprint(&f.rule, &f.path, &key.1, ordinal);
        seen.push(key);
    }
}

/// Lints one file's text against the default rule set.
#[must_use]
pub fn lint_source(path: &str, text: &str) -> FileOutcome {
    lint_text(path, text, &default_rules())
}

/// The root directories scanned by [`lint_workspace`], relative to the
/// workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Recursively collects `.rs` files under `dir`, as workspace-relative
/// `/`-separated paths, sorted for deterministic reports.
fn collect_rs_files(root: &Path, rel: &str, out: &mut Vec<String>) -> std::io::Result<()> {
    let dir = root.join(rel);
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(&dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    entries.sort();
    for name in entries {
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let child_rel = format!("{rel}/{name}");
        let child = root.join(&child_rel);
        if child.is_dir() {
            collect_rs_files(root, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under the workspace `root`'s scan roots with
/// the default rules.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    lint_tree(root, &default_rules())
}

/// Lints every `.rs` file under `root`'s scan roots against `rules`.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal or file reads.
pub fn lint_tree(root: &Path, rules: &[Rule]) -> std::io::Result<LintReport> {
    let mut paths = Vec::new();
    for scan_root in SCAN_ROOTS {
        collect_rs_files(root, scan_root, &mut paths)?;
    }
    let mut report = LintReport::default();
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let outcome = lint_text(&rel, &text, rules);
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`; falls back to `start` itself.
#[must_use]
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_require_reasons() {
        let out = lint_source("crates/core/src/x.rs", "// lint: allow(relaxed-atomics)\nlet a = 1;\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, SUPPRESSION_SYNTAX);
    }

    #[test]
    fn markers_reject_unknown_rules() {
        let out = lint_source(
            "crates/core/src/x.rs",
            "// lint: allow(no-such-rule, because reasons)\nlet a = 1;\n",
        );
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn trailing_marker_guards_its_own_line() {
        let src = "use std::time::Instant;\n\
                   let t = Instant::now(); // lint: allow(wall-clock-in-engine, test fixture)\n";
        let out = lint_source("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].reason, "test fixture");
    }

    #[test]
    fn standalone_marker_guards_next_code_line() {
        let src = "// lint: allow(wall-clock-in-engine, test fixture)\n\
                   // another comment between marker and code\n\
                   let t = Instant::now();\n";
        let out = lint_source("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn marker_for_wrong_rule_does_not_suppress() {
        let src = "let t = Instant::now(); // lint: allow(relaxed-atomics, wrong rule)\n";
        let out = lint_source("crates/core/src/x.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "wall-clock-in-engine");
    }

    #[test]
    fn workspace_root_discovery_finds_manifest() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
