//! The rule set: each rule encodes one workspace invariant from
//! `DESIGN.md` §5e, scoped to the paths where the invariant applies.

use crate::lexer::{is_ident, SourceLine};
use crate::passes;
use crate::syntax::FileIndex;

/// How bad a finding is. Both severities fail the CI gate when not
/// baselined; the tier feeds reports and the SARIF `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Should-fix: the invariant violation is not locally provable but
    /// may be sound; type the code so the pass can see it, or allow.
    Warning,
    /// Must-fix: a proven invariant violation.
    Error,
}

impl Severity {
    /// Lowercase name, as used in reports, SARIF, and baselines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A finding produced by a rule (before suppression filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, matches the `lint: allow(...)` argument).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Severity tier.
    pub severity: Severity,
    /// Stable content fingerprint (filled in by the engine after
    /// suppression filtering; empty inside rule checks).
    pub fingerprint: String,
}

/// A classified source file handed to rule checks.
pub struct SourceFile<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Lexed lines (see [`crate::lexer::classify`]).
    pub lines: &'a [SourceLine],
    /// The brace-matched syntax index (see [`crate::syntax::index`]).
    pub syntax: &'a FileIndex,
}

/// One static-analysis rule.
pub struct Rule {
    /// Kebab-case name used in reports and `lint: allow(...)`.
    pub name: &'static str,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// Path prefixes (or exact `.rs` paths) the rule applies to; empty
    /// means the whole scanned tree.
    pub scopes: &'static [&'static str],
    /// Exact paths fully exempt from the rule (audited allowlist).
    pub allow_files: &'static [&'static str],
    /// The severity the rule reports at (the float pass downgrades
    /// locally-unprovable sites to [`Severity::Warning`] per finding).
    pub severity: Severity,
    check: fn(&SourceFile<'_>, &mut Vec<Finding>),
}

impl Rule {
    /// Does the rule apply to `path`?
    #[must_use]
    pub fn in_scope(&self, path: &str) -> bool {
        if self.allow_files.contains(&path) {
            return false;
        }
        self.scopes.is_empty()
            || self
                .scopes
                .iter()
                .any(|s| if s.ends_with(".rs") { path == *s } else { path.starts_with(s) })
    }

    /// Runs the rule over `file`, appending findings.
    pub fn check(&self, file: &SourceFile<'_>, out: &mut Vec<Finding>) {
        (self.check)(file, out);
    }
}

/// The directories whose code decides verdicts, bounds, or certificates:
/// anything here must be a pure function of (problem, scale, seed).
const ENGINE_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/bound/src/",
    "crates/check/src/",
    "crates/lp/src/",
    "crates/nn/src/",
    "crates/tensor/src/",
    "crates/serve/src/",
];

/// Paths that build or persist reports, certificates, or stats: their
/// iteration order leaks into emitted bytes, so it must be total.
const ORDERED_OUTPUT_PATHS: &[&str] = &[
    "crates/bench/src/",
    "crates/core/src/certificate.rs",
    "crates/core/src/driver.rs",
    "crates/check/src/",
    "crates/serve/src/",
];

/// Files audited to contain the workspace's only `unsafe` blocks.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/core/src/pool.rs"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// open (generous enough for a thorough multi-line argument).
const SAFETY_WINDOW: usize = 16;

/// The full rule set, in the order findings are reported.
#[must_use]
pub fn default_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "wall-clock-in-engine",
            summary: "Instant::now/SystemTime forbidden in verdict-path crates: \
                      verdicts and stats must be a pure function of (scale, seed)",
            scopes: ENGINE_SRC,
            allow_files: &[],
            severity: Severity::Error,
            check: check_wall_clock,
        },
        Rule {
            name: "unordered-iteration",
            summary: "HashMap/HashSet forbidden in report/certificate/stats paths: \
                      randomized iteration order leaks into persisted bytes",
            scopes: ORDERED_OUTPUT_PATHS,
            allow_files: &[],
            severity: Severity::Error,
            check: check_unordered_iteration,
        },
        Rule {
            name: "unsafe-outside-allowlist",
            summary: "unsafe only in allowlisted files, and always under a // SAFETY: comment",
            scopes: &[],
            allow_files: &[],
            severity: Severity::Error,
            check: check_unsafe,
        },
        Rule {
            name: "relaxed-atomics",
            summary: "Ordering::Relaxed only on justified monotonic counters",
            scopes: &["crates/"],
            allow_files: &[],
            severity: Severity::Error,
            check: check_relaxed_atomics,
        },
        Rule {
            name: "persisted-wall-field",
            summary: "time-like fields of serde-derived structs must be #[serde(skip)]",
            scopes: &[],
            allow_files: &[],
            severity: Severity::Error,
            check: check_persisted_wall_field,
        },
        Rule {
            name: "nondeterministic-api",
            summary: "OS-entropy RNGs and machine-topology APIs forbidden in verdict paths",
            scopes: ENGINE_SRC,
            allow_files: &[],
            severity: Severity::Error,
            check: check_nondeterministic_api,
        },
        Rule {
            name: "panic-path",
            summary: "no unwrap/expect/panicking macros/direct indexing in wire-facing \
                      code: daemons return structured errors, they do not unwind",
            scopes: passes::PANIC_PATH_SCOPE,
            allow_files: &[],
            severity: Severity::Error,
            check: passes::check_panic_path,
        },
        Rule {
            name: "lock-discipline",
            summary: "a Mutex/RwLock guard must not be live across blocking I/O, \
                      waits, or pool fan-out: render under the lock, then block",
            scopes: &["crates/"],
            allow_files: &[],
            severity: Severity::Error,
            check: passes::check_lock_discipline,
        },
        Rule {
            name: "float-reduction-order",
            summary: "f32/f64 sum/product/fold need a totally ordered source: \
                      float addition is not associative, bytes must not drift",
            scopes: passes::FLOAT_ORDER_SCOPE,
            allow_files: &[],
            severity: Severity::Error,
            check: passes::check_float_reduction_order,
        },
    ]
}

/// The meta-rule name for malformed or unknown `lint: allow(...)` markers
/// (emitted by the engine, not by a check function).
pub const SUPPRESSION_SYNTAX: &str = "suppression-syntax";

/// Finds `needle` in `code` at identifier boundaries (the chars adjacent
/// to the match must not be identifier chars). `needle` may itself span
/// `::`, e.g. `Instant::now`.
#[must_use]
pub fn has_token(code: &str, needle: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let pat: Vec<char> = needle.chars().collect();
    if pat.is_empty() || chars.len() < pat.len() {
        return false;
    }
    for start in 0..=(chars.len() - pat.len()) {
        if chars[start..start + pat.len()] != pat[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident(chars[start - 1]);
        let end = start + pat.len();
        let after_ok = end >= chars.len() || !is_ident(chars[end]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

fn token_rule(
    file: &SourceFile<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    needles: &[&str],
    why: &str,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        for needle in needles {
            if has_token(&line.code, needle) {
                out.push(Finding {
                    rule: rule.to_string(),
                    path: file.path.to_string(),
                    line: idx + 1,
                    message: format!("`{needle}` {why}"),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                });
            }
        }
    }
}

fn check_wall_clock(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    token_rule(
        file,
        out,
        "wall-clock-in-engine",
        &["Instant::now", "SystemTime"],
        "reads the wall clock inside an engine crate; verdicts, stats, and \
         certificates must be a pure function of (scale, seed)",
    );
}

fn check_unordered_iteration(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    token_rule(
        file,
        out,
        "unordered-iteration",
        &["HashMap", "HashSet"],
        "iterates in randomized per-process order; use BTreeMap/BTreeSet (or a \
         sorted drain) so report/certificate/stats bytes are reproducible",
    );
}

fn check_unsafe(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&file.path);
    for (idx, line) in file.lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if !allowlisted {
            out.push(Finding {
                rule: "unsafe-outside-allowlist".to_string(),
                path: file.path.to_string(),
                line: idx + 1,
                message: "`unsafe` outside the audited allowlist (crates/core/src/pool.rs); \
                          move the code there or extend the allowlist with an audit"
                    .to_string(),
                severity: Severity::Error,
                fingerprint: String::new(),
            });
            continue;
        }
        let safety_nearby = file.lines[idx.saturating_sub(SAFETY_WINDOW)..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY:"));
        if !safety_nearby {
            out.push(Finding {
                rule: "unsafe-outside-allowlist".to_string(),
                path: file.path.to_string(),
                line: idx + 1,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment in the preceding \
                     {SAFETY_WINDOW} lines stating the invariant that makes it sound"
                ),
                severity: Severity::Error,
                fingerprint: String::new(),
            });
        }
    }
}

fn check_relaxed_atomics(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    token_rule(
        file,
        out,
        "relaxed-atomics",
        &["Ordering::Relaxed"],
        "permits unsynchronised reordering; only monotonic counters whose value \
         never gates a verdict may use it, under a justifying `lint: allow`",
    );
}

fn check_nondeterministic_api(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    token_rule(
        file,
        out,
        "nondeterministic-api",
        &[
            "available_parallelism",
            "thread_rng",
            "from_entropy",
            "from_os_rng",
            "OsRng",
        ],
        "injects machine state (OS entropy or CPU topology) into a verdict path; \
         seed every RNG from the run seed and take lane counts as parameters",
    );
}

/// Field names that smell like wall-clock measurements.
fn time_like(name: &str) -> bool {
    name.starts_with("wall")
        || name.starts_with("elapsed")
        || name.ends_with("_secs")
        || name.ends_with("_ms")
        || name.ends_with("_millis")
        || name.ends_with("_micros")
        || name.ends_with("_nanos")
}

/// Extracts `name` from a struct-field line like `pub wall_secs: f64,`.
fn field_name(code: &str) -> Option<&str> {
    let mut rest = code.trim_start();
    if let Some(r) = rest.strip_prefix("pub") {
        // `pub`, `pub(crate)`, `pub(super)`, ... — but not `publish_at`.
        if !r.starts_with(|c: char| is_ident(c)) {
            rest = r.trim_start();
            if let Some(close) =
                rest.strip_prefix('(').and_then(|r| r.find(')').map(|i| &r[i + 1..]))
            {
                rest = close.trim_start();
            }
        }
    }
    let end = rest.find(|c: char| !is_ident(c))?;
    let name = &rest[..end];
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    rest[end..].trim_start().starts_with(':').then_some(name)
}

/// State machine for `persisted-wall-field`: find `#[derive(.. Serialize ..)]`
/// structs and require `#[serde(skip)]` on every time-like named field.
fn check_persisted_wall_field(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let mut derive_serialize = false;
    let mut in_struct = false;
    let mut depth = 0isize;
    let mut field_attrs = String::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.trim();
        if !in_struct {
            if code.starts_with("#[") && code.contains("derive") && has_token(code, "Serialize") {
                derive_serialize = true;
                continue;
            }
            if derive_serialize && has_token(code, "struct") {
                if code.contains(';') && !code.contains('{') {
                    // Unit or tuple struct: no named fields to check.
                    derive_serialize = false;
                    continue;
                }
                in_struct = true;
                derive_serialize = false;
                depth = brace_delta(code);
                field_attrs.clear();
                continue;
            }
            if !code.is_empty() && !code.starts_with("#[") && !code.starts_with("#![") {
                // The derive applied to an enum/union or something else.
                derive_serialize = false;
            }
            continue;
        }
        // Inside a serde struct body.
        if depth == 0 {
            // `struct Foo {` spilled the `{` to a later line.
            depth += brace_delta(code);
            continue;
        }
        if depth == 1 {
            if code.starts_with("#[") {
                field_attrs.push_str(code);
                depth += brace_delta(code);
                continue;
            }
            if let Some(name) = field_name(code) {
                let skipped = field_attrs.contains("serde") && field_attrs.contains("skip");
                if time_like(name) && !skipped {
                    out.push(Finding {
                        rule: "persisted-wall-field".to_string(),
                        path: file.path.to_string(),
                        line: idx + 1,
                        message: format!(
                            "serde-derived struct persists time-like field `{name}`; mark it \
                             `#[serde(skip)]` so artefacts stay machine- and load-independent"
                        ),
                        severity: Severity::Error,
                        fingerprint: String::new(),
                    });
                }
            }
            if !code.is_empty() {
                field_attrs.clear();
            }
        }
        depth += brace_delta(code);
        if depth <= 0 {
            in_struct = false;
        }
    }
}

/// Net brace nesting change of a code line.
fn brace_delta(code: &str) -> isize {
    let mut d = 0;
    for c in code.chars() {
        if c == '{' {
            d += 1;
        } else if c == '}' {
            d -= 1;
        }
    }
    d
}
