//! The syntax-aware passes: `panic-path`, `lock-discipline`, and
//! `float-reduction-order`.
//!
//! Unlike the token rules in [`crate::rules`], these walk the
//! [`crate::syntax::FileIndex`] — the brace-matched block tree, the
//! binding table, and statement/chain extents — so they can reason about
//! scopes ("is this guard still live here?"), test-ness ("is this
//! `unwrap` in `#[cfg(test)]` code?"), and data flow one hop deep
//! ("what sequence heads this `.sum()` chain, and is its order locally
//! provable?").
//!
//! # Pass semantics
//!
//! * **panic-path** (error): wire-facing code must never panic — a
//!   panicking daemon thread drops every queued response on that
//!   connection. In scope files, non-test code may not call
//!   `.unwrap()`/`.expect()` (or the `_err` variants), invoke a
//!   panicking macro (`panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`/`assert_eq!`/`assert_ne!`), or index
//!   with `[...]` (slice/array indexing panics on out-of-range; use
//!   `.get()` and return a structured error). Fixed-arity slice
//!   patterns over wire data are flagged at warning severity.
//!   `debug_assert!` is deliberately exempt: it compiles out of release
//!   daemons.
//! * **lock-discipline** (error): a `Mutex`/`RwLock` guard binding whose
//!   live scope spans a blocking call — socket or file I/O, condvar or
//!   channel waits, a worker-pool fan-out — serialises every other
//!   thread behind that I/O. This statically pins the serve daemon's
//!   "lock held per wave, never across socket reads" rule: render under
//!   the lock, drop the guard, then do the I/O.
//! * **float-reduction-order** (error/warning): float addition is not
//!   associative, so the byte-identity invariant requires every
//!   `f32`/`f64` `.sum()`/`.product()`/order-sensitive `fold` to run
//!   over a sequence with a total, machine-independent order. A
//!   reduction over a provably unordered source (`HashMap`/`HashSet`,
//!   rayon-style `par_iter`) is an error; one whose source order cannot
//!   be proven locally (an untyped binding, a field or call-result
//!   receiver) is a warning — type the binding (`let xs: Vec<f64> = …`)
//!   or allow with a proof naming the order. Min/max-combining folds
//!   are exempt (order-insensitive), reductions with no float
//!   evidence in the statement (or the enclosing block header) are
//!   skipped, and test code is out of scope (assertions compare with
//!   tolerances and never reach persisted bytes).

use crate::rules::{Finding, Severity, SourceFile};
use crate::syntax::{is_keyword, Binding, FileIndex, Token, TokenKind};

/// Files whose code runs on the daemon's wire paths — request decode,
/// scheduling, response encode, persistence, and the VNN-LIB property
/// parser fed with client-controlled bytes — plus the tensor hot-kernel
/// module, where a panicking branch would also defeat the
/// bounds-check-free loop shapes the kernels rely on.
pub const PANIC_PATH_SCOPE: &[&str] = &[
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/scheduler.rs",
    "crates/serve/src/persist.rs",
    "crates/vnnlib/src/",
    "crates/tensor/src/kernels.rs",
];

/// Crates whose float arithmetic decides verdicts, bounds, or persisted
/// stats: reductions there must have a totally ordered source.
pub const FLOAT_ORDER_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/bound/src/",
    "crates/check/src/",
    "crates/lp/src/",
    "crates/nn/src/",
    "crates/tensor/src/",
    "crates/serve/src/",
    "crates/data/src/",
    "crates/vnnlib/src/",
];

/// Method names (receiver calls, `.name(`) that panic on `None`/`Err`.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that unconditionally (or assertion-conditionally) panic.
const PANICKY_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method calls that block the calling thread on I/O or synchronisation.
/// Includes this workspace's own wrappers (`write_snapshot`,
/// `load_snapshot`) so the invariant survives refactors that hide the
/// `std` call one level down.
const BLOCKING_METHODS: &[&str] = &[
    "read_until",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "write_fmt",
    "flush",
    "accept",
    "connect",
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "write_snapshot",
    "load_snapshot",
];

/// Free functions (workspace I/O wrappers and thread blocking) that
/// block regardless of receiver syntax.
const BLOCKING_CALLS: &[&str] = &[
    "save_store",
    "write_stats",
    "read_wave",
    "write_responses",
    "sleep",
    "park",
];

/// `Type::method` path calls that perform file/socket I/O.
const BLOCKING_PATHS: &[(&str, &[&str])] = &[
    (
        "fs",
        &[
            "write",
            "read",
            "read_to_string",
            "read_dir",
            "create_dir_all",
            "rename",
            "remove_file",
            "copy",
            "metadata",
        ],
    ),
    ("File", &["open", "create", "create_new", "options"]),
    ("TcpStream", &["connect"]),
    ("TcpListener", &["bind"]),
];

/// Worker-pool fan-out methods: the fan-out blocks until every lane
/// finishes, so holding a lock across it stalls the whole pool's
/// clients. Matched only when the receiver identifier mentions "pool".
const POOL_FANOUT: &[&str] = &["map", "join2", "broadcast"];

/// Combiner identifiers that make a `fold` order-insensitive.
const ORDER_FREE_COMBINERS: &[&str] = &["min", "max", "minimum", "maximum", "fmin", "fmax"];

/// Identifiers that prove the reduction source iterates in unordered
/// (per-process randomized or scheduler-dependent) order.
const UNORDERED_SOURCES: &[&str] = &[
    "HashMap",
    "HashSet",
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
];

fn tok(idx: &FileIndex, i: usize) -> Option<&Token> {
    idx.tokens.get(i)
}

/// Is token `i` an identifier immediately preceded by `.` (a method
/// position)?
fn is_method_pos(idx: &FileIndex, i: usize) -> bool {
    i > 0 && idx.tokens[i - 1].is_punct('.')
}

/// Is token `i` followed by a call opener — `(` directly, or via a
/// `::<...>` turbofish?
fn is_called(idx: &FileIndex, i: usize) -> bool {
    match tok(idx, i + 1) {
        Some(t) if t.is_punct('(') => true,
        Some(t) if t.is_punct(':') => tok(idx, i + 2).is_some_and(|t| t.is_punct(':')),
        _ => false,
    }
}

/// The panic-path pass.
pub fn check_panic_path(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let idx = file.syntax;
    let mut push = |line: usize, severity: Severity, message: String| {
        out.push(Finding {
            rule: "panic-path".to_string(),
            path: file.path.to_string(),
            line,
            message,
            severity,
            fingerprint: String::new(),
        });
    };
    for (i, t) in idx.tokens.iter().enumerate() {
        if idx.in_test(i) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let name = t.text.as_str();
                if PANICKY_METHODS.contains(&name) && is_method_pos(idx, i) && is_called(idx, i) {
                    push(
                        t.line,
                        Severity::Error,
                        format!(
                            "`.{name}()` can panic on the wire path; match the \
                             Option/Result and return a structured error response"
                        ),
                    );
                } else if PANICKY_MACROS.contains(&name)
                    && tok(idx, i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    push(
                        t.line,
                        Severity::Error,
                        format!(
                            "`{name}!` panics on the wire path; daemons must return \
                             structured errors, not unwind"
                        ),
                    );
                }
            }
            TokenKind::Punct('[') => {
                let indexing = i > 0
                    && match &idx.tokens[i - 1].kind {
                        TokenKind::Ident => !is_keyword(&idx.tokens[i - 1].text),
                        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                        _ => false,
                    };
                if indexing {
                    push(
                        t.line,
                        Severity::Error,
                        "direct `[...]` indexing panics when out of range; use \
                         `.get(..)` and return a structured error"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    for b in &idx.bindings {
        if b.slice_pattern && !b.refutable && !idx.blocks[b.scope].is_test {
            push(
                b.line,
                Severity::Warning,
                "fixed-arity slice pattern destructures wire-path data; prefer \
                 `.get(..)`/iterators (refutable `let ... else` forms are \
                 exempt: a mismatch diverts instead of panicking)"
                    .to_string(),
            );
        }
    }
}

/// Does the binding's initializer acquire a lock guard?
fn is_guard_binding(idx: &FileIndex, b: &Binding) -> bool {
    let (s, e) = b.init;
    let init = &idx.tokens[s.min(idx.tokens.len())..e.min(idx.tokens.len())];
    let has_method = |name: &str| {
        init.iter().enumerate().any(|(j, t)| {
            t.is_ident(name)
                && j > 0
                && init[j - 1].is_punct('.')
                && init.get(j + 1).is_some_and(|t| t.is_punct('('))
                // `stdin().lock()`/`stdout().lock()` hand out stdio
                // handle locks, which exist precisely to batch I/O —
                // not contended Mutex guards.
                && !(j >= 2
                    && matches!(
                        init[j - 2].text.as_str(),
                        "stdin" | "stdout" | "stderr"
                    ))
                && !(j >= 4
                    && init[j - 2].is_punct(')')
                    && matches!(
                        init[j - 4].text.as_str(),
                        "stdin" | "stdout" | "stderr"
                    ))
        })
    };
    if has_method("lock") {
        return true;
    }
    // `.read()`/`.write()` only count when RwLock is named nearby —
    // otherwise they collide with `io::Read`/`io::Write`.
    let names_rwlock = init.iter().any(|t| t.is_ident("RwLock"));
    if names_rwlock && (has_method("read") || has_method("write")) {
        return true;
    }
    // Guard-typed parameters and bindings.
    if let Some((ts, te)) = b.ty {
        let ty = &idx.tokens[ts.min(idx.tokens.len())..te.min(idx.tokens.len())];
        return ty.iter().any(|t| {
            t.is_ident("MutexGuard")
                || t.is_ident("RwLockReadGuard")
                || t.is_ident("RwLockWriteGuard")
        });
    }
    false
}

/// Describes the blocking call at token `i`, if any.
fn blocking_call(idx: &FileIndex, i: usize) -> Option<String> {
    let t = &idx.tokens[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let name = t.text.as_str();
    let called = tok(idx, i + 1).is_some_and(|n| n.is_punct('('));
    if !called {
        return None;
    }
    if is_method_pos(idx, i) {
        if BLOCKING_METHODS.contains(&name) {
            return Some(format!(".{name}()"));
        }
        if POOL_FANOUT.contains(&name) && i >= 2 {
            if let TokenKind::Ident = idx.tokens[i - 2].kind {
                if idx.tokens[i - 2].text.to_ascii_lowercase().contains("pool") {
                    return Some(format!("{}.{name}()", idx.tokens[i - 2].text));
                }
            }
        }
        return None;
    }
    if BLOCKING_CALLS.contains(&name) {
        return Some(format!("{name}()"));
    }
    // `Type::method(...)` path calls: `name` is the method; look back
    // over `::` for the type/module segment.
    if i >= 3
        && idx.tokens[i - 1].is_punct(':')
        && idx.tokens[i - 2].is_punct(':')
        && idx.tokens[i - 3].kind == TokenKind::Ident
    {
        let seg = idx.tokens[i - 3].text.as_str();
        for (ty, methods) in BLOCKING_PATHS {
            if seg == *ty && methods.contains(&name) {
                return Some(format!("{seg}::{name}()"));
            }
        }
        if seg == "thread" && (name == "sleep" || name == "park") {
            return Some(format!("thread::{name}()"));
        }
    }
    None
}

/// Token index where guard `name` is explicitly dropped inside
/// `(from, to)`, if anywhere.
fn drop_site(idx: &FileIndex, name: &str, from: usize, to: usize) -> Option<usize> {
    (from..to.min(idx.tokens.len())).find(|&j| {
        idx.tokens[j].is_ident("drop")
            && tok(idx, j + 1).is_some_and(|t| t.is_punct('('))
            && tok(idx, j + 2).is_some_and(|t| t.is_ident(name))
            && tok(idx, j + 3).is_some_and(|t| t.is_punct(')'))
    })
}

/// The lock-discipline pass.
pub fn check_lock_discipline(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let idx = file.syntax;
    for b in &idx.bindings {
        if idx.blocks[b.scope].is_test || !is_guard_binding(idx, b) {
            continue;
        }
        let scope_end = idx.blocks[b.scope].close;
        // The guard is live from the end of its initializer to the end
        // of its scope block (or an explicit `drop(guard)`).
        let live_from = b.init.1.max(b.init.0);
        for name in &b.names {
            let live_to = drop_site(idx, name, live_from, scope_end).unwrap_or(scope_end);
            for j in live_from..live_to.min(idx.tokens.len()) {
                if let Some(call) = blocking_call(idx, j) {
                    out.push(Finding {
                        rule: "lock-discipline".to_string(),
                        path: file.path.to_string(),
                        line: idx.tokens[j].line,
                        message: format!(
                            "lock guard `{name}` (acquired line {}) is live across \
                             blocking `{call}`; render under the lock, drop the \
                             guard, then block",
                            b.line
                        ),
                        severity: Severity::Error,
                        fingerprint: String::new(),
                    });
                }
            }
        }
    }
}

/// Float evidence: does the token range mention an f32/f64 type or a
/// float literal?
fn float_evidence(tokens: &[Token]) -> bool {
    tokens.iter().any(|t| match t.kind {
        TokenKind::Ident => t.text == "f32" || t.text == "f64",
        TokenKind::Number { float } => float,
        _ => false,
    })
}

/// Can the chain head's order be proven locally? `head` is the first
/// token of the head expression, `at` the reduction's position.
fn head_provably_ordered(idx: &FileIndex, head: usize, at: usize) -> bool {
    let t = &idx.tokens[head];
    match t.kind {
        // A literal range `(0..n)` or array `[..]` head iterates in
        // index order.
        TokenKind::Punct('(') | TokenKind::Punct('[') => {
            let close = if t.is_punct('(') { ')' } else { ']' };
            let mut depth = 0usize;
            for j in head..at {
                let tj = &idx.tokens[j];
                if tj.kind == t.kind {
                    depth += 1;
                } else if tj.is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if tj.is_punct('.') && tok(idx, j + 1).is_some_and(|n| n.is_punct('.')) {
                    return true; // range expression
                }
            }
            t.is_punct('[')
        }
        TokenKind::Number { .. } => true,
        TokenKind::Ident => {
            if is_keyword(&t.text) {
                return false; // `self.field...` and friends: not local
            }
            let Some(b) = idx.binding_for(&t.text, at) else {
                return false;
            };
            if let Some((ts, te)) = b.ty {
                return idx.tokens[ts.min(idx.tokens.len())..te.min(idx.tokens.len())]
                    .iter()
                    .any(|t| {
                        t.is_punct('[')
                            || t.is_ident("Vec")
                            || t.is_ident("VecDeque")
                            || t.is_ident("BTreeMap")
                            || t.is_ident("BTreeSet")
                    });
            }
            let (s, e) = b.init;
            let init = &idx.tokens[s.min(idx.tokens.len())..e.min(idx.tokens.len())];
            // `vec![...]` and `[...]` literals are ordered.
            init.first().is_some_and(|t| t.is_punct('['))
                || init
                    .windows(2)
                    .any(|w| w[0].is_ident("vec") && w[1].is_punct('!'))
        }
        _ => false,
    }
}

/// The float-reduction-order pass.
pub fn check_float_reduction_order(file: &SourceFile<'_>, out: &mut Vec<Finding>) {
    let idx = file.syntax;
    for (i, t) in idx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let reduction = matches!(name, "sum" | "product" | "fold");
        if !reduction || !is_method_pos(idx, i) || !is_called(idx, i) {
            continue;
        }
        if name == "fold" && fold_is_order_free(idx, i) {
            continue;
        }
        // Test reductions feed assertions with tolerances, not persisted
        // verdict/report bytes; only production arithmetic must carry a
        // provable order.
        if idx.in_test(i) {
            continue;
        }
        let stmt = idx.statement_range(i);
        let stmt_toks = &idx.tokens[stmt.0..stmt.1];
        if !float_evidence(stmt_toks) && !header_float_evidence(idx, i) {
            continue; // integer reduction
        }
        let (head, _) = idx.chain_head(i - 1);
        let mut unordered = stmt_toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && UNORDERED_SOURCES.contains(&t.text.as_str()));
        // The head's binding may carry the unordered type even when the
        // statement itself doesn't name it (`let s: f64 = m.values().sum()`
        // with `m: &HashMap<..>`).
        if !unordered {
            if let TokenKind::Ident = idx.tokens[head].kind {
                if let Some(b) = idx.binding_for(&idx.tokens[head].text, i) {
                    let mut ranges = vec![b.init];
                    if let Some(ty) = b.ty {
                        ranges.push(ty);
                    }
                    unordered = ranges.iter().any(|&(s, e)| {
                        idx.tokens[s.min(idx.tokens.len())..e.min(idx.tokens.len())]
                            .iter()
                            .any(|t| {
                                t.kind == TokenKind::Ident
                                    && UNORDERED_SOURCES.contains(&t.text.as_str())
                            })
                    });
                }
            }
        }
        if unordered {
            out.push(Finding {
                rule: "float-reduction-order".to_string(),
                path: file.path.to_string(),
                line: t.line,
                message: format!(
                    "float `.{name}()` over an unordered source: per-process \
                     iteration order changes the rounding, so verdict/report \
                     bytes diverge; reduce over a totally ordered sequence"
                ),
                severity: Severity::Error,
                fingerprint: String::new(),
            });
            continue;
        }
        if !head_provably_ordered(idx, head, i) {
            out.push(Finding {
                rule: "float-reduction-order".to_string(),
                path: file.path.to_string(),
                line: t.line,
                message: format!(
                    "float `.{name}()` whose source order cannot be proven \
                     locally; bind the sequence with an ordered type (e.g. \
                     `let xs: Vec<f64> = …`) or allow with a proof naming the \
                     iteration order"
                ),
                severity: Severity::Warning,
                fingerprint: String::new(),
            });
        }
    }
}

/// Does the `fold` at token `i` use a min/max-style combiner (order
/// insensitive up to NaN handling)?
fn fold_is_order_free(idx: &FileIndex, i: usize) -> bool {
    // Find the call's `(`: directly after, or after a turbofish.
    let mut j = i + 1;
    if tok(idx, j).is_some_and(|t| t.is_punct(':')) {
        while j < idx.tokens.len() && !idx.tokens[j].is_punct('(') {
            j += 1;
        }
    }
    if !tok(idx, j).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut depth = 0usize;
    for k in j..idx.tokens.len() {
        let t = &idx.tokens[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident && ORDER_FREE_COMBINERS.contains(&t.text.as_str()) {
            return true;
        }
    }
    false
}

/// Float evidence in the enclosing block's header (e.g. a `-> f64 {`
/// closure or fn return type the statement scan cannot see).
fn header_float_evidence(idx: &FileIndex, i: usize) -> bool {
    let block = idx.innermost_block(i);
    let open = idx.blocks[block].open;
    let from = open.saturating_sub(8);
    float_evidence(&idx.tokens[from..open.min(idx.tokens.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::classify;
    use crate::syntax::index;

    fn run(
        path: &str,
        src: &str,
        pass: fn(&SourceFile<'_>, &mut Vec<Finding>),
    ) -> Vec<Finding> {
        let lines = classify(src);
        let syntax = index(&lines);
        let file = SourceFile {
            path,
            lines: &lines,
            syntax: &syntax,
        };
        let mut out = Vec::new();
        pass(&file, &mut out);
        out
    }

    #[test]
    fn panic_path_flags_unwrap_and_indexing() {
        let src = "fn route(xs: &[u8]) -> u8 { let v = parse().unwrap(); xs[0] + v }\n";
        let f = run("crates/serve/src/server.rs", src, check_panic_path);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("unwrap"));
        assert!(f[1].message.contains("indexing"));
    }

    #[test]
    fn panic_path_skips_test_code_and_unwrap_or() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { parse().unwrap(); xs[0]; }\n}\n\
                   fn live() { let v = parse().unwrap_or(0); }\n";
        let f = run("crates/serve/src/server.rs", src, check_panic_path);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_discipline_flags_io_under_guard() {
        let src = "fn f() { if let Ok(guard) = server.lock() { save_store(&guard, path); } }\n";
        let f = run("crates/bench/src/bin/serve.rs", src, check_lock_discipline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("save_store"));
    }

    #[test]
    fn lock_discipline_respects_inner_scopes_and_drop() {
        let clean = "fn f() { let out = { let g = m.lock().unwrap(); render(&g) }; \
                     write_responses(w, &out); }\n";
        assert!(run("crates/serve/src/server.rs", clean, check_lock_discipline).is_empty());
        let dropped = "fn f() { let g = m.lock().unwrap(); let s = render(&g); drop(g); \
                       write_responses(w, &s); }\n";
        assert!(run("crates/serve/src/server.rs", dropped, check_lock_discipline).is_empty());
    }

    #[test]
    fn float_order_warns_on_unprovable_head_and_errors_on_unordered() {
        let warn = "fn f(net: &Net) { let s: f64 = net.forward(x).iter().sum(); }\n";
        let f = run("crates/nn/src/grad.rs", warn, check_float_reduction_order);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Warning);
        let err = "fn f(m: &HashMap<u32, f64>) { let s: f64 = m.values().sum(); }\n";
        let f = run("crates/nn/src/grad.rs", err, check_float_reduction_order);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn float_order_accepts_typed_ordered_sources_and_minmax_folds() {
        let ok = "fn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n\
                  fn g(v: &Vec<f64>) -> f64 { v.iter().fold(f64::MIN, f64::max) }\n\
                  fn h() { let v: Vec<f64> = build(); let s: f64 = v.iter().sum(); }\n";
        let f = run("crates/nn/src/grad.rs", ok, check_float_reduction_order);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_order_skips_integer_reductions() {
        let src = "fn f(xs: &Foo) -> usize { xs.sizes().iter().sum() }\n";
        let f = run("crates/nn/src/grad.rs", src, check_float_reduction_order);
        assert!(f.is_empty(), "{f:?}");
    }
}
