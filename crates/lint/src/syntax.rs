//! A lightweight, brace-matched syntax index over the lexer's classified
//! lines: tokens, an item/block tree, and `let`/parameter bindings with
//! scope extents.
//!
//! This is deliberately *not* a Rust parser (no `syn`, no grammar): the
//! three syntax-aware passes in [`crate::passes`] only need to answer
//! questions a token stream plus balanced braces can answer —
//!
//! * "is this token inside `#[cfg(test)]` code?" (item tree with
//!   inherited test-ness),
//! * "which binding does this identifier refer to, and where does its
//!   scope end?" (`let`/`if let`/`while let` patterns and `fn`
//!   parameters, innermost-shadowing resolution),
//! * "what is the statement this token belongs to?" (delimiter-balanced
//!   extents),
//! * "what expression heads this method chain?" (backward walk over
//!   balanced call parentheses).
//!
//! Everything is a deterministic function of the file's bytes; token and
//! block vectors are emitted in source order so downstream findings sort
//! stably.

use crate::lexer::SourceLine;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal; `float` when it has a `.`, exponent, or an
    /// `f32`/`f64` suffix.
    Number {
        /// Literal is a floating-point constant.
        float: bool,
    },
    /// One punctuation character (the `Punct` payload).
    Punct(char),
    /// A (blanked) string literal.
    StrLit,
    /// A (blanked) char literal.
    CharLit,
    /// A lifetime tick (`'a`).
    Lifetime,
}

/// One token of a file's code (comments and literal contents excluded by
/// the lexer).
#[derive(Debug, Clone)]
pub struct Token {
    /// Identifier text, literal spelling, or the punctuation char.
    pub text: String,
    /// Classification.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 0-based char column of the token's first char.
    pub col: usize,
    /// 0-based char column one past the token's last char.
    pub end: usize,
}

impl Token {
    /// Is this an identifier with exactly this text?
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this the punctuation char `c`?
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// What introduced a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockKind {
    /// `fn name(...) { ... }` (also closures are *not* this — they open
    /// `Plain` blocks).
    Fn(String),
    /// `mod name { ... }`
    Mod(String),
    /// `impl`, `trait`, `struct`, `enum`, `union` bodies.
    Item(&'static str),
    /// Any other `{ ... }`: expression blocks, match bodies, closures,
    /// struct literals, `use` groups.
    Plain,
    /// The virtual file-level root.
    Root,
}

/// One brace-matched block.
#[derive(Debug, Clone)]
pub struct Block {
    /// What introduced the block.
    pub kind: BlockKind,
    /// Inherited test-ness: the block or an ancestor carries `#[test]`
    /// or a `cfg` attribute mentioning `test`.
    pub is_test: bool,
    /// Token index of the opening `{` (for the root: 0).
    pub open: usize,
    /// Token index one past the closing `}` content (exclusive end).
    pub close: usize,
    /// Index of the parent block (`None` for the root).
    pub parent: Option<usize>,
}

impl Block {
    /// Does the block's token range contain token index `tok`?
    #[must_use]
    pub fn contains(&self, tok: usize) -> bool {
        self.open <= tok && tok < self.close
    }
}

/// A `let`/`if let`/`while let` binding or an `fn` parameter.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Names bound by the pattern (tuple/struct patterns bind several).
    pub names: Vec<String>,
    /// 1-based line of the `let` (or the parameter).
    pub line: usize,
    /// Token range of the type annotation, when present.
    pub ty: Option<(usize, usize)>,
    /// Token range of the initializer (empty for parameters and
    /// uninitialized `let`s).
    pub init: (usize, usize),
    /// Block index the binding is live in (to the block's `close`).
    pub scope: usize,
    /// Whether the binding came from a slice pattern (`let [a, b] = ..`).
    pub slice_pattern: bool,
    /// Whether the pattern is refutable in context (`if let`/`while let`
    /// conditions, `let ... else`): a mismatch diverts, never panics.
    pub refutable: bool,
}

/// The syntax index of one file.
#[derive(Debug)]
pub struct FileIndex {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// Blocks in opening order; index 0 is the virtual root.
    pub blocks: Vec<Block>,
    /// Bindings in source order.
    pub bindings: Vec<Binding>,
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else",
    "enum", "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "super", "trait",
    "true", "type", "union", "unsafe", "use", "where", "while",
];

/// Is `s` a Rust keyword (the subset relevant to this index)?
#[must_use]
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes the classified lines' code parts.
#[must_use]
pub fn tokenize(lines: &[SourceLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if ident_start(c) {
                let start = i;
                while i < chars.len() && ident_cont(chars[i]) {
                    i += 1;
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokenKind::Ident,
                    line: idx + 1,
                    col: start,
                    end: i,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                let mut float = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() || d == '_' {
                        i += 1;
                    } else if d == '.' {
                        // `0..n` is a range, not a float: only consume the
                        // dot when a digit follows.
                        if chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                            float = true;
                            i += 2;
                        } else {
                            break;
                        }
                    } else if d == 'e' || d == 'E' {
                        let next = chars.get(i + 1);
                        let sign = matches!(next, Some('+' | '-'));
                        let digit_at = if sign { i + 2 } else { i + 1 };
                        if chars.get(digit_at).is_some_and(char::is_ascii_digit) {
                            float = true;
                            i = digit_at + 1;
                        } else {
                            break;
                        }
                    } else if ident_cont(d) {
                        // Suffix: f32/f64/u32/usize...
                        let sfx_start = i;
                        while i < chars.len() && ident_cont(chars[i]) {
                            i += 1;
                        }
                        let sfx: String = chars[sfx_start..i].iter().collect();
                        if sfx.starts_with('f') {
                            float = true;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    text: chars[start..i].iter().collect(),
                    kind: TokenKind::Number { float },
                    line: idx + 1,
                    col: start,
                    end: i,
                });
            } else if c == '"' {
                // Lexer-blanked string literal: contents are spaces, find
                // the closing quote (same line after classification since
                // inner newlines split into per-line blanks — an unclosed
                // quote just ends the line's literal token).
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                let end = (j + 1).min(chars.len());
                out.push(Token {
                    text: String::from("\"\""),
                    kind: TokenKind::StrLit,
                    line: idx + 1,
                    col: i,
                    end,
                });
                i = end;
            } else if c == '\'' {
                // After classification a char literal is `'` + spaces + `'`;
                // a lifetime is `'` + identifier.
                if chars.get(i + 1).is_some_and(|&d| ident_start(d)) {
                    let start = i;
                    i += 1;
                    while i < chars.len() && ident_cont(chars[i]) {
                        i += 1;
                    }
                    out.push(Token {
                        text: chars[start..i].iter().collect(),
                        kind: TokenKind::Lifetime,
                        line: idx + 1,
                        col: start,
                        end: i,
                    });
                } else {
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] == ' ' {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') {
                        out.push(Token {
                            text: String::from("''"),
                            kind: TokenKind::CharLit,
                            line: idx + 1,
                            col: i,
                            end: j + 1,
                        });
                        i = j + 1;
                    } else {
                        out.push(Token {
                            text: String::from("'"),
                            kind: TokenKind::Punct('\''),
                            line: idx + 1,
                            col: i,
                            end: i + 1,
                        });
                        i += 1;
                    }
                }
            } else {
                out.push(Token {
                    text: c.to_string(),
                    kind: TokenKind::Punct(c),
                    line: idx + 1,
                    col: i,
                    end: i + 1,
                });
                i += 1;
            }
        }
    }
    out
}

/// Pending item header state while building the block tree.
struct PendingItem {
    kind: BlockKind,
    is_test: bool,
}

/// Builds the full index for a file.
#[must_use]
pub fn index(lines: &[SourceLine]) -> FileIndex {
    let tokens = tokenize(lines);
    let mut blocks = vec![Block {
        kind: BlockKind::Root,
        is_test: false,
        open: 0,
        close: tokens.len(),
        parent: None,
    }];
    let mut bindings: Vec<Binding> = Vec::new();
    let mut stack: Vec<usize> = vec![0];
    let mut pending: Option<PendingItem> = None;
    let mut pending_test = false;
    // Bindings that become live in the *next* opened block (`if let`
    // guards, `fn` parameters).
    let mut pending_scoped: Vec<Binding> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('#') => {
                // Attribute: `#[...]` or `#![...]`.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                    let end = matching_delim(&tokens, j, '[', ']');
                    if tokens[j + 1..end].iter().any(|t| t.is_ident("test")) {
                        pending_test = true;
                    }
                    i = (end + 1).min(tokens.len());
                    continue;
                }
                i += 1;
            }
            TokenKind::Ident => match t.text.as_str() {
                "fn" | "mod" | "struct" | "enum" | "impl" | "trait" | "union" => {
                    let name = tokens
                        .get(i + 1)
                        .filter(|n| n.kind == TokenKind::Ident)
                        .map(|n| n.text.clone())
                        .unwrap_or_default();
                    let kind = match t.text.as_str() {
                        "fn" => BlockKind::Fn(name),
                        "mod" => BlockKind::Mod(name),
                        "struct" => BlockKind::Item("struct"),
                        "enum" => BlockKind::Item("enum"),
                        "impl" => BlockKind::Item("impl"),
                        "trait" => BlockKind::Item("trait"),
                        _ => BlockKind::Item("union"),
                    };
                    let test = pending_test || blocks[*stack.last().expect("root")].is_test;
                    if t.text == "fn" {
                        // Parameters become bindings of the fn body block.
                        let mut j = i + 1;
                        while j < tokens.len()
                            && !tokens[j].is_punct('(')
                            && !tokens[j].is_punct('{')
                            && !tokens[j].is_punct(';')
                        {
                            j += 1;
                        }
                        if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                            let end = matching_delim(&tokens, j, '(', ')');
                            pending_scoped.extend(param_bindings(&tokens, j + 1, end));
                        }
                    }
                    pending = Some(PendingItem { kind, is_test: test });
                    i += 1;
                }
                "let" => {
                    let condition = i > 0
                        && matches!(tokens[i - 1].kind, TokenKind::Ident)
                        && (tokens[i - 1].text == "if" || tokens[i - 1].text == "while");
                    let (binding, next) = parse_let(&tokens, i, condition);
                    if let Some(mut b) = binding {
                        if condition {
                            pending_scoped.push(b);
                        } else {
                            b.scope = *stack.last().expect("root");
                            bindings.push(b);
                        }
                    }
                    i = next;
                }
                _ => i += 1,
            },
            TokenKind::Punct('{') => {
                let parent = *stack.last().expect("root");
                let (kind, test) = match pending.take() {
                    Some(p) => (p.kind, p.is_test || blocks[parent].is_test),
                    None => (BlockKind::Plain, blocks[parent].is_test),
                };
                pending_test = false;
                let id = blocks.len();
                blocks.push(Block {
                    kind,
                    is_test: test,
                    open: i,
                    close: tokens.len(),
                    parent: Some(parent),
                });
                for mut b in pending_scoped.drain(..) {
                    b.scope = id;
                    bindings.push(b);
                }
                stack.push(id);
                i += 1;
            }
            TokenKind::Punct('}') => {
                if stack.len() > 1 {
                    let id = stack.pop().expect("non-root");
                    blocks[id].close = i + 1;
                }
                i += 1;
            }
            TokenKind::Punct(';') => {
                // A declaration (`struct X;`, `mod m;`) consumes the
                // pending header and its attributes.
                pending = None;
                pending_test = false;
                pending_scoped.clear();
                i += 1;
            }
            _ => i += 1,
        }
    }
    FileIndex {
        tokens,
        blocks,
        bindings,
    }
}

/// Index one past the delimiter matching `open_at` (which must hold
/// `open`); saturates at the end of the token stream.
fn matching_delim(tokens: &[Token], open_at: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// Are tokens `a` and `b` (b directly after a) adjacent characters of
/// the same line, i.e. parts of one multi-char operator?
fn adjacent(a: &Token, b: &Token) -> bool {
    a.line == b.line && a.end == b.col
}

/// Is the `=` at `i` a plain assignment (not `==`, `=>`, `..=`, `<=`,
/// `>=`, `!=`, `+=`, ...)? Multi-char operators are only recognised
/// when their characters are adjacent, so `Vec<f64> =` still assigns.
fn is_assign_eq(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct('=') {
        return false;
    }
    if tokens
        .get(i + 1)
        .is_some_and(|t| (t.is_punct('=') || t.is_punct('>')) && adjacent(&tokens[i], t))
    {
        return false;
    }
    if i > 0 {
        if let TokenKind::Punct(p) = tokens[i - 1].kind {
            if "=<>!+-*/%&|^.".contains(p) && adjacent(&tokens[i - 1], &tokens[i]) {
                return false;
            }
        }
    }
    true
}

/// Parses a `let` starting at token `at` (which holds `let`). Returns
/// the binding (if a pattern was found) and the index to continue from.
fn parse_let(tokens: &[Token], at: usize, condition: bool) -> (Option<Binding>, usize) {
    let line = tokens[at].line;
    let mut depth = 0usize;
    let mut j = at + 1;
    let mut ty: Option<(usize, usize)> = None;
    let mut ty_start: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut slice_pattern = false;
    let mut eq_at: Option<usize> = None;
    // Pattern (and optional type) up to the assignment `=`.
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => {
                if depth == 0 && t.is_punct('[') && ty_start.is_none() {
                    slice_pattern = true;
                }
                depth += 1;
            }
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Punct(':') if depth == 0 && ty_start.is_none() => {
                // `::` is a path, not an annotation.
                if tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    || (j > 0 && tokens[j - 1].is_punct(':'))
                {
                    // fall through: path separator
                } else {
                    ty_start = Some(j + 1);
                }
            }
            TokenKind::Punct('=') if depth == 0 && is_assign_eq(tokens, j) => {
                eq_at = Some(j);
                break;
            }
            TokenKind::Punct(';') | TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Ident
                if ty_start.is_none()
                    && !is_keyword(&t.text)
                    && t.text != "_"
                    && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                    && !tokens.get(j + 1).is_some_and(|n| n.is_punct('!'))
                    && !(tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                        && tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))) =>
            {
                names.push(t.text.clone());
            }
            _ => {}
        }
        j += 1;
    }
    if let (Some(s), Some(e)) = (ty_start, eq_at) {
        if s < e {
            ty = Some((s, e));
        }
    }
    // Initializer: to `;`/`else` (statement let) or `{` (condition let).
    let init_start = eq_at.map_or(j, |e| e + 1);
    let mut k = init_start;
    let mut let_else = false;
    depth = 0;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Punct(';') if depth == 0 => break,
            TokenKind::Punct('{') if depth == 0 && condition => break,
            TokenKind::Ident if depth == 0 && t.text == "else" => {
                let_else = true;
                break;
            }
            // A statement-let's initializer may contain `{` (struct
            // literals, match expressions): those open nested blocks the
            // main loop must still see, so stop the init scan there too —
            // the tokens up to the brace are what the passes inspect.
            TokenKind::Punct('{') if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if names.is_empty() {
        return (None, at + 1);
    }
    (
        Some(Binding {
            names,
            line,
            ty,
            init: (init_start, k),
            scope: 0, // caller fills
            slice_pattern,
            refutable: condition || let_else,
        }),
        at + 1,
    )
}

/// Extracts parameter bindings from the token range of an `fn` parameter
/// list (exclusive of the parentheses).
fn param_bindings(tokens: &[Token], start: usize, end: usize) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut seg_start = start;
    let mut depth = 0usize;
    let mut j = start;
    while j <= end {
        let at_end = j == end;
        let is_sep = !at_end
            && tokens[j].is_punct(',')
            && depth == 0;
        if !at_end {
            match tokens[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => {
                    depth += 1;
                }
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => {
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        if at_end || is_sep {
            if seg_start < j {
                if let Some(b) = param_binding(tokens, seg_start, j) {
                    out.push(b);
                }
            }
            seg_start = j + 1;
        }
        j += 1;
    }
    out
}

/// One `pattern: Type` parameter segment.
fn param_binding(tokens: &[Token], start: usize, end: usize) -> Option<Binding> {
    let mut colon: Option<usize> = None;
    let mut depth = 0usize;
    for j in start..end {
        match tokens[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => {
                depth = depth.saturating_sub(1);
            }
            // A `::` path separator is not the pattern/type colon.
            TokenKind::Punct(':')
                if depth == 0
                    && !tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && !(j > start && tokens[j - 1].is_punct(':')) =>
            {
                colon = Some(j);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?;
    let names: Vec<String> = tokens[start..colon]
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && !is_keyword(&t.text)
                && t.text != "_"
                && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
        })
        .map(|t| t.text.clone())
        .collect();
    if names.is_empty() {
        return None;
    }
    Some(Binding {
        names,
        line: tokens[start].line,
        ty: Some((colon + 1, end)),
        init: (end, end),
        scope: 0,
        slice_pattern: false,
        refutable: false,
    })
}

impl FileIndex {
    /// Innermost block containing token `tok` (always at least the root).
    #[must_use]
    pub fn innermost_block(&self, tok: usize) -> usize {
        let mut best = 0;
        for (id, b) in self.blocks.iter().enumerate() {
            if b.contains(tok) && b.open >= self.blocks[best].open {
                best = id;
            }
        }
        best
    }

    /// Is the token inside test-only code (`#[cfg(test)]` module,
    /// `#[test]` fn, or anything nested in one)?
    #[must_use]
    pub fn in_test(&self, tok: usize) -> bool {
        self.blocks[self.innermost_block(tok)].is_test
    }

    /// Innermost-shadowing binding of `name` visible at token `tok`.
    #[must_use]
    pub fn binding_for(&self, name: &str, tok: usize) -> Option<&Binding> {
        self.bindings
            .iter()
            .filter(|b| {
                b.names.iter().any(|n| n == name)
                    && b.init.0 <= tok
                    && self.blocks[b.scope].contains(tok)
            })
            .max_by_key(|b| b.init.0)
    }

    /// The statement containing `tok`: the token range bounded by `;`,
    /// `{`, or `}` at the same delimiter depth on both sides.
    #[must_use]
    pub fn statement_range(&self, tok: usize) -> (usize, usize) {
        let mut start = tok;
        let mut depth = 0isize;
        while start > 0 {
            let t = &self.tokens[start - 1];
            match t.kind {
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
                    if depth == 0 =>
                {
                    break;
                }
                _ => {}
            }
            start -= 1;
        }
        let mut end = tok;
        depth = 0;
        while end < self.tokens.len() {
            let t = &self.tokens[end];
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
                    if depth == 0 =>
                {
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        (start, end)
    }

    /// Walks a method chain backward from the `.` at `dot`: returns the
    /// token range of the chain's *head expression* (the receiver of the
    /// first call in the chain), skipping over `.method(...)`,
    /// `.method::<T>(...)`, `.await`-style segments, `?`, indexing
    /// `[...]`, and call parentheses.
    #[must_use]
    pub fn chain_head(&self, dot: usize) -> (usize, usize) {
        let stmt = self.statement_range(dot);
        let mut end = dot; // exclusive end of the head expression
        let mut i = dot;
        loop {
            // `i` currently points at a `.`; the segment before it is
            // either another chain segment or the head.
            if i == stmt.0 {
                break;
            }
            let prev = i - 1;
            let t = &self.tokens[prev];
            match t.kind {
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    let open = if t.is_punct(')') { '(' } else { '[' };
                    let close = if t.is_punct(')') { ')' } else { ']' };
                    // Scan backward to the matching opener.
                    let mut depth = 0isize;
                    let mut j = prev;
                    loop {
                        let tk = &self.tokens[j];
                        if tk.is_punct(close) {
                            depth += 1;
                        } else if tk.is_punct(open) {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if j == stmt.0 {
                            break;
                        }
                        j -= 1;
                    }
                    i = j;
                    end = end.max(dot);
                    // After the group, continue: what precedes the opener?
                    if i > stmt.0
                        && (self.tokens[i - 1].kind == TokenKind::Ident
                            || self.tokens[i - 1].is_punct('>'))
                    {
                        // call like `name(...)` or turbofish `::<T>(...)`:
                        // keep walking left over the name/path below.
                        i -= 1;
                        // fall through into ident handling by looping
                        while i > stmt.0 {
                            let t = &self.tokens[i];
                            let prev_t = &self.tokens[i - 1];
                            if t.kind == TokenKind::Ident && prev_t.is_punct(':') {
                                i -= 1;
                                continue;
                            }
                            if t.is_punct(':') {
                                i -= 1;
                                continue;
                            }
                            if t.kind == TokenKind::Ident && prev_t.is_punct('.') {
                                // `recv.method(...)`: this whole group is a
                                // chain segment; continue from the dot.
                                i -= 1;
                                break;
                            }
                            break;
                        }
                        if self.tokens[i].is_punct('.') {
                            continue; // another `.method(...)` segment
                        }
                        // `name(...)` — free-function call is the head.
                        return (i, dot);
                    }
                    // Parenthesized/indexed head expression.
                    return (i, dot);
                }
                TokenKind::Ident | TokenKind::Number { .. } => {
                    // `field` or `method`-less segment: step over
                    // `recv.field.field`… until the start.
                    let mut j = prev;
                    while j > stmt.0 {
                        let t = &self.tokens[j - 1];
                        if t.is_punct('.') && j >= 2 {
                            let before = &self.tokens[j - 2];
                            if before.kind == TokenKind::Ident
                                || matches!(before.kind, TokenKind::Number { .. })
                            {
                                j -= 2;
                                continue;
                            }
                            if before.is_punct(')') || before.is_punct(']') {
                                // group.field — treat group as head
                                i = j - 1;
                                break;
                            }
                        }
                        break;
                    }
                    if self.tokens[j].kind == TokenKind::Ident
                        || matches!(self.tokens[j].kind, TokenKind::Number { .. })
                    {
                        return (j, dot);
                    }
                    if i == j {
                        return (j, dot);
                    }
                    continue;
                }
                _ => {
                    return (i, dot);
                }
            }
        }
        (stmt.0, end.max(stmt.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::classify;

    fn idx(src: &str) -> FileIndex {
        index(&classify(src))
    }

    #[test]
    fn tokenizer_classifies_numbers_and_idents() {
        let f = idx("let x = 1.5_f64 + 2e-3 + 7; let r = 0..n;");
        let floats: Vec<&Token> = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Number { float: true }))
            .collect();
        assert_eq!(floats.len(), 2, "{floats:?}");
        assert!(f.tokens.iter().any(|t| t.is_ident("x")));
        // `0..n`: the 0 must stay an integer.
        assert!(f
            .tokens
            .iter()
            .any(|t| t.text == "0" && t.kind == TokenKind::Number { float: false }));
    }

    #[test]
    fn lifetimes_and_char_literals_tokenize() {
        let f = idx("fn f<'a>(x: &'a str) { let c = 'z'; }");
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::CharLit));
    }

    #[test]
    fn cfg_test_modules_are_inherited() {
        let src = "fn live() { x(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { y(); }\n\
                       #[test]\n\
                       fn t() { z(); }\n\
                   }\n";
        let f = idx(src);
        let x = f.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let y = f.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        let z = f.tokens.iter().position(|t| t.is_ident("z")).unwrap();
        assert!(!f.in_test(x));
        assert!(f.in_test(y), "helpers inside cfg(test) mods are test code");
        assert!(f.in_test(z));
    }

    #[test]
    fn test_attribute_applies_to_single_fn() {
        let src = "#[test]\nfn t() { a(); }\nfn live() { b(); }\n";
        let f = idx(src);
        let a = f.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let b = f.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(f.in_test(a));
        assert!(!f.in_test(b));
    }

    #[test]
    fn let_bindings_carry_type_and_init() {
        let f = idx("fn f() { let xs: Vec<f64> = build(); xs.len(); }");
        let b = f.bindings.iter().find(|b| b.names == ["xs"]).unwrap();
        let ty = b.ty.expect("typed");
        let ty_txt: Vec<&str> = f.tokens[ty.0..ty.1].iter().map(|t| t.text.as_str()).collect();
        assert!(ty_txt.contains(&"Vec"), "{ty_txt:?}");
        let init_txt: Vec<&str> =
            f.tokens[b.init.0..b.init.1].iter().map(|t| t.text.as_str()).collect();
        assert!(init_txt.contains(&"build"), "{init_txt:?}");
    }

    #[test]
    fn if_let_binding_scopes_to_the_guarded_block() {
        let src = "fn f() { if let Ok(guard) = m.lock() { use_it(guard); } after(); }";
        let f = idx(src);
        let b = f.bindings.iter().find(|b| b.names == ["guard"]).unwrap();
        let use_at = f.tokens.iter().position(|t| t.is_ident("use_it")).unwrap();
        let after_at = f.tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(f.blocks[b.scope].contains(use_at));
        assert!(!f.blocks[b.scope].contains(after_at));
    }

    #[test]
    fn fn_params_are_bindings_with_types() {
        let f = idx("fn dot(a: &[f64], b: &[f64]) -> f64 { a.iter().sum() }");
        let at = f.tokens.iter().position(|t| t.is_ident("iter")).unwrap();
        let b = f.binding_for("a", at).expect("param binding");
        let ty = b.ty.expect("typed param");
        assert!(f.tokens[ty.0..ty.1].iter().any(|t| t.is_punct('[')));
    }

    #[test]
    fn shadowing_resolves_to_the_nearest_binding() {
        let f = idx("fn f() { let x = a(); { let x = b(); x.use_(); } }");
        let use_at = f.tokens.iter().position(|t| t.is_ident("use_")).unwrap();
        let b = f.binding_for("x", use_at).unwrap();
        let init: Vec<&str> =
            f.tokens[b.init.0..b.init.1].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(init, ["b", "(", ")"]);
    }

    #[test]
    fn statement_ranges_stop_at_semicolons_and_braces() {
        let f = idx("fn f() { a(); let y = b.c(1); d(); }");
        let c_at = f.tokens.iter().position(|t| t.is_ident("c")).unwrap();
        let (s, e) = f.statement_range(c_at);
        let txt: Vec<&str> = f.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(txt.starts_with(&["let", "y"]), "{txt:?}");
        assert!(!txt.contains(&"d"), "{txt:?}");
    }

    #[test]
    fn chain_head_resolves_variables_and_calls() {
        let f = idx("fn f() { let s: f64 = xs.iter().map(|v| v * 2.0).sum(); }");
        let sum_at = f.tokens.iter().rposition(|t| t.is_ident("sum")).unwrap();
        let (h, _) = f.chain_head(sum_at - 1);
        assert!(f.tokens[h].is_ident("xs"), "head: {:?}", f.tokens[h]);

        let g = idx("fn f() { let s: f64 = net.forward(x).iter().sum(); }");
        let sum_at = g.tokens.iter().rposition(|t| t.is_ident("sum")).unwrap();
        let (h, _) = g.chain_head(sum_at - 1);
        assert!(g.tokens[h].is_ident("net"), "head: {:?}", g.tokens[h]);
    }

    #[test]
    fn slice_patterns_are_marked() {
        let f = idx("fn f(v: &[u8]) { let [a, b] = split(v); use_(a, b); }");
        let b = f.bindings.iter().find(|b| b.names.contains(&"a".into())).unwrap();
        assert!(b.slice_pattern);
    }

    #[test]
    fn unbalanced_files_do_not_panic() {
        let _ = idx("fn f() { { { let x = 1;");
        let _ = idx("}}} fn g()");
    }
}
