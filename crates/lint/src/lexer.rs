//! A line-oriented Rust lexer that separates *code* from *comments* and
//! blanks out string/char-literal contents.
//!
//! The rule engine must not fire on `"HashMap"` inside a string literal
//! or on `Instant::now` mentioned in a doc comment, and it must find
//! `// SAFETY:` and `// lint: allow(...)` markers even when they share a
//! line with code. This module does exactly that split and nothing more:
//! it is not a parser, and it only needs to classify bytes, so the whole
//! grammar it understands is
//!
//! * `//` line comments,
//! * `/* ... */` block comments (nested, possibly multi-line),
//! * `"..."` and `b"..."` string literals (escapes, possibly multi-line),
//! * `r"..."`/`r#"..."#`/`br#"..."#` raw strings (any hash count),
//! * `'x'`/`'\n'` char literals vs `'lifetime` annotations.
//!
//! Everything else is code. Literal *contents* are replaced by spaces
//! (the delimiters survive) so token boundaries and column positions are
//! preserved; comment *text* is collected per line for the marker scans.

/// One source line, split into its code part and its comment text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceLine {
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated text of every comment (segment) on the line.
    pub comment: String,
}

impl SourceLine {
    /// Returns `true` when the line has any non-whitespace code.
    #[must_use]
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

/// Lexer state carried across lines.
enum State {
    Code,
    BlockComment { depth: usize },
    Str { raw_hashes: Option<usize> },
}

/// Splits `text` into classified lines.
#[must_use]
pub fn classify(text: &str) -> Vec<SourceLine> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for line in text.split('\n') {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match state {
                State::BlockComment { ref mut depth } => {
                    // Comment bytes become spaces in `code` so columns stay
                    // stable and tokens on either side never merge.
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        comment.push_str("/*");
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        code.push_str("  ");
                        i += 2;
                        if *depth == 0 {
                            state = State::Code;
                        }
                    } else {
                        comment.push(chars[i]);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str { raw_hashes } => {
                    match raw_hashes {
                        None => {
                            if chars[i] == '\\' {
                                code.push_str("  ");
                                i += 2;
                            } else if chars[i] == '"' {
                                code.push('"');
                                i += 1;
                                state = State::Code;
                            } else {
                                code.push(' ');
                                i += 1;
                            }
                        }
                        Some(h) => {
                            if chars[i] == '"' && closes_raw(&chars, i, h) {
                                code.push('"');
                                for _ in 0..h {
                                    code.push('#');
                                }
                                i += 1 + h;
                                state = State::Code;
                            } else {
                                code.push(' ');
                                i += 1;
                            }
                        }
                    }
                }
                State::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment { depth: 1 };
                        code.push_str("  ");
                        i += 2;
                    } else if let Some((prefix, h)) = raw_string_open(&chars, i) {
                        // `r"`, `r#"`, `br##"`, ... — push the prefix as
                        // code so boundaries survive, blank the contents.
                        for j in 0..prefix {
                            code.push(chars[i + j]);
                        }
                        code.push('"');
                        i += prefix + 1;
                        state = State::Str { raw_hashes: Some(h) };
                    } else if c == '"' {
                        code.push('"');
                        i += 1;
                        state = State::Str { raw_hashes: None };
                    } else if c == '\'' {
                        i = lex_quote(&chars, i, &mut code);
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // A line consumed entirely by a block comment still needs its
        // indentation represented so `has_code` stays meaningful.
        out.push(SourceLine { code, comment });
    }
    out
}

/// Does `chars[i] == '"'` close a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a raw (byte) string literal opens at `i`, returns the length of
/// the prefix before the opening quote and the hash count.
///
/// Requires the previous char to not be part of an identifier, so
/// `catch_r"..."` (invalid Rust anyway) is not misread.
fn raw_string_open(chars: &[char], i: usize) -> Option<(usize, usize)> {
    if i > 0 && is_ident(chars[i - 1]) {
        return None;
    }
    if chars.get(i) != Some(&'b') && chars.get(i) != Some(&'r') {
        return None;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i, hashes))
    } else {
        None
    }
}

/// Lexes a `'` at position `i`: either a char literal (contents blanked)
/// or a lifetime tick (kept as code). Returns the next index.
fn lex_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    // `'\...'` is always a char literal.
    if chars.get(i + 1) == Some(&'\\') {
        code.push('\'');
        let mut j = i + 2;
        while j < chars.len() && chars[j] != '\'' {
            code.push(' ');
            j += 1;
        }
        code.push(' ');
        code.push('\'');
        return (j + 1).min(chars.len());
    }
    // `'x'` (any single char, including `'`-adjacent digits) is a char
    // literal; `'ident` with no closing quote right after is a lifetime.
    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1).is_some() {
        code.push('\'');
        code.push(' ');
        code.push('\'');
        return i + 3;
    }
    code.push('\'');
    i + 1
}

/// Is `c` part of an identifier?
pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        classify(text).into_iter().map(|l| l.code).collect()
    }

    fn comments_of(text: &str) -> Vec<String> {
        classify(text).into_iter().map(|l| l.comment).collect()
    }

    #[test]
    fn line_comments_are_stripped() {
        let lines = classify("let x = 1; // HashMap here\nlet y = 2;");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " HashMap here");
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked() {
        let code = &code_of("let s = \"Instant::now // not a comment\";")[0];
        assert!(!code.contains("Instant"));
        assert!(!code.contains("//"));
        assert!(code.starts_with("let s = \""));
        assert!(code.ends_with("\";"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = &code_of(r#"let s = "a\"b"; let t = 1;"#)[0];
        assert!(code.contains("let t = 1;"));
        assert!(!code.contains('a'));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let code = &code_of(r###"let s = r#"HashMap "quoted" inside"#; foo();"###)[0];
        assert!(!code.contains("HashMap"));
        assert!(code.contains("foo();"));
    }

    #[test]
    fn multiline_strings_blank_every_line() {
        let codes = code_of("let s = \"line one\nHashMap::new()\nend\"; tail();");
        assert!(!codes[1].contains("HashMap"));
        assert!(codes[2].contains("tail();"));
    }

    #[test]
    fn nested_block_comments() {
        let codes = code_of("a(); /* outer /* inner */ still comment */ b();");
        assert!(codes[0].contains("a();"));
        assert!(codes[0].contains("b();"));
        assert!(!codes[0].contains("outer"));
        assert!(!codes[0].contains("inner"));
    }

    #[test]
    fn multiline_block_comment_collects_text() {
        let comments = comments_of("x(); /* one\ntwo HashMap\nthree */ y();");
        assert!(comments[1].contains("HashMap"));
        let codes = code_of("x(); /* one\ntwo HashMap\nthree */ y();");
        assert!(!codes[1].contains("HashMap"));
        assert!(codes[2].contains("y();"));
    }

    #[test]
    fn char_literals_are_blanked_but_lifetimes_kept() {
        let code = &code_of("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }")[0];
        assert!(code.contains("<'a>"), "lifetime must survive: {code}");
        assert!(code.contains("&'a str"));
        // The quote char literal must not open a string state.
        assert!(code.contains('}'));
    }

    #[test]
    fn quote_char_literal_does_not_open_string() {
        let codes = code_of("let q = '\"';\nlet h = HashMap::new();");
        assert!(codes[1].contains("HashMap"));
    }

    #[test]
    fn doc_comments_count_as_comments() {
        let lines = classify("/// uses Instant::now internally\nfn f() {}");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].comment.contains("Instant::now"));
    }

    #[test]
    fn has_code_detects_blank_and_comment_lines() {
        let lines = classify("  \n// only a comment\nlet x = 1;");
        assert!(!lines[0].has_code());
        assert!(!lines[1].has_code());
        assert!(lines[2].has_code());
    }
}
