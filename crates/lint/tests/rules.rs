//! Per-rule fixtures: every shipped rule has a violating snippet that
//! produces an exact finding count, a clean variant that passes, and a
//! suppressed variant (`// lint: allow(<rule>, <reason>)`) that passes
//! with the suppression recorded.

use abonn_lint::lint_source;

/// Asserts `src` at `path` yields exactly the findings named in `rules`
/// (in line order) and no suppressions.
fn expect_findings(path: &str, src: &str, rules: &[&str]) {
    let out = lint_source(path, src);
    let got: Vec<&str> = out.findings.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(got, rules, "findings for {path}:\n{src}\n{:#?}", out.findings);
}

/// Asserts `src` at `path` is fully clean (no findings, no suppressions).
fn expect_clean(path: &str, src: &str) {
    let out = lint_source(path, src);
    assert!(
        out.findings.is_empty() && out.suppressed.is_empty(),
        "expected clean for {path}:\n{src}\n{:#?}\n{:#?}",
        out.findings,
        out.suppressed
    );
}

/// Asserts `src` at `path` has zero active findings and exactly one
/// suppression of `rule`.
fn expect_suppressed(path: &str, src: &str, rule: &str) {
    let out = lint_source(path, src);
    assert!(
        out.findings.is_empty(),
        "suppression failed for {path}:\n{src}\n{:#?}",
        out.findings
    );
    assert_eq!(out.suppressed.len(), 1, "{:#?}", out.suppressed);
    assert_eq!(out.suppressed[0].rule, rule);
    assert!(!out.suppressed[0].reason.is_empty());
}

// ---------------------------------------------------------------- rule 1

#[test]
fn wall_clock_violating() {
    expect_findings(
        "crates/bound/src/x.rs",
        "let t = Instant::now();\nlet s = SystemTime::now();\n",
        &["wall-clock-in-engine", "wall-clock-in-engine"],
    );
}

#[test]
fn wall_clock_clean_and_out_of_scope() {
    // Duration math is fine; only clock *reads* are flagged.
    expect_clean("crates/bound/src/x.rs", "let d = Duration::from_secs(1);\n");
    // Examples and the umbrella crate are outside the engine scope.
    expect_clean("examples/demo.rs", "let t = Instant::now();\n");
}

#[test]
fn wall_clock_in_comment_or_string_is_ignored() {
    expect_clean(
        "crates/bound/src/x.rs",
        "// Instant::now would be wrong here\nlet s = \"Instant::now\";\n",
    );
}

#[test]
fn wall_clock_suppressed() {
    expect_suppressed(
        "crates/bound/src/x.rs",
        "// lint: allow(wall-clock-in-engine, fixture: proven not to reach any persisted byte)\n\
         let t = Instant::now();\n",
        "wall-clock-in-engine",
    );
}

// ---------------------------------------------------------------- rule 2

#[test]
fn unordered_iteration_violating() {
    // One finding per line per collection type (the line is the unit of
    // repair, so repeated mentions on a line collapse to one finding).
    expect_findings(
        "crates/bench/src/report.rs",
        "use std::collections::HashMap;\nlet s: HashSet<u32> = HashSet::new();\n",
        &["unordered-iteration", "unordered-iteration"],
    );
}

#[test]
fn unordered_iteration_clean_and_out_of_scope() {
    expect_clean(
        "crates/bench/src/report.rs",
        "use std::collections::BTreeMap;\nlet m: BTreeMap<u32, u32> = BTreeMap::new();\n",
    );
    // HashMap is fine off the report/certificate/stats paths.
    expect_clean("crates/nn/src/train.rs", "use std::collections::HashMap;\n");
}

#[test]
fn unordered_iteration_suppressed() {
    expect_suppressed(
        "crates/check/src/x.rs",
        "let m = HashMap::new(); // lint: allow(unordered-iteration, fixture: drained through a sorted Vec before emission)\n",
        "unordered-iteration",
    );
}

// ---------------------------------------------------------------- rule 3

#[test]
fn unsafe_outside_allowlist_violating() {
    expect_findings(
        "crates/nn/src/x.rs",
        "let v = unsafe { danger() };\n",
        &["unsafe-outside-allowlist"],
    );
}

#[test]
fn unsafe_in_allowlisted_file_needs_safety_comment() {
    expect_findings(
        "crates/core/src/pool.rs",
        "let v = unsafe { transmute(x) };\n",
        &["unsafe-outside-allowlist"],
    );
    expect_clean(
        "crates/core/src/pool.rs",
        "// SAFETY: the value is settled before the borrow can dangle.\n\
         let v = unsafe { transmute(x) };\n",
    );
}

#[test]
fn forbid_unsafe_code_attribute_is_not_a_finding() {
    expect_clean("crates/nn/src/lib.rs", "#![forbid(unsafe_code)]\n");
}

#[test]
fn unsafe_suppressed() {
    expect_suppressed(
        "crates/nn/src/x.rs",
        "// lint: allow(unsafe-outside-allowlist, fixture: audited one-off)\n\
         let v = unsafe { danger() };\n",
        "unsafe-outside-allowlist",
    );
}

// ---------------------------------------------------------------- rule 4

#[test]
fn relaxed_atomics_violating() {
    expect_findings(
        "crates/core/src/x.rs",
        "counter.fetch_add(1, Ordering::Relaxed);\n",
        &["relaxed-atomics"],
    );
}

#[test]
fn relaxed_atomics_clean() {
    expect_clean(
        "crates/core/src/x.rs",
        "counter.fetch_add(1, Ordering::SeqCst);\nflag.store(true, Ordering::Release);\n",
    );
}

#[test]
fn relaxed_atomics_suppressed() {
    expect_suppressed(
        "crates/core/src/x.rs",
        "n.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomics, fixture: monotonic counter never gating a verdict)\n",
        "relaxed-atomics",
    );
}

// ---------------------------------------------------------------- rule 5

#[test]
fn persisted_wall_field_violating() {
    expect_findings(
        "crates/bench/src/x.rs",
        "#[derive(Debug, Serialize, Deserialize)]\n\
         pub struct Record {\n\
             pub verdict: String,\n\
             pub wall_secs: f64,\n\
             pub setup_ms: u64,\n\
         }\n",
        &["persisted-wall-field", "persisted-wall-field"],
    );
}

#[test]
fn persisted_wall_field_clean_with_skip() {
    expect_clean(
        "crates/bench/src/x.rs",
        "#[derive(Debug, Serialize, Deserialize)]\n\
         pub struct Record {\n\
             pub verdict: String,\n\
             #[serde(skip)]\n\
             pub wall_secs: f64,\n\
         }\n",
    );
}

#[test]
fn persisted_wall_field_ignores_non_serde_structs_and_locals() {
    // No Serialize derive: wall fields may live in memory freely.
    expect_clean(
        "crates/core/src/x.rs",
        "#[derive(Debug, Clone)]\npub struct Stats {\n    pub wall_secs: f64,\n}\n",
    );
    // Struct-literal initializers are not definitions.
    expect_clean(
        "crates/bench/src/x.rs",
        "let r = Record {\n    wall_secs: 0.25,\n};\n",
    );
    // Serde enums have no named fields to audit.
    expect_clean(
        "crates/bench/src/x.rs",
        "#[derive(Serialize)]\npub enum Kind {\n    Fast,\n    Slow,\n}\n",
    );
}

#[test]
fn persisted_wall_field_suppressed() {
    expect_suppressed(
        "crates/bench/src/x.rs",
        "#[derive(Serialize)]\n\
         pub struct Record {\n\
             // lint: allow(persisted-wall-field, fixture: this artefact is explicitly a timing log)\n\
             pub wall_secs: f64,\n\
         }\n",
        "persisted-wall-field",
    );
}

// ---------------------------------------------------------------- rule 6

#[test]
fn nondeterministic_api_violating() {
    expect_findings(
        "crates/core/src/x.rs",
        "let n = std::thread::available_parallelism();\nlet rng = thread_rng();\n",
        &["nondeterministic-api", "nondeterministic-api"],
    );
}

#[test]
fn nondeterministic_api_clean_and_out_of_scope() {
    expect_clean(
        "crates/core/src/x.rs",
        "let rng = SmallRng::seed_from_u64(seed);\n",
    );
    // The bench harness may size pools from the machine; scope is the
    // engine crates whose outputs must be machine-independent.
    expect_clean(
        "crates/bench/tests/x.rs",
        "let n = std::thread::available_parallelism();\n",
    );
    // `with_available_parallelism` is its own identifier, not a call of
    // the std API: boundary-aware matching must not fire.
    expect_clean(
        "crates/core/src/x.rs",
        "let p = WorkerPool::with_available_parallelism2();\n",
    );
}

#[test]
fn nondeterministic_api_suppressed() {
    expect_suppressed(
        "crates/core/src/x.rs",
        "// lint: allow(nondeterministic-api, fixture: sizes a pool; outputs proven lane-invariant)\n\
         let n = std::thread::available_parallelism();\n",
        "nondeterministic-api",
    );
}

// ------------------------------------------------------- suppression meta

#[test]
fn suppression_without_reason_is_a_finding() {
    expect_findings(
        "crates/core/src/x.rs",
        "let t = 1; // lint: allow(relaxed-atomics)\n",
        &["suppression-syntax"],
    );
}

#[test]
fn suppression_reason_may_contain_parentheses() {
    expect_suppressed(
        "crates/core/src/x.rs",
        "n.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomics, fixture (see DESIGN.md section 5e) counter)\n",
        "relaxed-atomics",
    );
}

#[test]
fn one_marker_does_not_blanket_a_whole_file() {
    let src = "// lint: allow(wall-clock-in-engine, fixture: first read only)\n\
               let a = Instant::now();\n\
               let b = Instant::now();\n";
    let out = lint_source("crates/bound/src/x.rs", src);
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
    assert_eq!(out.findings[0].line, 3);
    assert_eq!(out.suppressed.len(), 1);
}
