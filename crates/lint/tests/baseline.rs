//! The fingerprint baseline end to end: content fingerprints survive
//! line motion, `apply_baseline` splits active from grandfathered,
//! stale entries surface, and only canonical baseline bytes are
//! accepted.

use abonn_lint::baseline::{self, Baseline};
use abonn_lint::{apply_baseline, lint_source, LintReport};

const VIOLATING: &str = "fn decode(line: &str) -> f64 {\n\
                         \x20   parse(line).unwrap()\n\
                         }\n";

fn scan(src: &str) -> LintReport {
    let out = lint_source("crates/serve/src/protocol.rs", src);
    LintReport {
        findings: out.findings,
        suppressed: out.suppressed,
        baselined: Vec::new(),
        stale_baseline: Vec::new(),
        files_scanned: 1,
    }
}

#[test]
fn fingerprints_survive_unrelated_line_motion() {
    let a = scan(VIOLATING);
    // Same content, pushed four lines down by new code above it.
    let moved = format!("// a\n// b\nfn other() {{}}\n// c\n{VIOLATING}");
    let b = scan(&moved);
    assert_eq!(a.findings.len(), 1);
    assert_eq!(b.findings.len(), 1);
    assert_ne!(a.findings[0].line, b.findings[0].line);
    assert_eq!(
        a.findings[0].fingerprint, b.findings[0].fingerprint,
        "content fingerprints must not depend on line numbers"
    );
}

#[test]
fn duplicate_content_gets_distinct_ordinal_fingerprints() {
    let twice = "fn a(line: &str) -> f64 {\n\
                 \x20   parse(line).unwrap()\n\
                 }\n\
                 fn b(line: &str) -> f64 {\n\
                 \x20   parse(line).unwrap()\n\
                 }\n";
    let rep = scan(twice);
    assert_eq!(rep.findings.len(), 2, "{:#?}", rep.findings);
    assert_ne!(
        rep.findings[0].fingerprint, rep.findings[1].fingerprint,
        "identical content lines must still get distinct fingerprints"
    );
}

#[test]
fn apply_baseline_splits_active_from_grandfathered() {
    let mut rep = scan(VIOLATING);
    let base = Baseline::from_findings(&rep.findings);
    apply_baseline(&mut rep, &base);
    assert!(rep.findings.is_empty(), "{:#?}", rep.findings);
    assert_eq!(rep.baselined.len(), 1);
    assert!(rep.stale_baseline.is_empty());
    assert!(rep.is_clean(), "baselined findings must not gate");
}

#[test]
fn new_findings_still_gate_alongside_a_baseline() {
    let mut rep = scan(VIOLATING);
    let base = Baseline::from_findings(&rep.findings);
    // The same old finding plus a brand-new one.
    let grown = format!("{VIOLATING}fn fresh(v: Val) -> f64 {{\n\
                         \x20   v.field.expect(\"present\")\n\
                         }}\n");
    rep = scan(&grown);
    apply_baseline(&mut rep, &base);
    assert_eq!(rep.baselined.len(), 1);
    assert_eq!(rep.findings.len(), 1, "{:#?}", rep.findings);
    assert!(!rep.is_clean(), "the new finding must gate");
}

#[test]
fn fixed_findings_surface_as_stale_entries() {
    let rep = scan(VIOLATING);
    let base = Baseline::from_findings(&rep.findings);
    let mut clean = scan("fn decode(line: &str) -> Option<f64> {\n\
                          \x20   parse(line).ok()\n\
                          }\n");
    assert!(clean.findings.is_empty());
    apply_baseline(&mut clean, &base);
    assert_eq!(clean.stale_baseline.len(), 1);
}

#[test]
fn render_parse_roundtrip_is_canonical() {
    let rep = scan(VIOLATING);
    let base = Baseline::from_findings(&rep.findings);
    let text = baseline::render(&base);
    let parsed = baseline::parse(&text).expect("canonical bytes parse");
    assert_eq!(parsed.entries, base.entries);
    assert_eq!(baseline::render(&parsed), text, "render is a fixed point");
}

#[test]
fn non_canonical_bytes_are_rejected() {
    let rep = scan(VIOLATING);
    let base = Baseline::from_findings(&rep.findings);
    let text = baseline::render(&base);
    // Same JSON value, different bytes (extra spaces): must be refused
    // so hand-edits can't silently drift the committed file.
    let loose = text.replace("{\"fingerprint\"", "{ \"fingerprint\"");
    assert_ne!(loose, text);
    assert!(
        baseline::parse(&loose).is_err(),
        "non-canonical baseline bytes must be rejected"
    );
}
