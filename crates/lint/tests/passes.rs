//! Fixtures for the syntax-aware passes (`panic-path`,
//! `lock-discipline`, `float-reduction-order`): each has a violating
//! snippet with an exact finding list, a clean variant, and a
//! suppressed variant, plus a guard-across-blocking regression
//! distilled from the serve scheduler's wave loop.

use abonn_lint::lint_source;
use abonn_lint::rules::Severity;

fn expect_rules(path: &str, src: &str, rules: &[&str]) {
    let out = lint_source(path, src);
    let got: Vec<&str> = out.findings.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(got, rules, "findings for {path}:\n{src}\n{:#?}", out.findings);
}

fn expect_clean(path: &str, src: &str) {
    let out = lint_source(path, src);
    assert!(
        out.findings.is_empty() && out.suppressed.is_empty(),
        "expected clean for {path}:\n{src}\n{:#?}\n{:#?}",
        out.findings,
        out.suppressed
    );
}

fn expect_suppressed(path: &str, src: &str, rule: &str) {
    let out = lint_source(path, src);
    assert!(
        out.findings.is_empty(),
        "suppression failed for {path}:\n{src}\n{:#?}",
        out.findings
    );
    assert_eq!(out.suppressed.len(), 1, "{:#?}", out.suppressed);
    assert_eq!(out.suppressed[0].rule, rule);
}

// ---------------------------------------------------------- panic-path

#[test]
fn panic_path_violating() {
    expect_rules(
        "crates/serve/src/protocol.rs",
        "fn decode(line: &str) -> String {\n\
         \x20   let v = parse(line).unwrap();\n\
         \x20   let w = v.field.expect(\"present\");\n\
         \x20   panic!(\"boom\");\n\
         }\n",
        &["panic-path", "panic-path", "panic-path"],
    );
}

#[test]
fn panic_path_flags_indexing_and_slice_patterns() {
    let out = lint_source(
        "crates/vnnlib/src/parser.rs",
        "fn pick(xs: &[f64], i: usize) -> f64 {\n\
         \x20   let [a, b] = split(xs);\n\
         \x20   xs[i] + a + b\n\
         }\n",
    );
    let got: Vec<(&str, Severity)> = out
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.severity))
        .collect();
    assert_eq!(
        got,
        vec![
            ("panic-path", Severity::Warning), // slice pattern
            ("panic-path", Severity::Error),   // xs[i]
        ],
        "{:#?}",
        out.findings
    );
}

#[test]
fn panic_path_clean() {
    // `.get()`, structured errors, refutable let-else patterns, and
    // debug_assert! are all fine; so is an unwrap in test code.
    expect_clean(
        "crates/serve/src/protocol.rs",
        "fn decode(line: &str) -> Result<f64, String> {\n\
         \x20   let [a, b] = parts(line) else {\n\
         \x20       return Err(\"arity\".to_string());\n\
         \x20   };\n\
         \x20   debug_assert!(a <= b);\n\
         \x20   xs.get(i).copied().ok_or_else(|| \"range\".to_string())\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn roundtrip() {\n\
         \x20       let v = decode(\"x\").unwrap();\n\
         \x20       assert_eq!(v, 0.0);\n\
         \x20   }\n\
         }\n",
    );
}

#[test]
fn panic_path_out_of_scope() {
    // Engine crates may panic on internal invariants; only wire-facing
    // files are in scope.
    expect_clean(
        "crates/bound/src/interval.rs",
        "fn f(xs: &[f64]) -> f64 { xs[0] }\n",
    );
}

#[test]
fn panic_path_suppressed() {
    expect_suppressed(
        "crates/serve/src/server.rs",
        "fn render(v: &Value) -> String {\n\
         \x20   // lint: allow(panic-path, Value trees serialise infallibly)\n\
         \x20   to_string(v).expect(\"serialises\")\n\
         }\n",
        "panic-path",
    );
}

// ------------------------------------------------------ lock-discipline

/// The regression distilled from the serve scheduler: PR 7's bug held
/// the server lock while reading the next request off the socket,
/// stalling every other connection. The guard must not be live across
/// `read_line`.
#[test]
fn lock_discipline_guard_across_socket_read() {
    expect_rules(
        "crates/core/src/wave.rs",
        "fn wave(server: &Mutex<Server>, reader: &mut BufReader<TcpStream>) {\n\
         \x20   let mut line = String::new();\n\
         \x20   let guard = server.lock().unwrap();\n\
         \x20   reader.read_line(&mut line).unwrap();\n\
         \x20   guard.respond(&line);\n\
         }\n",
        &["lock-discipline"],
    );
}

#[test]
fn lock_discipline_flags_pool_fanout_and_file_io() {
    expect_rules(
        "crates/core/src/snap.rs",
        "fn snapshot(state: &Mutex<Store>, pool: &Pool) {\n\
         \x20   let guard = state.lock().unwrap();\n\
         \x20   let out = pool.map(jobs, run);\n\
         \x20   fs::write(path, guard.render(out)).unwrap();\n\
         }\n",
        &["lock-discipline", "lock-discipline"],
    );
}

#[test]
fn lock_discipline_clean_when_dropped_or_scoped() {
    // The serve daemon's actual shape: render under the lock in an
    // inner block, do the blocking write outside it. An explicit
    // `drop(guard)` before the call is equally fine.
    expect_clean(
        "crates/core/src/wave.rs",
        "fn wave(server: &Mutex<Server>, writer: &mut TcpStream) {\n\
         \x20   let text = {\n\
         \x20       let guard = server.lock().unwrap();\n\
         \x20       guard.render()\n\
         \x20   };\n\
         \x20   writer.write_all(text.as_bytes()).unwrap();\n\
         \x20   let guard = server.lock().unwrap();\n\
         \x20   let n = guard.len();\n\
         \x20   drop(guard);\n\
         \x20   writer.flush().unwrap();\n\
         }\n",
    );
}

#[test]
fn lock_discipline_ignores_stdio_handle_locks() {
    // `stdout.lock()` batches I/O on the handle; it is not a Mutex
    // guard and exists precisely to span writes.
    expect_clean(
        "crates/bench/src/bin/tool.rs",
        "fn emit() {\n\
         \x20   let stdout = std::io::stdout();\n\
         \x20   let mut out = stdout.lock();\n\
         \x20   out.write_all(b\"x\").unwrap();\n\
         \x20   out.flush().unwrap();\n\
         }\n",
    );
}

#[test]
fn lock_discipline_suppressed() {
    expect_suppressed(
        "crates/core/src/pool.rs",
        "fn idle(&self) {\n\
         \x20   let guard = self.sleep.lock().unwrap();\n\
         \x20   // lint: allow(lock-discipline, condvar wait must hold its mutex)\n\
         \x20   drop(self.signal.wait(guard).unwrap());\n\
         }\n",
        "lock-discipline",
    );
}

// ------------------------------------------------- float-reduction-order

#[test]
fn float_order_unordered_source_is_error() {
    let out = lint_source(
        "crates/bound/src/x.rs",
        "fn total(m: &HashMap<u32, f64>) -> f64 {\n\
         \x20   let s: f64 = m.values().sum();\n\
         \x20   s\n\
         }\n",
    );
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
    assert_eq!(out.findings[0].rule, "float-reduction-order");
    assert_eq!(out.findings[0].severity, Severity::Error);
}

#[test]
fn float_order_unprovable_source_is_warning() {
    let out = lint_source(
        "crates/bound/src/x.rs",
        "fn total(net: &Net, x: &[f64]) -> f64 {\n\
         \x20   let s: f64 = net.forward(x).iter().sum();\n\
         \x20   s\n\
         }\n",
    );
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
    assert_eq!(out.findings[0].severity, Severity::Warning);
}

#[test]
fn float_order_clean() {
    // Typed ordered bindings, slices, integer sums, min/max folds, and
    // test code are all fine.
    expect_clean(
        "crates/bound/src/x.rs",
        "fn f(xs: &[f64]) -> f64 {\n\
         \x20   let v: Vec<f64> = lower(xs);\n\
         \x20   let a: f64 = v.iter().sum();\n\
         \x20   let b: f64 = xs.iter().map(|x| x * x).sum();\n\
         \x20   let m = v.iter().fold(f64::MIN, |acc, &x| acc.max(x));\n\
         \x20   a + b + m\n\
         }\n\
         fn count(idx: &[usize]) -> usize {\n\
         \x20   idx.iter().sum()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() {\n\
         \x20       let s: f64 = net.forward(&x).iter().sum();\n\
         \x20       assert!(s.abs() < 1.0);\n\
         \x20   }\n\
         }\n",
    );
}

#[test]
fn float_order_out_of_scope() {
    expect_clean(
        "crates/lint/src/x.rs",
        "fn f(net: &Net) -> f64 { net.forward().iter().sum::<f64>() }\n",
    );
}

#[test]
fn float_order_suppressed() {
    expect_suppressed(
        "crates/tensor/src/x.rs",
        "fn norm(&self) -> f64 {\n\
         \x20   // lint: allow(float-reduction-order, data is a Vec in storage order)\n\
         \x20   self.data.iter().map(|v| v * v).sum::<f64>().sqrt()\n\
         }\n",
        "float-reduction-order",
    );
}
