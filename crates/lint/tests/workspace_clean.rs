//! The gate the CI script relies on: a full scan of this workspace's
//! sources, with the committed `lint-baseline.json` applied, must come
//! back clean — every intentional deviation visible either as an
//! audited inline suppression or as a baselined finding with a written
//! note.

use abonn_lint::{apply_baseline, baseline, lint_workspace, report};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

fn committed_baseline() -> baseline::Baseline {
    let path = workspace_root().join("lint-baseline.json");
    let text = std::fs::read_to_string(&path).expect("read committed lint-baseline.json");
    baseline::parse(&text).expect("committed baseline parses and is canonical")
}

#[test]
fn workspace_scan_is_clean_after_baseline() {
    let mut rep = lint_workspace(workspace_root()).expect("scan workspace");
    apply_baseline(&mut rep, &committed_baseline());
    assert!(
        rep.is_clean(),
        "workspace lint found non-baselined violations:\n{}",
        report::human(&rep)
    );
    assert!(
        rep.stale_baseline.is_empty(),
        "baseline entries no longer match any finding; prune them:\n{}",
        report::human(&rep)
    );
}

#[test]
fn committed_baseline_is_canonical_and_annotated() {
    // Every grandfathered finding must carry a real written proof, not
    // the generated placeholder note.
    let base = committed_baseline();
    for e in &base.entries {
        assert!(
            !e.note.contains("grandfathered pre-existing finding"),
            "baseline entry {} still has the placeholder note; write the proof",
            e.fingerprint
        );
        assert!(
            e.note.len() >= 40,
            "baseline entry {} note is too short to be a proof: {:?}",
            e.fingerprint,
            e.note
        );
    }
}

#[test]
fn workspace_scan_covers_the_tree() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    assert!(
        rep.files_scanned >= 90,
        "expected to scan the whole workspace, got {} files",
        rep.files_scanned
    );
}

#[test]
fn audited_sites_are_suppressed_not_silent() {
    // The known wall-clock / atomics / topology / condvar sites must
    // show up as suppressions with reasons — if a refactor moves or
    // removes them, this test documents where the audit trail went.
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    let has = |rule: &str, path: &str| {
        rep.suppressed
            .iter()
            .any(|s| s.rule == rule && s.path == path && !s.reason.is_empty())
    };
    assert!(has("wall-clock-in-engine", "crates/core/src/driver.rs"));
    assert!(has("wall-clock-in-engine", "crates/core/src/portfolio.rs"));
    assert!(has("relaxed-atomics", "crates/core/src/pool.rs"));
    assert!(has("nondeterministic-api", "crates/core/src/pool.rs"));
    // PR 9: the condvar waits hold their mutex by protocol.
    assert!(has("lock-discipline", "crates/core/src/pool.rs"));
    // PR 9: infallible Value-tree serialisation on the wire paths.
    assert!(has("panic-path", "crates/serve/src/protocol.rs"));
    assert!(has("panic-path", "crates/serve/src/server.rs"));
    assert!(has("panic-path", "crates/serve/src/scheduler.rs"));
}

#[test]
fn daemon_sources_are_covered_by_the_determinism_rules() {
    // The serve scopes are directory prefixes or explicit file lists, so
    // the daemon's wire-facing files are covered without a rules edit —
    // this pins that property and the files' existence.
    let rules = abonn_lint::rules::default_rules();
    for path in [
        "crates/serve/src/scheduler.rs",
        "crates/serve/src/persist.rs",
        "crates/serve/src/server.rs",
        "crates/serve/src/store.rs",
    ] {
        assert!(
            workspace_root().join(path).is_file(),
            "{path} moved; update the daemon determinism scopes"
        );
        for rule_name in ["wall-clock-in-engine", "unordered-iteration"] {
            let rule = rules
                .iter()
                .find(|r| r.name == rule_name)
                .expect("rule exists");
            assert!(rule.in_scope(path), "{path} must be in scope of {rule_name}");
        }
    }
    // The PR 9 passes: panic-path pins the wire files plus the vnnlib
    // parser; lock-discipline and float-reduction-order cover the serve
    // daemon and the engine crates.
    let rule = |name: &str| {
        rules
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("rule {name} exists"))
    };
    for path in [
        "crates/serve/src/protocol.rs",
        "crates/serve/src/server.rs",
        "crates/serve/src/scheduler.rs",
        "crates/serve/src/persist.rs",
        "crates/vnnlib/src/parser.rs",
        "crates/vnnlib/src/sexpr.rs",
    ] {
        assert!(
            rule("panic-path").in_scope(path),
            "{path} must be in scope of panic-path"
        );
    }
    assert!(
        !rule("panic-path").in_scope("crates/serve/src/store.rs"),
        "store.rs is below the wire boundary; scope is the explicit file list"
    );
    for path in [
        "crates/serve/src/scheduler.rs",
        "crates/core/src/pool.rs",
        "crates/bench/src/bin/serve.rs",
    ] {
        assert!(
            rule("lock-discipline").in_scope(path),
            "{path} must be in scope of lock-discipline"
        );
    }
    for path in [
        "crates/bound/src/lib.rs",
        "crates/lp/src/simplex.rs",
        "crates/tensor/src/vecops.rs",
        "crates/serve/src/server.rs",
    ] {
        assert!(
            rule("float-reduction-order").in_scope(path),
            "{path} must be in scope of float-reduction-order"
        );
    }
}

#[test]
fn json_report_of_workspace_is_stable_and_parseable() {
    let mut rep = lint_workspace(workspace_root()).expect("scan workspace");
    apply_baseline(&mut rep, &committed_baseline());
    let a = report::json(&rep);
    let mut rep2 = lint_workspace(workspace_root()).expect("scan workspace again");
    apply_baseline(&mut rep2, &committed_baseline());
    let b = report::json(&rep2);
    assert_eq!(a, b, "JSON report must be byte-identical across runs");
    assert!(a.contains("\"active\":0"));
    let s = report::sarif(&rep);
    let s2 = report::sarif(&rep2);
    assert_eq!(s, s2, "SARIF report must be byte-identical across runs");
    assert!(s.contains("\"version\":\"2.1.0\""));
}
