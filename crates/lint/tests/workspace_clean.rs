//! The gate the CI script relies on: a full scan of this workspace's
//! sources must come back clean, with every intentional deviation
//! visible as an audited suppression.

use abonn_lint::{lint_workspace, report};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_scan_is_clean() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    assert!(
        rep.is_clean(),
        "workspace lint found violations:\n{}",
        report::human(&rep)
    );
}

#[test]
fn workspace_scan_covers_the_tree() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    assert!(
        rep.files_scanned >= 90,
        "expected to scan the whole workspace, got {} files",
        rep.files_scanned
    );
}

#[test]
fn audited_sites_are_suppressed_not_silent() {
    // The known wall-clock / atomics / topology sites must show up as
    // suppressions with reasons — if a refactor moves or removes them,
    // this test documents where the audit trail went.
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    let has = |rule: &str, path: &str| {
        rep.suppressed
            .iter()
            .any(|s| s.rule == rule && s.path == path && !s.reason.is_empty())
    };
    assert!(has("wall-clock-in-engine", "crates/core/src/driver.rs"));
    assert!(has("wall-clock-in-engine", "crates/core/src/portfolio.rs"));
    assert!(has("relaxed-atomics", "crates/core/src/pool.rs"));
    assert!(has("nondeterministic-api", "crates/core/src/pool.rs"));
}

#[test]
fn json_report_of_workspace_is_stable_and_parseable() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    let a = report::json(&rep);
    let rep2 = lint_workspace(workspace_root()).expect("scan workspace again");
    let b = report::json(&rep2);
    assert_eq!(a, b, "JSON report must be byte-identical across runs");
    assert!(a.contains("\"active\":0"));
}
