//! The gate the CI script relies on: a full scan of this workspace's
//! sources must come back clean, with every intentional deviation
//! visible as an audited suppression.

use abonn_lint::{lint_workspace, report};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_scan_is_clean() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    assert!(
        rep.is_clean(),
        "workspace lint found violations:\n{}",
        report::human(&rep)
    );
}

#[test]
fn workspace_scan_covers_the_tree() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    assert!(
        rep.files_scanned >= 90,
        "expected to scan the whole workspace, got {} files",
        rep.files_scanned
    );
}

#[test]
fn audited_sites_are_suppressed_not_silent() {
    // The known wall-clock / atomics / topology sites must show up as
    // suppressions with reasons — if a refactor moves or removes them,
    // this test documents where the audit trail went.
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    let has = |rule: &str, path: &str| {
        rep.suppressed
            .iter()
            .any(|s| s.rule == rule && s.path == path && !s.reason.is_empty())
    };
    assert!(has("wall-clock-in-engine", "crates/core/src/driver.rs"));
    assert!(has("wall-clock-in-engine", "crates/core/src/portfolio.rs"));
    assert!(has("relaxed-atomics", "crates/core/src/pool.rs"));
    assert!(has("nondeterministic-api", "crates/core/src/pool.rs"));
}

#[test]
fn daemon_sources_are_covered_by_the_determinism_rules() {
    // The serve scopes are directory prefixes, so files added to the
    // daemon (scheduler, persistence) are covered without a rules edit —
    // this pins that property and the files' existence.
    let rules = abonn_lint::rules::default_rules();
    for path in [
        "crates/serve/src/scheduler.rs",
        "crates/serve/src/persist.rs",
        "crates/serve/src/server.rs",
        "crates/serve/src/store.rs",
    ] {
        assert!(
            workspace_root().join(path).is_file(),
            "{path} moved; update the daemon determinism scopes"
        );
        for rule_name in ["wall-clock-in-engine", "unordered-iteration"] {
            let rule = rules
                .iter()
                .find(|r| r.name == rule_name)
                .expect("rule exists");
            assert!(rule.in_scope(path), "{path} must be in scope of {rule_name}");
        }
    }
}

#[test]
fn json_report_of_workspace_is_stable_and_parseable() {
    let rep = lint_workspace(workspace_root()).expect("scan workspace");
    let a = report::json(&rep);
    let rep2 = lint_workspace(workspace_root()).expect("scan workspace again");
    let b = report::json(&rep2);
    assert_eq!(a, b, "JSON report must be byte-identical across runs");
    assert!(a.contains("\"active\":0"));
}
