//! Harness-level integration: the calibrated suite has the mixed
//! composition the paper's filter produces, and the shared runner records
//! are internally consistent.

use abonn_bench::scenario::{prepare_model, run_instance, Approach};
use abonn_core::Budget;
use abonn_data::zoo::ModelKind;
use std::time::Duration;

#[test]
fn calibrated_suite_mixes_verdicts_and_records_are_consistent() {
    let prepared = prepare_model(ModelKind::MnistL2, 6, 2025);
    assert!(
        prepared.instances.len() >= 4,
        "calibration found too few instances"
    );
    let budget = Budget::with_appver_calls(400).and_wall_limit(Duration::from_secs(5));
    let mut verdicts = std::collections::BTreeSet::new();
    for inst in &prepared.instances {
        let rec = run_instance(&prepared, inst, Approach::ABONN_DEFAULT, &budget);
        assert_eq!(rec.model, "MNIST_L2");
        assert_eq!(rec.instance_id, inst.id);
        assert!(rec.appver_calls >= 1);
        assert!(rec.wall_secs >= 0.0);
        assert!(
            rec.tree_size >= 1 && rec.max_depth <= rec.tree_size,
            "tree stats inconsistent: size {} depth {}",
            rec.tree_size,
            rec.max_depth
        );
        // The calibration discards instances the root call solves, so
        // solved runs must have actually branched (more than one call).
        if rec.solved() {
            assert!(
                rec.appver_calls > 1,
                "instance {} was root-trivial despite calibration",
                inst.id
            );
        }
        verdicts.insert(rec.verdict.clone());
    }
    // The paper's filter yields a mix: within this small budget we expect
    // at least two distinct outcomes across the suite.
    assert!(
        verdicts.len() >= 2,
        "suite composition degenerate: {verdicts:?}"
    );
}

#[test]
fn approaches_never_disagree_on_smoke_suite() {
    let prepared = prepare_model(ModelKind::MnistL4, 4, 77);
    let budget = Budget::with_appver_calls(300).and_wall_limit(Duration::from_secs(5));
    for inst in &prepared.instances {
        let mut solved = Vec::new();
        for approach in Approach::rq1_lineup() {
            let rec = run_instance(&prepared, inst, approach, &budget);
            if rec.solved() {
                solved.push((approach.label(), rec.verdict.clone()));
            }
        }
        for pair in solved.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "{} and {} disagree on instance {}",
                pair[0].0, pair[1].0, inst.id
            );
        }
    }
}
