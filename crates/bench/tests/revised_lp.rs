//! Acceptance check for the revised-simplex pivot engine on an MNIST
//! suite slice.
//!
//! Drives the BaB baseline with the exact triangle-LP relaxation as its
//! `AppVer` on calibrated MNIST instances, once on the revised engine
//! (the default substrate) and once on the dense-tableau engine
//! (`--reference-kernels`), and asserts — on call-based counters only,
//! never wall time — that:
//!
//! * verdicts, search shape, and pivot sequences are identical (the
//!   engines walk the same pivot paths; only the per-pivot work
//!   differs),
//! * the revised engine cuts per-pivot basis-update cell writes by at
//!   least 30% (the measured ratio on this slice is ~0.6).

use abonn_bench::scenario::prepare_model;
use abonn_bound::LpVerifier;
use abonn_core::heuristics::HeuristicKind;
use abonn_core::{BabBaseline, Budget, RobustnessProblem, RunResult, Verifier, WorkerPool};
use abonn_data::zoo::ModelKind;
use abonn_lp::set_reference_solver;
use std::sync::Arc;

fn run_lp_bab(problem: &RobustnessProblem, budget: &Budget) -> RunResult {
    let lp = LpVerifier::new().with_warm_start(true);
    let mut bab = BabBaseline::new(HeuristicKind::DeepSplit, Arc::new(lp));
    bab.warm_start = true;
    bab.with_pool(Arc::new(WorkerPool::new(1)))
        .verify(problem, budget)
}

#[test]
fn revised_simplex_cuts_pivot_cells_on_mnist() {
    let prepared = prepare_model(ModelKind::MnistL2, 2, 2025);
    let budget = Budget::with_appver_calls(10);

    let mut dense_cells = 0usize;
    let mut revised_cells = 0usize;
    let mut pivots = 0usize;
    for instance in &prepared.instances {
        let problem = RobustnessProblem::new(
            &prepared.network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )
        .expect("suite instances are valid specifications");
        set_reference_solver(false);
        let revised = run_lp_bab(&problem, &budget);
        set_reference_solver(true);
        let dense = run_lp_bab(&problem, &budget);
        set_reference_solver(false);

        // The engines must be interchangeable in every observable way
        // except the per-pivot work metric.
        assert_eq!(revised.verdict, dense.verdict, "the engine changed the verdict");
        assert_eq!(revised.stats.appver_calls, dense.stats.appver_calls);
        assert_eq!(revised.stats.nodes_visited, dense.stats.nodes_visited);
        assert_eq!(revised.stats.tree_size, dense.stats.tree_size);
        assert_eq!(revised.stats.max_depth, dense.stats.max_depth);
        assert_eq!(
            revised.stats.lp_pivots, dense.stats.lp_pivots,
            "the engines must walk identical pivot paths"
        );
        assert_eq!(revised.stats.lp_warm_hits, dense.stats.lp_warm_hits);
        assert_eq!(revised.stats.lp_cold_solves, dense.stats.lp_cold_solves);

        dense_cells += dense.stats.lp_pivot_cells;
        revised_cells += revised.stats.lp_pivot_cells;
        pivots += revised.stats.lp_pivots;
    }

    eprintln!(
        "mnist lp slice: {pivots} pivots, {dense_cells} dense cells vs \
         {revised_cells} revised cells"
    );
    assert!(pivots > 0, "suite slice exercised no LP pivots");
    assert!(dense_cells > 0, "dense engine reported no pivot cells");
    assert!(
        revised_cells * 10 <= dense_cells * 7,
        "expected >= 30% per-pivot-work reduction, \
         got {revised_cells} revised vs {dense_cells} dense cells"
    );
}
