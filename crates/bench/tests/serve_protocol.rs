//! End-to-end protocol test: drives the real `serve` binary over a pipe
//! and checks the full query lifecycle — fresh verification, exact
//! repeat, ε-dominated reuse in both directions, malformed input,
//! unknown models — plus the determinism contract: the response stream
//! is byte-identical across `--threads 1` and `--threads 4`.
//!
//! Setting `ABONN_REGEN_GOLDEN=1` regenerates the committed smoke-gate
//! fixtures (`scripts/serve-session.jsonl` and
//! `scripts/serve-session.golden`) that `scripts/ci.sh` byte-diffs
//! against a live run.

use abonn_nn::{Layer, Network, Shape};
use abonn_tensor::Matrix;
use abonn_vnnlib::write_robustness;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// A fixed 2 → ReLU(4) → 3 network, small enough that every conclusive
/// query in the session resolves within its call budget.
fn demo_net() -> Network {
    Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[
                    &[1.0, 0.5],
                    &[-0.5, 1.0],
                    &[0.8, -1.0],
                    &[-1.0, -0.3],
                ]),
                vec![0.1, -0.2, 0.0, 0.3],
            ),
            Layer::relu(),
            Layer::dense(
                Matrix::from_rows(&[
                    &[1.0, 0.2, -0.3, 0.1],
                    &[-0.4, 1.1, 0.2, -0.2],
                    &[0.3, -0.5, 0.9, 0.4],
                ]),
                vec![0.05, 0.0, -0.05],
            ),
        ],
    )
    .unwrap()
}

fn verify_line(id: u64, model_json: &str, center: &[f64], eps: f64, label: usize) -> String {
    let prop = write_robustness(center, eps, label, 3);
    let center_txt = center
        .iter()
        .map(|c| format!("{c:?}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"id\":{id},\"cmd\":\"verify\",\"model\":{model_json},\"property\":{},\
         \"epsilon\":{eps:?},\"center\":[{center_txt}],\"calls\":3000,\"audit\":true}}",
        serde_json::to_string(&prop).unwrap()
    )
}

/// The canonical protocol session: covers every response shape.
fn session_lines() -> Vec<String> {
    let net = demo_net();
    // `to_json` pretty-prints; the wire needs the model on one line.
    let model_json: String = {
        let value: serde_json::Value =
            serde_json::from_str(&abonn_nn::io::to_json(&net).unwrap()).unwrap();
        serde_json::to_string(&value).unwrap()
    };
    let center = [0.6, 0.4];
    let label = net
        .forward(&center)
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let wrong = (label + 1) % 3;
    vec![
        // 1: fresh verification (miss, verified, audited).
        verify_line(1, &model_json, &center, 0.02, label),
        // 2: bit-exact repeat (exact hit, zero engine calls).
        verify_line(2, &model_json, &center, 0.02, label),
        // 3: dominated radius (reuse-unsat, zero engine calls).
        verify_line(3, &model_json, &center, 0.01, label),
        // 4: wrong label — the center itself is a counterexample
        //    (miss, falsified with witness).
        verify_line(4, &model_json, &center, 0.05, wrong),
        // 5: larger radius around the same falsified family
        //    (reuse-sat, witness replayed, zero engine calls).
        verify_line(5, &model_json, &center, 0.08, wrong),
        // 6: not JSON at all.
        "{not json".to_string(),
        // 7: unknown named model.
        r#"{"id":7,"cmd":"verify","model":"missing.json","property":"(p)"}"#.to_string(),
        // 8: property bytes that do not parse.
        format!(
            "{{\"id\":8,\"cmd\":\"verify\",\"model\":{model_json},\
             \"property\":\"(assert (\"}}"
        ),
        // 9: unknown command.
        r#"{"id":9,"cmd":"launch"}"#.to_string(),
        // 10: counters.
        r#"{"id":10,"cmd":"stats"}"#.to_string(),
    ]
}

/// Runs the serve binary over a pipe and returns its stdout.
fn run_session(input: &str, extra_args: &[&str]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("session written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("responses are UTF-8")
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    // Good enough for flat response lines produced by our own renderer.
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .scan(0usize, |depth, (i, c)| {
            match c {
                '[' | '{' => *depth += 1,
                ']' | '}' if *depth > 0 => *depth -= 1,
                ',' | '}' if *depth == 0 => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    Some(&rest[..end])
}

#[test]
fn protocol_session_covers_the_lifecycle() {
    let input = session_lines().join("\n") + "\n";
    let out = run_session(&input, &["--threads", "1"]);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 10, "one response per request:\n{out}");

    // 1: fresh verified miss, audited, inside the requested budget.
    assert_eq!(field(lines[0], "id"), Some("1"));
    assert_eq!(field(lines[0], "verdict"), Some("\"verified\""));
    assert_eq!(field(lines[0], "store"), Some("\"miss\""));
    assert_eq!(field(lines[0], "audit"), Some("\"passed\""));
    assert_eq!(field(lines[0], "clamped"), Some("false"));
    let fresh_calls: u64 = field(lines[0], "appver_calls").unwrap().parse().unwrap();
    assert!(fresh_calls > 0);

    // 2: exact hit — the whole point: zero engine calls.
    assert_eq!(field(lines[1], "verdict"), Some("\"verified\""));
    assert_eq!(field(lines[1], "store"), Some("\"exact\""));
    assert_eq!(field(lines[1], "appver_calls"), Some("0"));
    assert_eq!(field(lines[1], "audit"), Some("\"passed\""));

    // 3: dominated radius served from the UNSAT lattice.
    assert_eq!(field(lines[2], "verdict"), Some("\"verified\""));
    assert_eq!(field(lines[2], "store"), Some("\"reuse-unsat\""));
    assert_eq!(field(lines[2], "appver_calls"), Some("0"));
    assert_eq!(field(lines[2], "source_eps"), Some("0.02"));

    // 4: falsified miss with a concrete witness.
    assert_eq!(field(lines[3], "verdict"), Some("\"falsified\""));
    assert_eq!(field(lines[3], "store"), Some("\"miss\""));
    let witness = field(lines[3], "witness").expect("witness present");
    assert!(witness.starts_with('['), "witness array: {witness}");

    // 5: dominating radius served from the SAT side, witness identical.
    assert_eq!(field(lines[4], "verdict"), Some("\"falsified\""));
    assert_eq!(field(lines[4], "store"), Some("\"reuse-sat\""));
    assert_eq!(field(lines[4], "appver_calls"), Some("0"));
    assert_eq!(field(lines[4], "source_eps"), Some("0.05"));
    assert_eq!(field(lines[4], "witness"), Some(witness));

    // 6–9: malformed inputs are structured errors, never crashes.
    for (i, needle) in [
        (5, "invalid JSON"),
        (6, "unknown model"),
        (7, "invalid property"),
        (8, "unknown cmd"),
    ] {
        assert_eq!(
            field(lines[i], "status"),
            Some("\"error\""),
            "line {i}: {}",
            lines[i]
        );
        assert!(
            lines[i].contains(needle),
            "line {i} should mention '{needle}': {}",
            lines[i]
        );
    }

    // 10: counters match the story above (queries counts every parsed
    // verify request, including the two that errored on model/property).
    assert_eq!(field(lines[9], "queries"), Some("7"));
    assert!(lines[9].contains("\"exact_hits\":1"), "{}", lines[9]);
    assert!(lines[9].contains("\"reuse_unsat\":1"), "{}", lines[9]);
    assert!(lines[9].contains("\"reuse_sat\":1"), "{}", lines[9]);
    assert!(lines[9].contains("\"inserts\":2"), "{}", lines[9]);
}

#[test]
fn response_stream_is_byte_identical_across_thread_counts() {
    let input = session_lines().join("\n") + "\n";
    let single = run_session(&input, &["--threads", "1"]);
    let multi = run_session(&input, &["--threads", "4"]);
    assert_eq!(
        single, multi,
        "serving must be a pure function of the request stream"
    );
}

#[test]
fn store_stats_artifact_is_written() {
    let input = session_lines().join("\n") + "\n";
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve-store-stats.json");
    let _ = std::fs::remove_file(&path);
    run_session(
        &input,
        &["--threads", "1", "--store-stats", path.to_str().unwrap()],
    );
    let stats = std::fs::read_to_string(&path).expect("stats artifact written");
    assert!(stats.contains("\"appver_calls_total\""), "{stats}");
    assert!(stats.contains("\"reuse_unsat\": 1"), "{stats}");
}

/// Regenerates the committed CI smoke fixtures when asked to.
#[test]
fn regen_golden_fixtures_when_requested() {
    if std::env::var("ABONN_REGEN_GOLDEN").as_deref() != Ok("1") {
        return;
    }
    let scripts = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    let input = session_lines().join("\n") + "\n";
    // The committed golden is produced at --threads 2 so the CI gate also
    // exercises the pooled configuration.
    let out = run_session(&input, &["--threads", "2"]);
    std::fs::write(scripts.join("serve-session.jsonl"), &input).unwrap();
    std::fs::write(scripts.join("serve-session.golden"), &out).unwrap();
    eprintln!("regenerated scripts/serve-session.{{jsonl,golden}}");
}
