//! Acceptance check for the warm-started-LP + stable-neuron-masking
//! optimisations on an MNIST suite slice.
//!
//! Drives the BaB baseline with the exact triangle-LP relaxation as its
//! `AppVer` on calibrated MNIST instances, once with warm starting and
//! once cold, and asserts — on call-based counters only, never wall
//! time — that:
//!
//! * verdicts and search shape are identical (warm starting is a pure
//!   work optimisation),
//! * warm starting cuts total simplex pivots by at least 40%,
//! * stable-neuron masking skips at least 30% of back-substitution rows.

use abonn_bench::scenario::prepare_model;
use abonn_bound::LpVerifier;
use abonn_core::heuristics::HeuristicKind;
use abonn_core::{BabBaseline, Budget, RobustnessProblem, RunResult, Verifier, WorkerPool};
use abonn_data::zoo::ModelKind;
use std::sync::Arc;

fn run_lp_bab(warm: bool, problem: &RobustnessProblem, budget: &Budget) -> RunResult {
    let lp = LpVerifier::new().with_warm_start(warm);
    let mut bab = BabBaseline::new(HeuristicKind::DeepSplit, Arc::new(lp));
    bab.warm_start = warm;
    bab.with_pool(Arc::new(WorkerPool::new(1))).verify(problem, budget)
}

#[test]
fn warm_start_cuts_pivots_and_masking_skips_rows_on_mnist() {
    let prepared = prepare_model(ModelKind::MnistL2, 2, 2025);
    let budget = Budget::with_appver_calls(10);

    let mut warm_pivots = 0usize;
    let mut cold_pivots = 0usize;
    let mut warm_hits = 0usize;
    let mut rows_skipped = 0usize;
    let mut rows_total = 0usize;
    for instance in &prepared.instances {
        let problem = RobustnessProblem::new(
            &prepared.network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )
        .expect("suite instances are valid specifications");
        let warm = run_lp_bab(true, &problem, &budget);
        let cold = run_lp_bab(false, &problem, &budget);

        // Warm starting must not change what the search does — only how
        // much simplex work each LP solve needs.
        assert_eq!(warm.verdict, cold.verdict, "warm starting changed the verdict");
        assert_eq!(warm.stats.appver_calls, cold.stats.appver_calls);
        assert_eq!(warm.stats.nodes_visited, cold.stats.nodes_visited);
        assert_eq!(warm.stats.tree_size, cold.stats.tree_size);
        assert_eq!(warm.stats.max_depth, cold.stats.max_depth);
        assert_eq!(
            warm.stats.backsub_rows_skipped,
            cold.stats.backsub_rows_skipped,
            "masking is independent of warm starting"
        );

        warm_pivots += warm.stats.lp_pivots;
        cold_pivots += cold.stats.lp_pivots;
        warm_hits += warm.stats.lp_warm_hits;
        assert_eq!(cold.stats.lp_warm_hits, 0, "cold runs must never warm-start");
        rows_skipped += warm.stats.backsub_rows_skipped;
        rows_total += warm.stats.backsub_rows_total;
    }

    eprintln!(
        "mnist lp slice: {cold_pivots} cold pivots vs {warm_pivots} warm \
         ({warm_hits} warm hits), {rows_skipped}/{rows_total} backsub rows skipped"
    );
    assert!(warm_hits > 0, "no LP solve was warm-started");
    assert!(cold_pivots > 0, "suite slice exercised no LP solves");
    assert!(
        warm_pivots * 10 <= cold_pivots * 6,
        "expected >= 40% pivot reduction, got {warm_pivots} warm vs {cold_pivots} cold"
    );
    assert!(
        rows_skipped * 10 >= rows_total * 3,
        "expected >= 30% of back-substitution rows skipped, \
         got {rows_skipped}/{rows_total}"
    );
}
