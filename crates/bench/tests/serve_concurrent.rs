//! Concurrent-serving determinism: N TCP clients with distinct
//! workloads, each byte-identical to a solo stdin replay.
//!
//! The daemon admits request waves from every connection onto one
//! shared server; because every store/model effect flushes in input
//! order per wave, and the two clients' workloads touch disjoint model
//! families, each client's response stream must equal the stream a
//! fresh daemon would produce for that client alone — for every
//! `--threads` × `--batch` combination.
//!
//! Setting `ABONN_REGEN_GOLDEN=1` regenerates the committed fixtures
//! (`scripts/serve-client-{a,b}.jsonl` and `.golden`) that
//! `scripts/ci.sh` replays through the real TCP daemon with two
//! concurrent `serve_client` processes.

use abonn_nn::{Layer, Network, Shape};
use abonn_tensor::Matrix;
use abonn_vnnlib::write_robustness;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// A per-client 2 → ReLU(4) → 3 network; `tweak` shifts the biases so
/// every client owns a distinct model (disjoint store families).
fn client_net(tweak: f64) -> Network {
    Network::new(
        Shape::Flat(2),
        vec![
            Layer::dense(
                Matrix::from_rows(&[
                    &[1.0, 0.5],
                    &[-0.5, 1.0],
                    &[0.8, -1.0],
                    &[-1.0, -0.3],
                ]),
                vec![0.1 + tweak, -0.2, tweak, 0.3],
            ),
            Layer::relu(),
            Layer::dense(
                Matrix::from_rows(&[
                    &[1.0, 0.2, -0.3, 0.1],
                    &[-0.4, 1.1, 0.2, -0.2],
                    &[0.3, -0.5, 0.9, 0.4],
                ]),
                vec![0.05, 0.0, -0.05],
            ),
        ],
    )
    .unwrap()
}

fn verify_line(id: u64, model_json: &str, center: &[f64], eps: f64, label: usize) -> String {
    let prop = write_robustness(center, eps, label, 3);
    let center_txt = center
        .iter()
        .map(|c| format!("{c:?}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"id\":{id},\"cmd\":\"verify\",\"model\":{model_json},\"property\":{},\
         \"epsilon\":{eps:?},\"center\":[{center_txt}],\"calls\":3000,\"audit\":true}}",
        serde_json::to_string(&prop).unwrap()
    )
}

/// One client's session: fresh miss, exact repeat, dominated reuse,
/// falsified miss, SAT reuse, a blank line, and a garbage line. No
/// `stats` — global counters legitimately depend on the interleaving.
fn client_session(tweak: f64) -> String {
    let net = client_net(tweak);
    let model_json: String = {
        let value: serde_json::Value =
            serde_json::from_str(&abonn_nn::io::to_json(&net).unwrap()).unwrap();
        serde_json::to_string(&value).unwrap()
    };
    let center = [0.6, 0.4];
    let label = net
        .forward(&center)
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let wrong = (label + 1) % 3;
    let lines = [
        verify_line(1, &model_json, &center, 0.02, label),
        verify_line(2, &model_json, &center, 0.02, label),
        verify_line(3, &model_json, &center, 0.01, label),
        String::new(),
        verify_line(4, &model_json, &center, 0.05, wrong),
        verify_line(5, &model_json, &center, 0.08, wrong),
        "{not json".to_string(),
    ];
    lines.join("\n") + "\n"
}

/// The daemon under test, killed on drop so no test leaves a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(extra_args: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(extra_args)
        .args(["--tcp", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve binary spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon announces its address before EOF")
            .expect("stderr is readable");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address after prefix")
                .to_string();
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

/// Streams a whole session over one TCP connection, returns the
/// daemon's full response stream for it.
fn tcp_session(addr: &str, session: &str) -> String {
    let stream = TcpStream::connect(addr).expect("client connects");
    let mut reader = BufReader::new(stream.try_clone().expect("stream clones"));
    let payload = session.to_string();
    let sender = std::thread::spawn(move || {
        let mut stream = stream;
        stream.write_all(payload.as_bytes()).expect("session sent");
        stream.flush().expect("session flushed");
        stream
            .shutdown(Shutdown::Write)
            .expect("write half closes");
    });
    let mut out = String::new();
    reader.read_to_string(&mut out).expect("responses read");
    sender.join().expect("sender thread");
    out
}

/// Solo reference: the same session through a fresh stdin-mode daemon.
fn solo_replay(session: &str, extra_args: &[&str]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(session.as_bytes())
        .expect("session written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("responses are UTF-8")
}

#[test]
fn concurrent_clients_match_their_solo_replays() {
    let sessions = [client_session(0.0), client_session(0.17)];
    for threads in ["1", "4"] {
        for batch in ["1", "8"] {
            let args = ["--threads", threads, "--batch", batch];
            let solo: Vec<String> = sessions
                .iter()
                .map(|s| solo_replay(s, &args))
                .collect();
            let daemon = spawn_daemon(&args);
            let got: Vec<String> = std::thread::scope(|scope| {
                let handles: Vec<_> = sessions
                    .iter()
                    .map(|s| scope.spawn(|| tcp_session(&daemon.addr, s)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect()
            });
            for (client, (live, reference)) in got.iter().zip(&solo).enumerate() {
                assert_eq!(
                    live, reference,
                    "client {client} diverged from its solo replay at \
                     --threads {threads} --batch {batch}"
                );
            }
        }
    }
}

#[test]
fn serve_client_binary_relays_the_stream_faithfully() {
    let session = client_session(0.31);
    let reference = solo_replay(&session, &["--threads", "2", "--batch", "4"]);
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve-client-session.jsonl");
    std::fs::write(&path, &session).expect("session file written");
    let daemon = spawn_daemon(&["--threads", "2", "--batch", "4"]);
    let out = Command::new(env!("CARGO_BIN_EXE_serve_client"))
        .args(["--addr", &daemon.addr])
        .arg(&path)
        .output()
        .expect("serve_client runs");
    assert!(
        out.status.success(),
        "serve_client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8(out.stdout).expect("UTF-8"), reference);
}

/// Regenerates the committed CI fixtures for the concurrent gate.
#[test]
fn regen_client_fixtures_when_requested() {
    if std::env::var("ABONN_REGEN_GOLDEN").as_deref() != Ok("1") {
        return;
    }
    let scripts = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts");
    for (name, tweak) in [("a", 0.0), ("b", 0.17)] {
        let session = client_session(tweak);
        let golden = solo_replay(&session, &["--threads", "2"]);
        std::fs::write(scripts.join(format!("serve-client-{name}.jsonl")), &session).unwrap();
        std::fs::write(scripts.join(format!("serve-client-{name}.golden")), &golden).unwrap();
        eprintln!("regenerated scripts/serve-client-{name}.{{jsonl,golden}}");
    }
}
