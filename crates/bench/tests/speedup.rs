//! Timed integration check for the parallel engine: on a machine with at
//! least 4 cores, running the smoke-scale suite on a 4-lane pool must be
//! at least 1.5x faster than the single-lane run. On smaller machines the
//! check is skipped (a pool cannot beat the hardware it runs on).

use abonn_bench::scenario::{prepare_model, run_grid, Approach};
use abonn_core::{Budget, WorkerPool};
use abonn_data::zoo::ModelKind;
use std::sync::Arc;
use std::time::Instant;

#[test]
fn four_threads_beat_one_by_1_5x_on_smoke_suite() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("skipping speedup check: only {cores} core(s) available, need 4");
        return;
    }

    let prepared = vec![
        prepare_model(ModelKind::MnistL2, 4, 2025),
        prepare_model(ModelKind::CifarBase, 4, 2025),
    ];
    let approaches = Approach::rq1_lineup();
    let budget = Budget::with_appver_calls(400);

    // Warm-up pass so lazy model/state initialisation is off the clock.
    let _ = run_grid(
        &prepared,
        &approaches,
        &budget,
        &Arc::new(WorkerPool::new(1)),
    );

    let t0 = Instant::now();
    let seq = run_grid(
        &prepared,
        &approaches,
        &budget,
        &Arc::new(WorkerPool::new(1)),
    );
    let t_seq = t0.elapsed();

    let t0 = Instant::now();
    let par = run_grid(
        &prepared,
        &approaches,
        &budget,
        &Arc::new(WorkerPool::new(4)),
    );
    let t_par = t0.elapsed();

    assert_eq!(seq.len(), par.len());
    let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
    eprintln!(
        "suite wall clock: 1 thread {:.3}s, 4 threads {:.3}s ({speedup:.2}x)",
        t_seq.as_secs_f64(),
        t_par.as_secs_f64()
    );
    assert!(
        speedup >= 1.5,
        "expected >= 1.5x speedup at 4 threads, measured {speedup:.2}x"
    );
}
