//! The parallel suite runner is observably independent of the pool size:
//! per-record results match field-for-field (wall time aside), persisted
//! reports are byte-identical, and aggregate statistics agree.

use abonn_bench::report::save_records;
use abonn_bench::scenario::{prepare_model, run_grid, Approach};
use abonn_core::{Budget, WorkerPool};
use abonn_data::zoo::ModelKind;
use std::sync::Arc;

#[test]
fn grid_records_and_reports_are_identical_across_thread_counts() {
    let prepared = vec![prepare_model(ModelKind::MnistL2, 3, 2025)];
    let approaches = Approach::rq1_lineup();
    // Call-only budget: a wall limit would make verdicts timing-dependent.
    let budget = Budget::with_appver_calls(300);

    let seq = run_grid(
        &prepared,
        &approaches,
        &budget,
        &Arc::new(WorkerPool::new(1)),
    );
    let par = run_grid(
        &prepared,
        &approaches,
        &budget,
        &Arc::new(WorkerPool::new(3)),
    );

    assert!(!seq.is_empty(), "grid produced no records");
    assert_eq!(seq.len(), par.len(), "record counts differ");
    for (a, b) in seq.iter().zip(&par) {
        // Everything except wall time must match exactly; wall time is
        // the one field parallelism is allowed to change.
        assert_eq!(a.model, b.model);
        assert_eq!(a.approach, b.approach);
        assert_eq!(a.instance_id, b.instance_id);
        assert_eq!(a.epsilon, b.epsilon);
        assert_eq!(a.verdict, b.verdict, "verdict diverged on {} #{}", a.model, a.instance_id);
        assert_eq!(a.appver_calls, b.appver_calls, "calls diverged on #{}", a.instance_id);
        assert_eq!(a.nodes_visited, b.nodes_visited);
        assert_eq!(a.tree_size, b.tree_size);
        assert_eq!(a.max_depth, b.max_depth);
    }

    // Persisted artifacts must be byte-identical (wall time is skipped on
    // serialisation precisely so this holds).
    let dir = std::env::temp_dir().join("abonn-parallel-grid-test");
    std::fs::create_dir_all(&dir).unwrap();
    let p1 = dir.join("seq.json");
    let p3 = dir.join("par.json");
    save_records(&p1, &seq).unwrap();
    save_records(&p3, &par).unwrap();
    let b1 = std::fs::read(&p1).unwrap();
    let b3 = std::fs::read(&p3).unwrap();
    assert_eq!(b1, b3, "persisted reports differ between 1 and 3 threads");
    let _ = std::fs::remove_file(p1);
    let _ = std::fs::remove_file(p3);

    // Aggregated run statistics over the merged parallel results agree
    // with the sequential totals.
    let total = |rs: &[abonn_bench::scenario::InstanceRecord]| {
        rs.iter().fold((0usize, 0usize, 0usize, 0usize), |acc, r| {
            (
                acc.0 + r.appver_calls,
                acc.1 + r.nodes_visited,
                acc.2 + r.tree_size,
                acc.3.max(r.max_depth),
            )
        })
    };
    assert_eq!(total(&seq), total(&par), "aggregate stats diverged");
}
