//! End-to-end verification benchmarks: the three approaches on fixed
//! MNIST-like instances (one certifiable, one falsifiable).

use abonn_bench::scenario::{prepare_model, Approach};
use abonn_core::{Budget, RobustnessProblem};
use abonn_data::zoo::ModelKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_approaches(c: &mut Criterion) {
    let prepared = prepare_model(ModelKind::MnistL2, 4, 1);
    let budget = Budget::with_appver_calls(120);
    // Smallest and largest radius in the prepared suite: the former leans
    // certifiable, the latter falsifiable.
    let mut instances = prepared.instances.clone();
    instances.sort_by(|a, b| a.epsilon.total_cmp(&b.epsilon));
    let scenarios = [
        ("tight_eps", instances.first().cloned()),
        ("wide_eps", instances.last().cloned()),
    ];

    for (tag, instance) in scenarios {
        let Some(instance) = instance else { continue };
        let problem = RobustnessProblem::new(
            &prepared.network,
            instance.input.clone(),
            instance.label,
            instance.epsilon,
        )
        .expect("valid instance");
        let mut group = c.benchmark_group(format!("end_to_end/{tag}"));
        group.sample_size(10);
        for approach in Approach::rq1_lineup() {
            group.bench_function(approach.label(), |b| {
                b.iter(|| black_box(approach.build().verify(&problem, &budget)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_approaches);
criterion_main!(benches);
