//! Benchmarks of the approximated verifiers — the per-node cost that
//! dominates every BaB approach (the paper's "expensive process of
//! problem solving").

use abonn_bound::{AlphaCrown, AppVer, DeepPoly, Ibp, LpVerifier, SplitSet};
use abonn_core::RobustnessProblem;
use abonn_data::zoo::ModelKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn problem_for(kind: ModelKind) -> RobustnessProblem {
    let (net, data) = kind.trained_model(1);
    RobustnessProblem::new(&net, data.inputs[0].clone(), data.labels[0], 0.02)
        .expect("valid instance")
}

fn bench_verifier_zoo(c: &mut Criterion) {
    let problem = problem_for(ModelKind::MnistL2);
    let splits = SplitSet::new();
    let mut group = c.benchmark_group("appver/mnist_l2");
    group.sample_size(20);
    group.bench_function("ibp", |b| {
        b.iter(|| black_box(Ibp::new().analyze(problem.margin_net(), problem.region(), &splits)))
    });
    group.bench_function("deeppoly", |b| {
        b.iter(|| {
            black_box(DeepPoly::new().analyze(problem.margin_net(), problem.region(), &splits))
        })
    });
    group.bench_function("alpha_crown", |b| {
        b.iter(|| {
            black_box(AlphaCrown::default().analyze(
                problem.margin_net(),
                problem.region(),
                &splits,
            ))
        })
    });
    group.bench_function("lp", |b| {
        b.iter(|| {
            black_box(LpVerifier::new().analyze(problem.margin_net(), problem.region(), &splits))
        })
    });
    group.finish();
}

fn bench_deeppoly_per_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("appver/deeppoly_by_model");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        let problem = problem_for(kind);
        let splits = SplitSet::new();
        group.bench_function(kind.paper_name(), |b| {
            b.iter(|| {
                black_box(DeepPoly::new().analyze(problem.margin_net(), problem.region(), &splits))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verifier_zoo, bench_deeppoly_per_model);
criterion_main!(benches);
