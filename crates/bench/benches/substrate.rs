//! Micro-benchmarks for the substrate crates (tensor, LP, tree ops,
//! lowering).

use abonn_bound::NeuronId;
use abonn_core::{BabTree, NodeId};
use abonn_lp::{Problem, Relation, Sense};
use abonn_nn::{lowering, Conv2d};
use abonn_tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(64, 64, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
    let b = Matrix::from_fn(64, 64, |i, j| ((i * 5 + j * 11) % 17) as f64 - 8.0);
    c.bench_function("tensor/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(black_box(&b))))
    });
}

fn bench_lp(c: &mut Criterion) {
    c.bench_function("lp/simplex_20var_10row", |bench| {
        bench.iter(|| {
            let mut p = Problem::new(20, Sense::Minimize);
            let obj: Vec<f64> = (0..20).map(|i| ((i % 5) as f64) - 2.0).collect();
            p.set_objective(&obj);
            for j in 0..20 {
                p.set_bounds(j, -1.0, 1.0);
            }
            for r in 0..10 {
                let row: Vec<f64> = (0..20).map(|j| (((r + j) % 7) as f64) - 3.0).collect();
                p.add_row(&row, Relation::Le, 5.0);
            }
            black_box(p.solve().expect("solvable"))
        })
    });
}

fn bench_tree_ops(c: &mut Criterion) {
    c.bench_function("core/tree_expand_512", |bench| {
        bench.iter(|| {
            let mut tree = BabTree::new(-1.0);
            let mut frontier = vec![NodeId::ROOT];
            let mut neuron = 0usize;
            while tree.len() < 512 {
                let node = frontier.remove(0);
                let (a, b) = tree.expand(node, NeuronId::new(0, neuron), -0.5, -0.7);
                tree.back_propagate(node);
                frontier.push(a);
                frontier.push(b);
                neuron += 1;
            }
            black_box(tree.len())
        })
    });
}

fn bench_conv_lowering(c: &mut Criterion) {
    let conv = Conv2d::new(3, 6, 3, 3, 1, 1, vec![0.01; 162], vec![0.0; 6]);
    c.bench_function("nn/conv_to_matrix_8x8", |bench| {
        bench.iter(|| black_box(lowering::conv_to_matrix(black_box(&conv), 8, 8)))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_lp,
    bench_tree_ops,
    bench_conv_lowering
);
criterion_main!(benches);
