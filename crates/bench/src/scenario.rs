//! Shared experiment runner: trained models, instances, approaches, and
//! per-instance run records.

use abonn_core::{
    AbonnConfig, AbonnVerifier, BabBaseline, Budget, CrownStyle, RobustnessProblem, Verdict,
    Verifier, WorkerPool,
};
use abonn_data::{suite, zoo::ModelKind, SuiteConfig, VerificationInstance};
use abonn_nn::Network;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Experiment size: how many instances per model and how big the budgets
/// are. `Smoke` is CI-sized, `Default` is the laptop-scale reproduction,
/// `Full` approaches the paper's instance counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few instances per model, small budgets (seconds total).
    Smoke,
    /// The default reproduction scale (minutes total).
    Default,
    /// As close to the paper's 552 instances as a laptop allows.
    Full,
}

impl Scale {
    /// Parses `smoke` / `default` / `full`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Instances per model.
    #[must_use]
    pub fn per_model(&self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Default => 8,
            Scale::Full => 20,
        }
    }

    /// Per-instance budget.
    #[must_use]
    pub fn budget(&self) -> Budget {
        // Call-only on purpose: AppVer calls are the paper's cost unit and
        // are machine-independent, so suite reports are a pure function of
        // (scale, seed) — byte-identical across reruns, machines, and
        // `--threads` values. A wall limit would time out at a
        // load-dependent call count and break that. Per-instance wall
        // budgets remain supported (`Budget::and_wall_limit`) for callers
        // that want them.
        match self {
            Scale::Smoke => Budget::with_appver_calls(200),
            Scale::Default => Budget::with_appver_calls(1_500),
            Scale::Full => Budget::with_appver_calls(4_000),
        }
    }

    /// Lowercase name used in cache-file paths.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }
}

/// One of the three compared approaches (plus parameterised ABONN
/// variants for the RQ2 sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Approach {
    /// Breadth-first BaB (the paper's `BaB-baseline`).
    BabBaseline,
    /// αβ-CROWN-style: PGD pre-attack + best-first over α-bounds.
    CrownStyle,
    /// ABONN with the given hyperparameters `(λ, c)`.
    Abonn {
        /// Potentiality weight λ.
        lambda: f64,
        /// UCB1 exploration constant c.
        c: f64,
    },
}

impl Approach {
    /// ABONN with the paper's default hyperparameters λ = 0.5, c = 0.2.
    pub const ABONN_DEFAULT: Approach = Approach::Abonn {
        lambda: 0.5,
        c: 0.2,
    };

    /// The three approaches of Table II, in the paper's column order.
    #[must_use]
    pub fn rq1_lineup() -> Vec<Approach> {
        vec![
            Approach::BabBaseline,
            Approach::CrownStyle,
            Approach::ABONN_DEFAULT,
        ]
    }

    /// Column label used in reports (matches the paper's terminology).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Approach::BabBaseline => "BaB-baseline".into(),
            Approach::CrownStyle => "ab-CROWN".into(),
            Approach::Abonn { lambda, c } => {
                if (*lambda - 0.5).abs() < 1e-12 && (*c - 0.2).abs() < 1e-12 {
                    "ABONN".into()
                } else {
                    format!("ABONN(l={lambda},c={c})")
                }
            }
        }
    }

    /// Instantiates the verifier.
    ///
    /// ABONN and BaB-baseline share the Planet-style (zero-slope) DeepPoly
    /// relaxation: at this reproduction's reduced network scale the
    /// adaptive relaxation is so tight that BaB trees collapse to a handful
    /// of nodes, hiding exactly the exploration-order effects the paper
    /// studies; the looser relaxation restores the relative
    /// over-approximation the paper's verifiers exhibit on full-size
    /// networks (see `DESIGN.md` §2). The CROWN-style baseline keeps its
    /// α-optimised bounds — its sophistication is the point of that
    /// comparison.
    #[must_use]
    pub fn build(&self) -> Box<dyn Verifier> {
        self.build_with_pool(Arc::new(WorkerPool::inline()))
    }

    /// Like [`Approach::build`], with the verifier's intra-run parallelism
    /// (the paired phase analyses of ABONN, the frontier batches of
    /// BaB-baseline) running on `pool`. Results are identical to
    /// [`Approach::build`] for any pool size; the CROWN-style baseline is
    /// sequential by design and ignores the pool.
    #[must_use]
    pub fn build_with_pool(&self, pool: Arc<WorkerPool>) -> Box<dyn Verifier> {
        self.build_configured(pool, true, true)
    }

    /// Like [`Approach::build_with_pool`], additionally choosing whether
    /// the searches thread parent bound prefixes into child nodes
    /// (`bound_cache`) and whether the exact-LP leaf solver reuses simplex
    /// bases (`warm_start`). Verdicts and persisted records are bit-for-bit
    /// identical either way — both switches only change how much bounding
    /// work is executed.
    #[must_use]
    pub fn build_configured(
        &self,
        pool: Arc<WorkerPool>,
        bound_cache: bool,
        warm_start: bool,
    ) -> Box<dyn Verifier> {
        let planet = || std::sync::Arc::new(abonn_bound::DeepPoly::planet());
        match self {
            Approach::BabBaseline => {
                let mut bab =
                    BabBaseline::new(abonn_core::heuristics::HeuristicKind::DeepSplit, planet());
                bab.incremental = bound_cache;
                bab.warm_start = warm_start;
                Box::new(bab.with_pool(pool))
            }
            Approach::CrownStyle => Box::new(CrownStyle::default()),
            Approach::Abonn { lambda, c } => Box::new(
                AbonnVerifier::new(
                    AbonnConfig {
                        lambda: *lambda,
                        c: *c,
                        incremental: bound_cache,
                        warm_start,
                        ..AbonnConfig::default()
                    },
                    planet(),
                )
                .with_pool(pool),
            ),
        }
    }
}

/// One (instance × approach) measurement, serialisable for caching and
/// CSV export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Paper-style model name.
    pub model: String,
    /// Approach label.
    pub approach: String,
    /// Instance id within the model's suite.
    pub instance_id: usize,
    /// Perturbation radius.
    pub epsilon: f64,
    /// `"verified"`, `"falsified"`, or `"timeout"`.
    pub verdict: String,
    /// `AppVer` calls spent.
    pub appver_calls: usize,
    /// Sub-problems visited.
    pub nodes_visited: usize,
    /// Final BaB tree size.
    pub tree_size: usize,
    /// Deepest split reached.
    pub max_depth: usize,
    /// Measured wall seconds. In memory only: wall time varies run to run
    /// and machine to machine, so it is excluded from the persisted
    /// JSON/CSV artefacts, which must be byte-identical across reruns and
    /// thread counts (reports cost in `AppVer` calls instead; this field
    /// deserialises as zero).
    #[serde(skip)]
    pub wall_secs: f64,
}

impl InstanceRecord {
    /// Returns `true` when the run ended with a conclusive verdict.
    #[must_use]
    pub fn solved(&self) -> bool {
        self.verdict != "timeout"
    }
}

fn verdict_str(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Falsified(_) => "falsified",
        Verdict::Timeout => "timeout",
    }
}

/// A trained model with its verification instances.
pub struct PreparedModel {
    /// Which benchmark model.
    pub kind: ModelKind,
    /// The trained network.
    pub network: Network,
    /// The calibrated instances.
    pub instances: Vec<VerificationInstance>,
}

/// Trains `kind` and builds its instance suite (deterministic in `seed`).
#[must_use]
pub fn prepare_model(kind: ModelKind, per_model: usize, seed: u64) -> PreparedModel {
    let (network, _train_data) = kind.trained_model(seed);
    let config = SuiteConfig {
        per_model,
        seed: seed ^ 0xBEEF,
    };
    let instances = suite::calibrated_instances(kind, &network, &config);
    PreparedModel {
        kind,
        network,
        instances,
    }
}

/// Like [`prepare_model`], but cached on disk: training and radius
/// calibration dominate every binary's startup, so the trained weights and
/// instances are persisted under `dir` and reloaded on later runs with the
/// same `(kind, per_model, seed)`.
#[must_use]
pub fn prepare_model_cached(
    kind: ModelKind,
    per_model: usize,
    seed: u64,
    dir: &std::path::Path,
) -> PreparedModel {
    #[derive(Serialize, Deserialize)]
    struct Cached {
        network: Network,
        instances: Vec<CachedInstance>,
    }
    #[derive(Serialize, Deserialize)]
    struct CachedInstance {
        id: usize,
        input: Vec<f64>,
        label: usize,
        epsilon: f64,
    }
    let path = dir.join(format!(
        "model-{}-n{}-s{}.json",
        kind.paper_name(),
        per_model,
        seed
    ));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(cached) = serde_json::from_str::<Cached>(&text) {
            return PreparedModel {
                kind,
                network: cached.network,
                instances: cached
                    .instances
                    .into_iter()
                    .map(|i| VerificationInstance {
                        model: kind,
                        id: i.id,
                        input: i.input,
                        label: i.label,
                        epsilon: i.epsilon,
                    })
                    .collect(),
            };
        }
    }
    let prepared = prepare_model(kind, per_model, seed);
    let cached = Cached {
        network: prepared.network.clone(),
        instances: prepared
            .instances
            .iter()
            .map(|i| CachedInstance {
                id: i.id,
                input: i.input.clone(),
                label: i.label,
                epsilon: i.epsilon,
            })
            .collect(),
    };
    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(json) = serde_json::to_string(&cached) {
            let _ = std::fs::write(&path, json);
        }
    }
    prepared
}

/// Prepares every benchmark model once (training is the expensive part),
/// using the disk cache in `dir`.
#[must_use]
pub fn prepare_all(scale: Scale, seed: u64, dir: &std::path::Path) -> Vec<PreparedModel> {
    ModelKind::ALL
        .iter()
        .map(|&kind| prepare_model_cached(kind, scale.per_model(), seed, dir))
        .collect()
}

/// Runs one approach on one instance.
///
/// # Panics
///
/// Panics if the instance is inconsistent with the prepared network (never
/// the case for instances from [`prepare_model`]).
#[must_use]
pub fn run_instance(
    prepared: &PreparedModel,
    instance: &VerificationInstance,
    approach: Approach,
    budget: &Budget,
) -> InstanceRecord {
    run_instance_pooled(
        prepared,
        instance,
        approach,
        budget,
        &Arc::new(WorkerPool::inline()),
    )
}

/// Like [`run_instance`], with the verifier's intra-run parallelism on
/// `pool`. The record is identical for any pool size (apart from the
/// in-memory `wall_secs`).
///
/// # Panics
///
/// Panics if the instance is inconsistent with the prepared network.
#[must_use]
pub fn run_instance_pooled(
    prepared: &PreparedModel,
    instance: &VerificationInstance,
    approach: Approach,
    budget: &Budget,
    pool: &Arc<WorkerPool>,
) -> InstanceRecord {
    run_instance_configured(prepared, instance, approach, budget, pool, true, true)
}

/// Like [`run_instance_pooled`], additionally choosing whether incremental
/// bound caching (`bound_cache`) and LP warm starting (`warm_start`) are
/// used; the record is identical either way.
///
/// # Panics
///
/// Panics if the instance is inconsistent with the prepared network.
#[must_use]
pub fn run_instance_configured(
    prepared: &PreparedModel,
    instance: &VerificationInstance,
    approach: Approach,
    budget: &Budget,
    pool: &Arc<WorkerPool>,
    bound_cache: bool,
    warm_start: bool,
) -> InstanceRecord {
    let problem = RobustnessProblem::new(
        &prepared.network,
        instance.input.clone(),
        instance.label,
        instance.epsilon,
    )
    .expect("suite instances are valid specifications");
    let verifier = approach.build_configured(Arc::clone(pool), bound_cache, warm_start);
    let result = verifier.verify(&problem, budget);
    InstanceRecord {
        model: prepared.kind.paper_name().to_string(),
        approach: approach.label(),
        instance_id: instance.id,
        epsilon: instance.epsilon,
        verdict: verdict_str(&result.verdict).to_string(),
        appver_calls: result.stats.appver_calls,
        nodes_visited: result.stats.nodes_visited,
        tree_size: result.stats.tree_size,
        max_depth: result.stats.max_depth,
        wall_secs: result.stats.wall.as_secs_f64(),
    }
}

/// Runs the full `(models × approaches × instances)` grid on `pool`,
/// printing one-line progress to stderr.
///
/// Each instance keeps its own per-run budget (the wall limit applies to
/// that instance's verifier, not to the grid), and the returned records
/// are merged in the fixed `(model, approach, instance id)` grid order
/// regardless of which thread finished first — so persisted reports are
/// byte-identical for every pool size.
#[must_use]
pub fn run_grid(
    models: &[PreparedModel],
    approaches: &[Approach],
    budget: &Budget,
    pool: &Arc<WorkerPool>,
) -> Vec<InstanceRecord> {
    run_grid_configured(models, approaches, budget, pool, true, true)
}

/// Like [`run_grid`], additionally choosing whether incremental bound
/// caching (`bound_cache`) and LP warm starting (`warm_start`) are used;
/// the records are identical either way.
#[must_use]
pub fn run_grid_configured(
    models: &[PreparedModel],
    approaches: &[Approach],
    budget: &Budget,
    pool: &Arc<WorkerPool>,
    bound_cache: bool,
    warm_start: bool,
) -> Vec<InstanceRecord> {
    let mut tasks = Vec::new();
    for prepared in models {
        for approach in approaches {
            eprintln!(
                "  running {} on {} ({} instances, {} thread(s))...",
                approach.label(),
                prepared.kind.paper_name(),
                prepared.instances.len(),
                pool.threads(),
            );
            for instance in &prepared.instances {
                tasks.push((prepared, *approach, instance));
            }
        }
    }
    pool.map(tasks, |(prepared, approach, instance)| {
        run_instance_configured(prepared, instance, approach, budget, pool, bound_cache, warm_start)
    })
}

/// Groups records by `(model, approach)`.
///
/// The groups live in a `BTreeMap` so that grouping *and* any
/// group-order-dependent emission downstream are inherently
/// deterministic — consumers never need to re-sort to keep persisted
/// reports byte-identical across runs.
#[must_use]
pub fn group_by_model_approach(
    records: &[InstanceRecord],
) -> BTreeMap<(String, String), Vec<&InstanceRecord>> {
    let mut map: BTreeMap<(String, String), Vec<&InstanceRecord>> = BTreeMap::new();
    for r in records {
        map.entry((r.model.clone(), r.approach.clone()))
            .or_default()
            .push(r);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_roundtrips() {
        for s in [Scale::Smoke, Scale::Default, Scale::Full] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.per_model() < Scale::Default.per_model());
        assert!(Scale::Default.budget().max_appver_calls < Scale::Full.budget().max_appver_calls);
    }

    #[test]
    fn approach_labels_match_paper_terms() {
        assert_eq!(Approach::BabBaseline.label(), "BaB-baseline");
        assert_eq!(Approach::ABONN_DEFAULT.label(), "ABONN");
        assert_eq!(
            Approach::Abonn {
                lambda: 0.0,
                c: 0.2
            }
            .label(),
            "ABONN(l=0,c=0.2)"
        );
    }

    #[test]
    fn run_instance_produces_consistent_record() {
        let prepared = prepare_model(ModelKind::MnistL2, 2, 3);
        assert!(!prepared.instances.is_empty());
        let budget = Budget::with_appver_calls(50);
        let rec = run_instance(
            &prepared,
            &prepared.instances[0],
            Approach::ABONN_DEFAULT,
            &budget,
        );
        assert_eq!(rec.model, "MNIST_L2");
        assert!(rec.appver_calls >= 1);
        assert!(["verified", "falsified", "timeout"].contains(&rec.verdict.as_str()));
    }

    #[test]
    fn grouping_partitions_records() {
        let mk = |model: &str, approach: &str| InstanceRecord {
            model: model.into(),
            approach: approach.into(),
            instance_id: 0,
            epsilon: 0.1,
            verdict: "verified".into(),
            appver_calls: 1,
            nodes_visited: 1,
            tree_size: 1,
            max_depth: 0,
            wall_secs: 0.0,
        };
        let records = vec![mk("A", "x"), mk("A", "x"), mk("B", "x")];
        let grouped = group_by_model_approach(&records);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[&("A".into(), "x".into())].len(), 2);
    }
}
