//! Text tables, CSV/JSON persistence, and summary statistics.

use crate::scenario::InstanceRecord;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let t = abonn_bench::report::fmt_table(
///     &["model", "solved"],
///     &[vec!["MNIST_L2".into(), "7".into()]],
/// );
/// assert!(t.contains("MNIST_L2"));
/// ```
#[must_use]
pub fn fmt_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Five-number summary (min, q1, median, q3, max) of a sample.
///
/// Returns `None` for an empty sample. Quartiles use linear interpolation.
#[must_use]
pub fn quartiles(values: &[f64]) -> Option<[f64; 5]> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    Some([v[0], q(0.25), q(0.5), q(0.75), v[v.len() - 1]])
}

/// Buckets positive values into power-of-two bins: `[1,2), [2,4), …`.
///
/// Returns `(bucket_lower_edges, counts)`.
#[must_use]
pub fn log2_histogram(values: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return (Vec::new(), Vec::new());
    }
    let buckets = (usize::BITS - max.leading_zeros()) as usize;
    let mut counts = vec![0usize; buckets];
    for &v in values {
        if v == 0 {
            continue;
        }
        let b = (usize::BITS - 1 - v.leading_zeros()) as usize;
        counts[b] += 1;
    }
    let edges = (0..buckets).map(|b| 1usize << b).collect();
    (edges, counts)
}

/// Renders a histogram as ASCII bars.
#[must_use]
pub fn ascii_histogram(edges: &[usize], counts: &[usize]) -> String {
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (e, c) in edges.iter().zip(counts) {
        let bar = "#".repeat((c * 40).div_ceil(max).min(40));
        out.push_str(&format!("{:>8}+ | {:<40} {}\n", e, bar, c));
    }
    out
}

/// Renders a log-log ASCII scatter of `(x, y)` points — the text analogue
/// of the paper's Fig. 4 panels. Non-positive values are clamped to the
/// smallest positive point.
#[must_use]
pub fn ascii_scatter(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let min_pos = |vals: &mut dyn Iterator<Item = f64>| -> f64 {
        vals.filter(|v| *v > 0.0).fold(f64::INFINITY, f64::min)
    };
    let x_floor = min_pos(&mut points.iter().map(|p| p.0)).max(1e-9);
    let y_floor = min_pos(&mut points.iter().map(|p| p.1)).max(1e-9);
    let lx: Vec<f64> = points.iter().map(|p| p.0.max(x_floor).log10()).collect();
    let ly: Vec<f64> = points.iter().map(|p| p.1.max(y_floor).log10()).collect();
    let (x0, x1) = lx
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let (y0, y1) = ly
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let span = |a: f64, b: f64| if (b - a).abs() < 1e-12 { 1.0 } else { b - a };
    let mut grid = vec![vec![' '; width]; height];
    // Horizontal reference line at speedup = 1 (y = 0 in log10).
    if y0 <= 0.0 && 0.0 <= y1 {
        let r = ((y1 - 0.0) / span(y0, y1) * (height - 1) as f64).round() as usize;
        for cell in &mut grid[r.min(height - 1)] {
            *cell = '-';
        }
    }
    for (&px, &py) in lx.iter().zip(&ly) {
        let col = ((px - x0) / span(x0, x1) * (width - 1) as f64).round() as usize;
        let row = ((y1 - py) / span(y0, y1) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = '*';
    }
    let mut out = String::new();
    out.push_str(&format!("speedup {:>8.2}x ┐\n", 10f64.powf(y1)));
    for row in grid {
        out.push_str("              │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "speedup {:>8.2}x └{} \n   ABONN cost: {:.3} .. {:.3} (log scale)\n",
        10f64.powf(y0),
        "─".repeat(width),
        10f64.powf(x0),
        10f64.powf(x1),
    ));
    out
}

/// Ensures the output directory exists and returns `dir/name`.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn out_path(dir: &Path, name: &str) -> PathBuf {
    fs::create_dir_all(dir).expect("create output directory");
    dir.join(name)
}

/// Writes rows as CSV (naive quoting: cells must not contain commas).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Persists run records as JSON.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn save_records(path: &Path, records: &[InstanceRecord]) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(records)?;
    fs::write(path, json)
}

/// Loads run records from JSON, or `None` when the file is absent or
/// unreadable.
#[must_use]
pub fn load_records(path: &Path) -> Option<Vec<InstanceRecord>> {
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = fmt_table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(q, [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(quartiles(&[]), None);
        let single = quartiles(&[7.0]).unwrap();
        assert_eq!(single, [7.0; 5]);
    }

    #[test]
    fn log2_histogram_buckets_correctly() {
        let (edges, counts) = log2_histogram(&[1, 2, 3, 4, 7, 8]);
        assert_eq!(edges, vec![1, 2, 4, 8]);
        assert_eq!(counts, vec![1, 2, 2, 1]);
    }

    #[test]
    fn log2_histogram_handles_empty() {
        let (edges, counts) = log2_histogram(&[]);
        assert!(edges.is_empty() && counts.is_empty());
    }

    #[test]
    fn records_roundtrip_through_json() {
        let dir = std::env::temp_dir().join("abonn-bench-test");
        let path = out_path(&dir, "records.json");
        let records = vec![InstanceRecord {
            model: "M".into(),
            approach: "A".into(),
            instance_id: 1,
            epsilon: 0.1,
            verdict: "verified".into(),
            appver_calls: 10,
            nodes_visited: 5,
            tree_size: 9,
            max_depth: 3,
            wall_secs: 0.25,
        }];
        save_records(&path, &records).unwrap();
        // `wall_secs` is deliberately not persisted (it would make the
        // artifacts machine- and thread-count-dependent), so it comes
        // back zeroed; everything else roundtrips.
        let loaded = load_records(&path).unwrap();
        let expected = vec![InstanceRecord {
            wall_secs: 0.0,
            ..records[0].clone()
        }];
        assert_eq!(loaded, expected);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ascii_scatter_plots_points_and_reference_line() {
        let s = ascii_scatter(&[(0.1, 0.5), (1.0, 2.0), (10.0, 8.0)], 40, 8);
        assert!(s.contains('*'));
        assert!(s.contains('-'), "speedup=1 reference line expected");
        assert!(s.contains("log scale"));
        assert_eq!(ascii_scatter(&[], 40, 8), "(no points)\n");
    }

    #[test]
    fn ascii_histogram_draws_bars() {
        let s = ascii_histogram(&[1, 2], &[1, 4]);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
    }
}
