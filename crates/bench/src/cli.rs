//! Minimal argument parsing shared by the experiment binaries.

use crate::scenario::Scale;
use std::path::PathBuf;

/// Common options of every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed (training, instance generation, random heuristics).
    pub seed: u64,
    /// Directory for CSV/JSON outputs.
    pub out_dir: PathBuf,
    /// Ignore cached run records and recompute.
    pub fresh: bool,
    /// Worker-pool size for the parallel engine (≥ 1; defaults to the
    /// machine's available parallelism). Reports are byte-identical
    /// regardless of this value.
    pub threads: usize,
    /// Incremental bound caching (parent-prefix reuse). On by default;
    /// `--no-bound-cache` disables it for A/B equivalence checks. Reports
    /// are byte-identical regardless of this value.
    pub bound_cache: bool,
    /// LP warm starting (simplex basis reuse in the exact leaf solver). On
    /// by default; `--no-warm-start` disables it for A/B equivalence
    /// checks. Reports are byte-identical regardless of this value.
    pub warm_start: bool,
    /// Run on the reference substrate: naive rolled tensor kernels and
    /// the dense-tableau simplex instead of the tiled kernels and the
    /// revised engine. Off by default; `--reference-kernels` enables it
    /// for A/B equivalence checks. Reports are byte-identical regardless
    /// of this value.
    pub reference_kernels: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: Scale::Smoke,
            seed: 2025,
            out_dir: PathBuf::from("target/experiments"),
            fresh: false,
            threads: abonn_core::pool::default_threads(),
            bound_cache: true,
            warm_start: true,
            reference_kernels: false,
        }
    }
}

impl Args {
    /// Parses `--scale`, `--seed`, `--out-dir`, `--fresh`, `--threads`
    /// from an iterator of raw arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed values.
    pub fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = raw.peekable();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    args.scale = Scale::parse(&v)
                        .ok_or_else(|| format!("unknown scale '{v}' (smoke|default|full)"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    args.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                }
                "--out-dir" => {
                    let v = it.next().ok_or("--out-dir needs a value")?;
                    args.out_dir = PathBuf::from(v);
                }
                "--fresh" => args.fresh = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
                    if args.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--no-bound-cache" => args.bound_cache = false,
                "--no-warm-start" => args.warm_start = false,
                "--reference-kernels" => args.reference_kernels = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale smoke|default|full] [--seed N] [--out-dir DIR] \
                         [--fresh] [--threads N] [--no-bound-cache] [--no-warm-start] \
                         [--reference-kernels]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
        }
        // The pool the binaries build from this value needs >= 1 lane.
        assert!(args.threads >= 1, "Args::parse produced an empty pool");
        Ok(args)
    }

    /// Parses the process arguments, exiting with the usage message on
    /// error. Intended as the first line of each binary's `main`.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Installs the selected compute substrate process-wide (tensor
    /// kernels and LP pivot engine together — the `--reference-kernels`
    /// flag means "the whole pre-optimization substrate"). Call once at
    /// the top of each binary's `main`, right after parsing.
    pub fn apply_substrate(&self) {
        abonn_tensor::set_reference_kernels(self.reference_kernels);
        abonn_lp::set_reference_solver(self.reference_kernels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults_are_smoke_scale() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Smoke);
        assert!(!a.fresh);
        assert!(a.threads >= 1, "default pool must have at least one lane");
        assert!(a.bound_cache, "incremental bounding defaults to on");
        assert!(a.warm_start, "LP warm starting defaults to on");
    }

    #[test]
    fn no_bound_cache_flag_disables_caching() {
        let a = parse(&["--no-bound-cache"]).unwrap();
        assert!(!a.bound_cache);
        assert!(a.warm_start, "bound-cache flag must not affect warm start");
    }

    #[test]
    fn no_warm_start_flag_disables_warm_starting() {
        let a = parse(&["--no-warm-start"]).unwrap();
        assert!(!a.warm_start);
        assert!(a.bound_cache, "warm-start flag must not affect bound cache");
    }

    #[test]
    fn reference_kernels_flag_selects_the_reference_substrate() {
        let a = parse(&["--reference-kernels"]).unwrap();
        assert!(a.reference_kernels);
        assert!(!parse(&[]).unwrap().reference_kernels, "defaults to optimized");
        assert!(a.bound_cache && a.warm_start, "substrate flag must not affect A/B toggles");
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "full",
            "--seed",
            "7",
            "--out-dir",
            "/tmp/x",
            "--fresh",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
        assert!(a.fresh);
        assert_eq!(a.threads, 3);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "tiny"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("--bogus"));
        assert!(parse(&["--scale", "tiny"]).unwrap_err().contains("tiny"));
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("abc"));
        assert!(parse(&["--seed", "-3"]).unwrap_err().contains("-3"));
        assert!(parse(&["--seed"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--out-dir"]).unwrap_err().contains("--out-dir"));
        assert!(parse(&["--help"]).unwrap_err().contains("usage"));
    }

    #[test]
    fn rejects_bad_thread_counts() {
        assert!(parse(&["--threads"]).unwrap_err().contains("--threads"));
        assert!(parse(&["--threads", "zero"]).unwrap_err().contains("zero"));
        assert!(parse(&["--threads", "-2"]).unwrap_err().contains("-2"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert_eq!(parse(&["--threads", "1"]).unwrap().threads, 1);
    }
}
