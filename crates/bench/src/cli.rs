//! Minimal argument parsing shared by the experiment binaries.

use crate::scenario::Scale;
use std::path::PathBuf;

/// Common options of every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed (training, instance generation, random heuristics).
    pub seed: u64,
    /// Directory for CSV/JSON outputs.
    pub out_dir: PathBuf,
    /// Ignore cached run records and recompute.
    pub fresh: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: Scale::Smoke,
            seed: 2025,
            out_dir: PathBuf::from("target/experiments"),
            fresh: false,
        }
    }
}

impl Args {
    /// Parses `--scale`, `--seed`, `--out-dir`, `--fresh` from an iterator
    /// of raw arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed values.
    pub fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = raw.peekable();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    args.scale = Scale::parse(&v)
                        .ok_or_else(|| format!("unknown scale '{v}' (smoke|default|full)"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    args.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                }
                "--out-dir" => {
                    let v = it.next().ok_or("--out-dir needs a value")?;
                    args.out_dir = PathBuf::from(v);
                }
                "--fresh" => args.fresh = true,
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale smoke|default|full] [--seed N] [--out-dir DIR] [--fresh]"
                            .into(),
                    )
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
        }
        Ok(args)
    }

    /// Parses the process arguments, exiting with the usage message on
    /// error. Intended as the first line of each binary's `main`.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults_are_smoke_scale() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Smoke);
        assert!(!a.fresh);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "full",
            "--seed",
            "7",
            "--out-dir",
            "/tmp/x",
            "--fresh",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
        assert!(a.fresh);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "tiny"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }
}
