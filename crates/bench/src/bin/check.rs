//! Certificate audit over the benchmark suite: run the certificate-aware
//! engines on the tier-1 instances and replay every emitted certificate
//! through the independent checker in `abonn-check`.
//!
//! ```sh
//! cargo run --release -p abonn-bench --bin check -- \
//!     [--scale smoke|default|full] [--seed N] [--out-dir DIR] [--models SUBSTR]
//! ```
//!
//! For each `(model, instance)` pair the ABONN search and the BaB
//! baseline run with certificate emission; `Verified` runs must pass the
//! strict audit, `Timeout` runs must pass the partial audit (open leaves
//! exactly covering the unexplored region). Any rejection is printed and
//! the process exits 1.
//!
//! `--models` keeps only models whose paper name contains the given
//! substring (case-insensitive). The audit replays each leaf with LPs
//! over every input variable, so the 3072-input CIFAR models cost minutes
//! per certificate; CI audits `--models mnist` and the conv models are
//! opt-in.

use abonn_bench::scenario::{prepare_model_cached, PreparedModel};
use abonn_bench::Args;
use abonn_check::{audit_certificate, audit_partial, AuditReport};
use abonn_core::{
    AbonnVerifier, BabBaseline, Budget, Certificate, RobustnessProblem, RunResult, Verdict,
};
use abonn_data::{ModelKind, VerificationInstance};
use std::process::ExitCode;

fn audit_one(
    name: &str,
    prepared: &PreparedModel,
    instance: &VerificationInstance,
    result: &RunResult,
    certificate: Option<&Certificate>,
    problem: &RobustnessProblem,
) -> Result<Option<AuditReport>, String> {
    let verdict = match &result.verdict {
        Verdict::Verified => "verified",
        Verdict::Falsified(_) => "falsified",
        Verdict::Timeout => "timeout",
    };
    let label = format!(
        "{} {} #{} ({verdict})",
        name,
        prepared.kind.paper_name(),
        instance.id
    );
    match (&result.verdict, certificate) {
        (Verdict::Verified, Some(cert)) => audit_certificate(cert, problem)
            .map(Some)
            .map_err(|e| format!("{label}: certificate rejected: {e}")),
        (Verdict::Timeout, Some(cert)) => audit_partial(cert, problem)
            .map(Some)
            .map_err(|e| format!("{label}: partial certificate rejected: {e}")),
        (Verdict::Falsified(w), None) => {
            if problem.validate_witness(w) {
                Ok(None)
            } else {
                Err(format!("{label}: invalid counterexample witness"))
            }
        }
        (Verdict::Falsified(_), Some(_)) => {
            Err(format!("{label}: falsified run carries a certificate"))
        }
        (_, None) => Err(format!("{label}: no certificate emitted")),
    }
}

fn main() -> ExitCode {
    // Strip the binary-specific `--models` filter before handing the rest
    // to the shared parser.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut filter: Option<String> = None;
    if let Some(pos) = raw.iter().position(|a| a == "--models") {
        raw.remove(pos);
        if pos < raw.len() {
            filter = Some(raw.remove(pos).to_lowercase());
        } else {
            eprintln!("--models needs a value (substring of a paper model name)");
            return ExitCode::from(2);
        }
    }
    let args = match Args::parse(raw.into_iter()) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let kinds: Vec<ModelKind> = ModelKind::ALL
        .into_iter()
        .filter(|kind| {
            filter
                .as_ref()
                .is_none_or(|f| kind.paper_name().to_lowercase().contains(f))
        })
        .collect();
    if kinds.is_empty() {
        eprintln!("--models filter matched no benchmark model");
        return ExitCode::from(2);
    }
    let models: Vec<PreparedModel> = kinds
        .into_iter()
        .map(|kind| prepare_model_cached(kind, args.scale.per_model(), args.seed, &args.out_dir))
        .collect();
    let budget: Budget = args.scale.budget();
    let mut audited = 0usize;
    let mut leaves = 0usize;
    let mut open = 0usize;
    let mut lp_calls = 0usize;
    let mut failures = Vec::new();
    for prepared in &models {
        for instance in &prepared.instances {
            let problem = RobustnessProblem::new(
                &prepared.network,
                instance.input.clone(),
                instance.label,
                instance.epsilon,
            )
            .expect("suite instances are valid specifications");
            let runs = [
                (
                    "abonn",
                    AbonnVerifier::default().verify_with_certificate(&problem, &budget),
                ),
                (
                    "bab",
                    BabBaseline::default().verify_with_certificate(&problem, &budget),
                ),
            ];
            for (name, (result, certificate)) in &runs {
                match audit_one(
                    name,
                    prepared,
                    instance,
                    result,
                    certificate.as_ref(),
                    &problem,
                ) {
                    Ok(Some(report)) => {
                        audited += 1;
                        leaves += report.leaves;
                        open += report.open;
                        lp_calls += report.lp_calls;
                    }
                    Ok(None) => {}
                    Err(msg) => {
                        eprintln!("FAIL {msg}");
                        failures.push(msg);
                    }
                }
            }
            eprintln!(
                "checked {} #{}",
                prepared.kind.paper_name(),
                instance.id
            );
        }
    }
    println!(
        "{audited} certificates audited: {leaves} leaves re-verified, {open} open obligations \
         covered, {lp_calls} LP calls; {} rejections",
        failures.len()
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
