//! Differential fuzzing front-end for the soundness audit subsystem.
//!
//! ```sh
//! cargo run --release -p abonn-bench --bin fuzz -- \
//!     --seed 42 --count 100 [--out-dir DIR]
//! cargo run --release -p abonn-bench --bin fuzz -- --replay repro.json
//! ```
//!
//! A campaign derives `--count` verification instances deterministically
//! from `--seed`, runs every engine variant on each (see
//! `abonn-check`'s `fuzz` module for the cross-check list), minimizes
//! any failing case, and dumps it as a re-runnable JSON repro under
//! `--out-dir`. With `--served`, the campaign instead cross-checks the
//! `abonn-serve` daemon against single-shot batch runs (see
//! `abonn-serve`'s `fuzz` module). Exits 0 on a clean campaign, 1 on
//! any failure, 2 on usage errors.

use abonn_check::{run_campaign, run_case, FuzzCase};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    seed: u64,
    count: u64,
    out_dir: PathBuf,
    replay: Option<PathBuf>,
    served: bool,
}

const USAGE: &str = "usage: fuzz [--seed N] [--count N] [--out-dir DIR] [--served] \
                     | fuzz --replay CASE.json";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 2025,
        count: 25,
        out_dir: PathBuf::from("target/fuzz"),
        replay: None,
        served: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--count" => opts.count = value()?.parse().map_err(|e| format!("bad --count: {e}"))?,
            "--out-dir" => opts.out_dir = PathBuf::from(value()?),
            "--replay" => opts.replay = Some(PathBuf::from(value()?)),
            "--served" => opts.served = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn served(seed: u64, count: u64) -> ExitCode {
    eprintln!("served-vs-batch fuzzing {count} cases from seed {seed}");
    let outcome = abonn_serve::run_served_campaign(seed, count);
    println!(
        "{} cases: {} verified, {} falsified, {} timeout; {} store hits \
         ({} cross-center); {} served-UNSAT audits passed; {} mismatches",
        outcome.cases,
        outcome.verified,
        outcome.falsified,
        outcome.timeout,
        outcome.store_hits,
        outcome.cross_hits,
        outcome.audits_passed,
        outcome.mismatches.len()
    );
    if outcome.is_clean() {
        return ExitCode::SUCCESS;
    }
    for mismatch in &outcome.mismatches {
        println!("FAIL {mismatch}");
    }
    ExitCode::from(1)
}

fn replay(path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let case = match FuzzCase::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match run_case(&case) {
        Ok(report) => {
            println!("case passes every cross-check ({report:?})");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            println!("case still fails: {failure}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.replay {
        return replay(path);
    }
    if opts.served {
        return served(opts.seed, opts.count);
    }

    eprintln!("fuzzing {} cases from seed {}", opts.count, opts.seed);
    let outcome = run_campaign(opts.seed, opts.count);
    println!(
        "{} cases: {} verified, {} falsified, {} timeout; {} certificate audits passed; \
         {} failures",
        outcome.cases,
        outcome.verified,
        outcome.falsified,
        outcome.timeout,
        outcome.audits_passed,
        outcome.failures.len()
    );
    if outcome.failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("cannot create {}: {e}", opts.out_dir.display());
    }
    for (case, failure) in &outcome.failures {
        let path = opts
            .out_dir
            .join(format!("repro-s{}-i{}.json", case.seed, case.index));
        println!("FAIL case {}/{}: {failure}", case.seed, case.index);
        match std::fs::write(&path, case.to_json()) {
            Ok(()) => println!("  repro written to {}", path.display()),
            Err(e) => eprintln!("  cannot write repro: {e}"),
        }
    }
    ExitCode::from(1)
}
