//! Regenerates Fig. 5 (RQ2: hyperparameter heatmaps).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    print!("{}", experiments::fig5(&args));
}
