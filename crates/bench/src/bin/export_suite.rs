//! Exports the benchmark suite in interchange formats: one JSON model per
//! benchmark network and one VNN-LIB property file per instance, so other
//! verification tools can run the exact same problems.
//!
//! Output layout (under `--out-dir`, default `target/experiments`):
//!
//! ```text
//! suite/
//!   MNIST_L2/model.json
//!   MNIST_L2/instance_000.vnnlib
//!   …
//! ```

use abonn_bench::scenario::prepare_model_cached;
use abonn_bench::Args;
use abonn_data::zoo::ModelKind;
use abonn_nn::io as nn_io;
use abonn_vnnlib::write_robustness;
use std::fs;

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    let root = args.out_dir.join("suite");
    let mut total = 0usize;
    for kind in ModelKind::ALL {
        let prepared = prepare_model_cached(kind, args.scale.per_model(), args.seed, &args.out_dir);
        let dir = root.join(kind.paper_name());
        fs::create_dir_all(&dir).expect("create suite directory");
        nn_io::save_network(&prepared.network, &dir.join("model.json")).expect("write model");
        for inst in &prepared.instances {
            let text = write_robustness(
                &inst.input,
                inst.epsilon,
                inst.label,
                prepared.network.output_dim(),
            );
            let path = dir.join(format!("instance_{:03}.vnnlib", inst.id));
            fs::write(path, text).expect("write property");
            total += 1;
        }
        println!(
            "{}: model.json + {} properties",
            kind.paper_name(),
            prepared.instances.len()
        );
    }
    println!("exported {total} instances under {}", root.display());
}
