//! The verification service daemon front-end.
//!
//! ```sh
//! cargo run --release -p abonn-bench --bin serve -- \
//!     [--threads N] [--batch N] [--max-calls N] [--default-calls N] \
//!     [--model-dir DIR] [--model-cache N] [--audit-stored] \
//!     [--store-path FILE] [--store-cap N] \
//!     [--store-stats FILE] [--tcp ADDR]
//! ```
//!
//! Reads one JSON request per line from stdin (or, with `--tcp`, from
//! concurrently served TCP connections) and writes one JSON response
//! per line. The response stream is byte-identical for any `--threads`
//! and `--batch` value: wave-mates only precompute work the in-order
//! flush would have done anyway.
//!
//! With `--store-path` the ε-lattice store is loaded from a snapshot at
//! startup (a missing file means a fresh store; a malformed one is a
//! structured error and exit 2) and written back atomically at EOF and
//! after every TCP connection, so proofs survive daemon restarts.
//! `--store-cap` bounds the store to N cached entries with
//! deterministic whole-family LRU eviction.
//!
//! At EOF the store/model counters are written as JSON to
//! `--store-stats` when given. Exits 0 on EOF, 2 on usage/snapshot
//! errors.

use abonn_serve::{persist, ResultStore, Server, ServerConfig};
use std::io::{BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

struct Options {
    config: ServerConfig,
    store_path: Option<PathBuf>,
    store_stats: Option<PathBuf>,
    tcp: Option<String>,
}

const USAGE: &str = "usage: serve [--threads N] [--batch N] [--max-calls N] \
                     [--default-calls N] [--model-dir DIR] [--model-cache N] \
                     [--audit-stored] [--store-path FILE] [--store-cap N] \
                     [--store-stats FILE] [--tcp ADDR]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        config: ServerConfig::default(),
        store_path: None,
        store_stats: None,
        tcp: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--threads" => {
                opts.config.threads =
                    value()?.parse().map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--batch" => {
                opts.config.batch = value()?.parse().map_err(|e| format!("bad --batch: {e}"))?;
            }
            "--max-calls" => {
                opts.config.max_calls =
                    value()?.parse().map_err(|e| format!("bad --max-calls: {e}"))?;
            }
            "--default-calls" => {
                opts.config.default_calls = value()?
                    .parse()
                    .map_err(|e| format!("bad --default-calls: {e}"))?;
            }
            "--model-dir" => opts.config.model_dir = Some(PathBuf::from(value()?)),
            "--model-cache" => {
                opts.config.model_cache_capacity = value()?
                    .parse()
                    .map_err(|e| format!("bad --model-cache: {e}"))?;
            }
            "--audit-stored" => opts.config.audit_stored = true,
            "--store-path" => opts.store_path = Some(PathBuf::from(value()?)),
            "--store-cap" => {
                opts.config.store_cap = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("bad --store-cap: {e}"))?,
                );
            }
            "--store-stats" => opts.store_stats = Some(PathBuf::from(value()?)),
            "--tcp" => opts.tcp = Some(value()?),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Renders the stats document. Pure rendering: callers that share the
/// server behind a mutex render under the lock and hand the string to
/// [`write_stats`] after dropping the guard.
fn stats_text(server: &Server) -> String {
    serde_json::to_string_pretty(&server.stats_json()).expect("stats tree serialises")
}

fn write_stats(json: &str, path: &Path) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, json.to_string() + "\n") {
        Ok(()) => eprintln!("store counters written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// Writes an already-rendered snapshot (see [`Server::store`] and
/// `ResultStore::snapshot_string`) atomically.
fn save_store(text: &str, path: &Path) {
    match persist::write_snapshot_text(text, path) {
        Ok(()) => eprintln!("store snapshot written to {}", path.display()),
        Err(e) => eprintln!("cannot write snapshot {}: {e}", path.display()),
    }
}

fn serve_tcp(
    server: Arc<Mutex<Server>>,
    addr: &str,
    store_path: Option<&PathBuf>,
) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!("listening on {} (Ctrl-C to stop)", listener.local_addr()?);
    for stream in listener.incoming() {
        let stream = stream?;
        let peer = stream.peer_addr()?;
        eprintln!("connection from {peer}");
        // The store and model cache persist across connections and are
        // shared between concurrent clients: proofs established for one
        // client answer every other client's dominated queries. Each
        // connection gets its own thread; the server lock is held per
        // request wave, never while a connection is idle.
        let server = Arc::clone(&server);
        let store_path = store_path.cloned();
        std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(e) => {
                    eprintln!("connection {peer} failed: {e}");
                    return;
                }
            };
            let mut writer = stream;
            match Server::run_shared(&server, &mut reader, &mut writer) {
                Ok(()) => eprintln!("connection {peer} closed"),
                Err(e) => eprintln!("connection {peer} ended with error: {e}"),
            }
            if let Some(path) = &store_path {
                // Render the snapshot under the lock, write the file
                // after the guard drops: snapshot I/O must never stall
                // the other connections' request waves.
                let mut snapshot = None;
                if let Ok(guard) = server.lock() {
                    snapshot = Some(guard.store().snapshot_string());
                }
                if let Some(text) = snapshot {
                    save_store(&text, path);
                }
            }
        });
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut server = Server::new(opts.config);
    if let Some(path) = &opts.store_path {
        if path.exists() {
            match ResultStore::load_snapshot(path, server.store().capacity()) {
                Ok((store, report)) => {
                    eprintln!(
                        "store snapshot loaded from {}: {} families, {} entries, \
                         {} witnesses (certificates re-audit before first reuse)",
                        path.display(),
                        report.families,
                        report.entries,
                        report.witnesses
                    );
                    server.load_store(store);
                }
                Err(e) => {
                    eprintln!("cannot load snapshot {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    }
    let result = match &opts.tcp {
        Some(addr) => {
            let shared = Arc::new(Mutex::new(server));
            let r = serve_tcp(Arc::clone(&shared), addr, opts.store_path.as_ref());
            // The accept loop only returns on listener errors; stats and
            // snapshots for the TCP path are written per connection.
            if let Some(path) = &opts.store_stats {
                let mut stats = None;
                match shared.lock() {
                    Ok(guard) => stats = Some(stats_text(&guard)),
                    Err(_) => eprintln!("server lock poisoned; skipping final stats"),
                }
                if let Some(json) = stats {
                    write_stats(&json, path);
                }
            }
            r
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let mut input = BufReader::new(stdin.lock());
            let r = server.run(&mut input, &mut out);
            let _ = out.flush();
            if let Some(path) = &opts.store_path {
                save_store(&server.store().snapshot_string(), path);
            }
            if let Some(path) = &opts.store_stats {
                write_stats(&stats_text(&server), path);
            }
            r
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("I/O error: {e}");
            ExitCode::from(1)
        }
    }
}
