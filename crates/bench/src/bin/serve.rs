//! The verification service daemon front-end.
//!
//! ```sh
//! cargo run --release -p abonn-bench --bin serve -- \
//!     [--threads N] [--max-calls N] [--default-calls N] \
//!     [--model-dir DIR] [--model-cache N] [--audit-stored] \
//!     [--store-stats FILE] [--tcp ADDR]
//! ```
//!
//! Reads one JSON request per line from stdin (or, with `--tcp`, from
//! sequentially accepted TCP connections) and writes one JSON response
//! per line. The response stream is byte-identical for any `--threads`
//! value: queries run sequentially, parallelism lives inside the engine.
//! At EOF the store/model counters are written as JSON to
//! `--store-stats` when given. Exits 0 on EOF, 2 on usage errors.

use abonn_serve::{Server, ServerConfig};
use std::io::{BufReader, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    config: ServerConfig,
    store_stats: Option<PathBuf>,
    tcp: Option<String>,
}

const USAGE: &str = "usage: serve [--threads N] [--max-calls N] [--default-calls N] \
                     [--model-dir DIR] [--model-cache N] [--audit-stored] \
                     [--store-stats FILE] [--tcp ADDR]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        config: ServerConfig::default(),
        store_stats: None,
        tcp: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--threads" => {
                opts.config.threads =
                    value()?.parse().map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--max-calls" => {
                opts.config.max_calls =
                    value()?.parse().map_err(|e| format!("bad --max-calls: {e}"))?;
            }
            "--default-calls" => {
                opts.config.default_calls = value()?
                    .parse()
                    .map_err(|e| format!("bad --default-calls: {e}"))?;
            }
            "--model-dir" => opts.config.model_dir = Some(PathBuf::from(value()?)),
            "--model-cache" => {
                opts.config.model_cache_capacity = value()?
                    .parse()
                    .map_err(|e| format!("bad --model-cache: {e}"))?;
            }
            "--audit-stored" => opts.config.audit_stored = true,
            "--store-stats" => opts.store_stats = Some(PathBuf::from(value()?)),
            "--tcp" => opts.tcp = Some(value()?),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn write_stats(server: &Server, path: &PathBuf) {
    let json = serde_json::to_string_pretty(&server.stats_json())
        .expect("stats tree serialises");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, json + "\n") {
        Ok(()) => eprintln!("store counters written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn serve_tcp(server: &mut Server, addr: &str) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!(
        "listening on {} (one connection at a time; Ctrl-C to stop)",
        listener.local_addr()?
    );
    for stream in listener.incoming() {
        let stream = stream?;
        let peer = stream.peer_addr()?;
        eprintln!("connection from {peer}");
        let reader = BufReader::new(stream.try_clone()?);
        // The store and model cache persist across connections: proofs
        // established for one client answer the next client's queries.
        if let Err(e) = server.run(reader, stream) {
            eprintln!("connection {peer} ended with error: {e}");
        } else {
            eprintln!("connection {peer} closed");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut server = Server::new(opts.config);
    let result = match &opts.tcp {
        Some(addr) => serve_tcp(&mut server, addr),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let r = server.run(stdin.lock(), &mut out);
            let _ = out.flush();
            r
        }
    };
    if let Some(path) = &opts.store_stats {
        write_stats(&server, path);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("I/O error: {e}");
            ExitCode::from(1)
        }
    }
}
