//! Regenerates Table II (RQ1: solved instances and average cost).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    let records = experiments::rq1_records(&args);
    print!("{}", experiments::table2(&args, &records));
}
