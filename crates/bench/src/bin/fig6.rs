//! Regenerates Fig. 6 (RQ3: violated vs certified breakdown).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    let records = experiments::rq1_records(&args);
    print!("{}", experiments::fig6(&args, &records));
}
