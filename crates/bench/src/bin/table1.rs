//! Regenerates Table I (benchmark details).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    print!("{}", experiments::table1(&args));
}
