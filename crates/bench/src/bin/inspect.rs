//! Diagnostic tool: prints per-instance ground-truth hints (strong-PGD
//! attackability) and the verdict/cost/depth of each approach.
//!
//! Not a paper artefact; useful when tuning suite calibration or budgets.

use abonn_attack::Pgd;
use abonn_bench::scenario::{prepare_model_cached, Approach};
use abonn_bench::Args;
use abonn_core::{RobustnessProblem, Verdict};
use abonn_data::zoo::ModelKind;

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    let budget = args.scale.budget();
    for kind in ModelKind::ALL {
        let prepared = prepare_model_cached(kind, args.scale.per_model(), args.seed, &args.out_dir);
        println!(
            "\n=== {} ({} instances) ===",
            kind.paper_name(),
            prepared.instances.len()
        );
        for inst in &prepared.instances {
            let problem = RobustnessProblem::new(
                &prepared.network,
                inst.input.clone(),
                inst.label,
                inst.epsilon,
            )
            .expect("valid instance");
            let attackable = Pgd::new(80, 10, 0.2, 1)
                .attack(
                    &prepared.network,
                    inst.label,
                    problem.region().lo(),
                    problem.region().hi(),
                )
                .is_some();
            print!(
                "  id {:>2} eps {:.4} pgd={:<5}",
                inst.id,
                inst.epsilon,
                if attackable { "CEX" } else { "none" }
            );
            for approach in Approach::rq1_lineup() {
                let r = approach.build().verify(&problem, &budget);
                let tag = match r.verdict {
                    Verdict::Verified => "ver",
                    Verdict::Falsified(_) => "FAL",
                    Verdict::Timeout => "t/o",
                };
                print!(
                    "  {}={} c={:<4} d={:<3}",
                    approach.label(),
                    tag,
                    r.stats.appver_calls,
                    r.stats.max_depth
                );
            }
            println!();
        }
    }
}
