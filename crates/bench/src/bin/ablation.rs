//! Ablation study over ABONN's design choices (extension).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    print!("{}", experiments::ablation(&args));
}
