//! Regenerates Fig. 3 (BaB-baseline tree-size distribution).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    let records = experiments::rq1_records(&args);
    print!("{}", experiments::fig3(&args, &records));
}
