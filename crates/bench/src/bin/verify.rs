//! Command-line verifier: check a VNN-LIB property against a JSON model —
//! the interface VNN-COMP-style tool runners expect.
//!
//! ```sh
//! cargo run --release -p abonn-bench --bin verify -- \
//!     --model model.json --property prop.vnnlib \
//!     [--verifier abonn|bab|crown|portfolio] [--calls N] [--seconds S] \
//!     [--certificate cert.json]
//! ```
//!
//! Prints `verified`, `falsified <witness…>`, or `timeout` on stdout and
//! exits 0 (conclusive) or 2 (timeout); malformed inputs exit 1.

use abonn_core::{
    AbonnVerifier, BabBaseline, Budget, CrownStyle, Portfolio, RobustnessProblem, Verdict,
    Verifier,
};
use abonn_nn::io as nn_io;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    model: PathBuf,
    property: PathBuf,
    verifier: String,
    calls: usize,
    seconds: Option<u64>,
    certificate: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        model: PathBuf::new(),
        property: PathBuf::new(),
        verifier: "abonn".into(),
        calls: 10_000,
        seconds: None,
        certificate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--model" => opts.model = PathBuf::from(value()?),
            "--property" => opts.property = PathBuf::from(value()?),
            "--verifier" => opts.verifier = value()?,
            "--calls" => opts.calls = value()?.parse().map_err(|e| format!("bad --calls: {e}"))?,
            "--seconds" => {
                opts.seconds = Some(value()?.parse().map_err(|e| format!("bad --seconds: {e}"))?)
            }
            "--certificate" => opts.certificate = Some(PathBuf::from(value()?)),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if opts.model.as_os_str().is_empty() || opts.property.as_os_str().is_empty() {
        return Err(format!("--model and --property are required\n{USAGE}"));
    }
    Ok(opts)
}

const USAGE: &str = "usage: verify --model MODEL.json --property PROP.vnnlib \
[--verifier abonn|bab|crown|portfolio] [--calls N] [--seconds S] [--certificate OUT.json]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let network = match nn_io::load_network(&opts.model) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("cannot load model: {e}");
            return ExitCode::from(1);
        }
    };
    let text = match std::fs::read_to_string(&opts.property) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read property: {e}");
            return ExitCode::from(1);
        }
    };
    let property = match abonn_vnnlib::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot parse property: {e}");
            return ExitCode::from(1);
        }
    };
    let problem = match RobustnessProblem::from_vnnlib(&network, &property) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot encode problem: {e}");
            return ExitCode::from(1);
        }
    };

    let mut budget = Budget::with_appver_calls(opts.calls);
    if let Some(s) = opts.seconds {
        budget = budget.and_wall_limit(Duration::from_secs(s));
    }

    // ABONN runs through the certificate-aware path so --certificate works.
    let (verdict, stats, certificate) = match opts.verifier.as_str() {
        "abonn" => {
            let (result, cert) =
                AbonnVerifier::default().verify_with_certificate(&problem, &budget);
            (result.verdict, result.stats, cert)
        }
        other => {
            let verifier: Box<dyn Verifier> = match other {
                "bab" => Box::new(BabBaseline::default()),
                "crown" => Box::new(CrownStyle::default()),
                "portfolio" => Box::new(Portfolio::standard()),
                _ => {
                    eprintln!("unknown verifier '{other}'\n{USAGE}");
                    return ExitCode::from(1);
                }
            };
            let result = verifier.verify(&problem, &budget);
            (result.verdict, result.stats, None)
        }
    };

    eprintln!("stats: {stats}");
    match verdict {
        Verdict::Verified => {
            println!("verified");
            if let (Some(path), Some(cert)) = (&opts.certificate, certificate) {
                match serde_json::to_string(&cert)
                    .map_err(std::io::Error::other)
                    .and_then(|json| std::fs::write(path, json))
                {
                    Ok(()) => eprintln!("certificate written to {}", path.display()),
                    Err(e) => eprintln!("warning: cannot write certificate: {e}"),
                }
            }
            ExitCode::SUCCESS
        }
        Verdict::Falsified(witness) => {
            let coords: Vec<String> = witness.iter().map(|v| format!("{v}")).collect();
            println!("falsified {}", coords.join(" "));
            ExitCode::SUCCESS
        }
        Verdict::Timeout => {
            println!("timeout");
            ExitCode::from(2)
        }
    }
}
