//! Workspace determinism & soundness lint front-end (see `abonn-lint`).
//!
//! ```text
//! cargo run -p abonn-bench --bin lint             # human report, exit 1 on findings
//! cargo run -p abonn-bench --bin lint -- --json   # machine-readable findings report
//! cargo run -p abonn-bench --bin lint -- --root DIR --list-rules
//! ```
//!
//! The binary is the CI gate: it exits non-zero iff the scan produced at
//! least one active (non-suppressed) finding, so `scripts/ci.sh` can run
//! it ahead of clippy. `--json` emits the same findings as a stable JSON
//! document for trend tracking across PRs.

use abonn_lint::{find_workspace_root, lint_workspace, report, rules::default_rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lint [--json] [--root DIR] [--list-rules]";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if list_rules {
        for rule in default_rules() {
            println!("{:<26} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    // Default to the workspace root: walk up from the current directory
    // (covers `cargo run` from anywhere inside the repo), falling back to
    // the compile-time manifest location for out-of-tree invocations.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let found = find_workspace_root(&cwd);
        if found.join("crates").is_dir() {
            found
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let lint_report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", report::json(&lint_report));
    } else {
        print!("{}", report::human(&lint_report));
    }

    if lint_report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
