//! Workspace determinism & soundness lint front-end (see `abonn-lint`).
//!
//! ```text
//! cargo run -p abonn-bench --bin lint              # human report, exit 1 on findings
//! cargo run -p abonn-bench --bin lint -- --json    # machine-readable findings report
//! cargo run -p abonn-bench --bin lint -- --sarif   # SARIF 2.1.0 report
//! cargo run -p abonn-bench --bin lint -- --write-baseline
//! cargo run -p abonn-bench --bin lint -- --root DIR --list-rules
//! ```
//!
//! The binary is the CI gate: it exits non-zero iff the scan produced at
//! least one active finding that is neither suppressed inline nor
//! grandfathered by the committed baseline. The baseline defaults to
//! `<root>/lint-baseline.json` when that file exists; `--baseline PATH`
//! points elsewhere, `--no-baseline` ignores it (every finding gates),
//! and `--write-baseline` regenerates the canonical file from the
//! current findings (for adopting the lint on a tree with pre-existing,
//! audited debt — new code should fix, not re-baseline).

use abonn_lint::baseline::{self, Baseline};
use abonn_lint::{apply_baseline, find_workspace_root, lint_workspace, report, rules::default_rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lint [--json | --sarif] [--root DIR] [--list-rules] \
                     [--baseline PATH | --no-baseline] [--write-baseline]";

#[derive(PartialEq)]
enum Output {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut output = Output::Human;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => output = Output::Json,
            "--sarif" => output = Output::Sarif,
            "--list-rules" => list_rules = true,
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--root" | "--baseline" => match args.next() {
                Some(value) if flag == "--root" => root = Some(PathBuf::from(value)),
                Some(value) => baseline_path = Some(PathBuf::from(value)),
                None => {
                    eprintln!("{flag} needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if list_rules {
        for rule in default_rules() {
            println!(
                "{:<26} {:<8} {}",
                rule.name,
                rule.severity.as_str(),
                rule.summary
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    // Default to the workspace root: walk up from the current directory
    // (covers `cargo run` from anywhere inside the repo), falling back to
    // the compile-time manifest location for out-of-tree invocations.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let found = find_workspace_root(&cwd);
        if found.join("crates").is_dir() {
            found
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let mut lint_report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let default_baseline = root.join("lint-baseline.json");
    let baseline_file = baseline_path.unwrap_or(default_baseline);

    if write_baseline {
        let base = Baseline::from_findings(&lint_report.findings);
        if let Err(e) = std::fs::write(&baseline_file, baseline::render(&base)) {
            eprintln!("lint: cannot write {}: {e}", baseline_file.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline written to {} ({} entries)",
            baseline_file.display(),
            base.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    if !no_baseline && baseline_file.is_file() {
        let text = match std::fs::read_to_string(&baseline_file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", baseline_file.display());
                return ExitCode::FAILURE;
            }
        };
        let base = match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lint: {}: {e}", baseline_file.display());
                return ExitCode::FAILURE;
            }
        };
        apply_baseline(&mut lint_report, &base);
    }

    match output {
        Output::Json => println!("{}", report::json(&lint_report)),
        Output::Sarif => println!("{}", report::sarif(&lint_report)),
        Output::Human => print!("{}", report::human(&lint_report)),
    }

    if lint_report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
