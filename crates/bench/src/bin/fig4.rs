//! Regenerates Fig. 4 (RQ1: per-instance speedup scatter).

use abonn_bench::{experiments, Args};

fn main() {
    let args = Args::from_env();
    args.apply_substrate();
    let records = experiments::rq1_records(&args);
    print!("{}", experiments::fig4(&args, &records));
}
