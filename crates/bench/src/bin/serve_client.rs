//! Line-protocol client for the serve daemon's TCP mode.
//!
//! ```sh
//! cargo run --release -p abonn-bench --bin serve_client -- \
//!     --addr HOST:PORT FILE
//! ```
//!
//! Streams every line of FILE to the daemon from a writer thread while
//! reading responses concurrently, prints one response line per
//! non-blank request line to stdout, and exits 0 once all responses
//! arrived. Exits 1 if the connection drops before every expected
//! response is read — a client must never silently under-report.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;

const USAGE: &str = "usage: serve_client --addr HOST:PORT FILE";

fn parse_args() -> Result<(String, String), String> {
    let mut addr = None;
    let mut file = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr needs a value")?),
            "--help" | "-h" => return Err(USAGE.into()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'\n{USAGE}"));
            }
            _ if file.is_none() => file = Some(arg),
            _ => return Err(format!("more than one FILE given\n{USAGE}")),
        }
    }
    match (addr, file) {
        (Some(a), Some(f)) => Ok((a, f)),
        _ => Err(USAGE.into()),
    }
}

fn run(addr: &str, file: &str) -> Result<(), String> {
    let session =
        std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    // Blank request lines are ignored by the daemon; everything else —
    // including garbage — draws exactly one response line.
    let expected = session.lines().filter(|l| !l.trim().is_empty()).count();
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let sender = std::thread::spawn(move || -> Result<(), String> {
        writer
            .write_all(session.as_bytes())
            .map_err(|e| format!("send failed: {e}"))?;
        if !session.ends_with('\n') {
            writer
                .write_all(b"\n")
                .map_err(|e| format!("send failed: {e}"))?;
        }
        writer
            .flush()
            .map_err(|e| format!("send failed: {e}"))?;
        // Half-close so the daemon sees EOF and ends the connection
        // once its responses are flushed.
        writer
            .shutdown(Shutdown::Write)
            .map_err(|e| format!("shutdown failed: {e}"))?;
        Ok(())
    });
    let mut reader = BufReader::new(stream);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut received = 0usize;
    let mut line = String::new();
    while received < expected {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err(format!(
                "connection closed after {received} of {expected} responses"
            ));
        }
        out.write_all(line.as_bytes())
            .map_err(|e| format!("stdout write failed: {e}"))?;
        received += 1;
    }
    out.flush().map_err(|e| format!("stdout flush failed: {e}"))?;
    sender
        .join()
        .map_err(|_| "sender thread panicked".to_string())??;
    Ok(())
}

fn main() -> ExitCode {
    let (addr, file) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&addr, &file) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
    }
}
