//! One entry point per paper artefact (tables, figures, ablations).

use crate::cli::Args;
use crate::report::{
    ascii_histogram, ascii_scatter, fmt_table, load_records, log2_histogram, out_path, quartiles,
    save_records, write_csv,
};
use crate::scenario::{
    group_by_model_approach, prepare_all, prepare_model_cached, run_grid_configured,
    run_instance_configured,
    Approach, InstanceRecord,
};
use abonn_core::heuristics::HeuristicKind;
use abonn_core::{AbonnConfig, AbonnVerifier, BabBaseline, CrownStyle, Verifier, WorkerPool};
use abonn_data::zoo::ModelKind;
use abonn_nn::CanonicalNetwork;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The λ grid of RQ2 (Fig. 5 rows).
pub const LAMBDA_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// The c grid of RQ2 (Fig. 5 columns).
pub const C_GRID: [f64; 4] = [0.0, 0.1, 0.2, 0.5];

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Regenerates Table I: model, architecture, dataset, #neurons,
/// #instances.
#[must_use]
pub fn table1(args: &Args) -> String {
    let mut rows = Vec::new();
    for &kind in &ModelKind::ALL {
        let prepared = prepare_model_cached(kind, args.scale.per_model(), args.seed, &args.out_dir);
        let canon =
            CanonicalNetwork::from_network(&prepared.network).expect("zoo models lower cleanly");
        rows.push(vec![
            kind.paper_name().to_string(),
            kind.architecture_summary().to_string(),
            kind.dataset_name().to_string(),
            canon.num_relu_neurons().to_string(),
            prepared.instances.len().to_string(),
        ]);
    }
    let table = fmt_table(
        &["Model", "Architecture", "Dataset", "#Neurons", "#Instances"],
        &rows,
    );
    let csv_rows = rows;
    let path = out_path(&args.out_dir, "table1.csv");
    write_csv(
        &path,
        &["model", "architecture", "dataset", "neurons", "instances"],
        &csv_rows,
    )
    .expect("write table1.csv");
    format!(
        "Table I: Details of the benchmarks\n\n{table}\n(written {})\n",
        path.display()
    )
}

// ---------------------------------------------------------------------
// RQ1 shared runs (Table II, Fig. 3, Fig. 4, Fig. 6)
// ---------------------------------------------------------------------

/// Runs (or loads from cache) the RQ1 grid: every model × the three
/// approaches of Table II.
#[must_use]
pub fn rq1_records(args: &Args) -> Vec<InstanceRecord> {
    let cache = out_path(
        &args.out_dir,
        &format!("rq1-{}-{}.json", args.scale.name(), args.seed),
    );
    if !args.fresh {
        if let Some(records) = load_records(&cache) {
            eprintln!("  using cached records at {}", cache.display());
            return records;
        }
    }
    eprintln!("  preparing models (training, deterministic in the seed)...");
    let models = prepare_all(args.scale, args.seed, &args.out_dir);
    let pool = Arc::new(WorkerPool::new(args.threads));
    let records = run_grid_configured(
        &models,
        &Approach::rq1_lineup(),
        &args.scale.budget(),
        &pool,
        args.bound_cache,
        args.warm_start,
    );
    save_records(&cache, &records).expect("persist rq1 records");
    records
}

/// Mean over a selector, or `f64::NAN` on empty input.
fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

// ---------------------------------------------------------------------
// Table II (RQ1)
// ---------------------------------------------------------------------

/// Regenerates Table II: per model and approach, the number of solved
/// instances and the average cost in `AppVer` calls (the paper's
/// machine-independent cost unit; wall time varies per run and machine,
/// so the persisted artefact sticks to the reproducible metric).
#[must_use]
pub fn table2(args: &Args, records: &[InstanceRecord]) -> String {
    let grouped = group_by_model_approach(records);
    let approaches = Approach::rq1_lineup();
    let mut rows = Vec::new();
    for &kind in &ModelKind::ALL {
        let mut row = vec![kind.paper_name().to_string()];
        for a in &approaches {
            let key = (kind.paper_name().to_string(), a.label());
            match grouped.get(&key) {
                Some(group) => {
                    let solved = group.iter().filter(|r| r.solved()).count();
                    let avg_calls = mean(group.iter().map(|r| r.appver_calls as f64));
                    row.push(solved.to_string());
                    row.push(format!("{avg_calls:.0}"));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        rows.push(row);
    }
    let headers = [
        "Model",
        "BaB solved",
        "BaB calls",
        "CROWN solved",
        "CROWN calls",
        "ABONN solved",
        "ABONN calls",
    ];
    let table = fmt_table(&headers, &rows);
    let path = out_path(&args.out_dir, "table2.csv");
    write_csv(
        &path,
        &[
            "model",
            "bab_solved",
            "bab_calls",
            "crown_solved",
            "crown_calls",
            "abonn_solved",
            "abonn_calls",
        ],
        &rows,
    )
    .expect("write table2.csv");
    format!(
        "Table II: RQ1 - solved instances and average cost\n\
         (cost = mean AppVer calls; budget {:?})\n\n{table}\n(written {})\n",
        args.scale.budget(),
        path.display()
    )
}

// ---------------------------------------------------------------------
// Fig. 3
// ---------------------------------------------------------------------

/// Regenerates Fig. 3: the distribution of BaB-baseline tree sizes over
/// the whole suite, as a log₂-bucketed histogram.
#[must_use]
pub fn fig3(args: &Args, records: &[InstanceRecord]) -> String {
    let sizes: Vec<usize> = records
        .iter()
        .filter(|r| r.approach == "BaB-baseline")
        .map(|r| r.tree_size)
        .collect();
    let (edges, counts) = log2_histogram(&sizes);
    let hist = ascii_histogram(&edges, &counts);
    let rows: Vec<Vec<String>> = edges
        .iter()
        .zip(&counts)
        .map(|(e, c)| vec![e.to_string(), c.to_string()])
        .collect();
    let path = out_path(&args.out_dir, "fig3.csv");
    write_csv(&path, &["tree_size_bucket", "count"], &rows).expect("write fig3.csv");
    format!(
        "Fig. 3: distribution of BaB-baseline tree sizes ({} instances)\n\n{hist}\n(written {})\n",
        sizes.len(),
        path.display()
    )
}

// ---------------------------------------------------------------------
// Fig. 4
// ---------------------------------------------------------------------

/// Regenerates Fig. 4: per-instance ABONN cost in `AppVer` calls (x)
/// against the speedup over BaB-baseline (y, ratio of call counts), one
/// panel per model. Printed as a summary table; the full scatter series
/// goes to CSV.
#[must_use]
pub fn fig4(args: &Args, records: &[InstanceRecord]) -> String {
    let mut by_instance: BTreeMap<(String, usize), (Option<f64>, Option<f64>)> = BTreeMap::new();
    for r in records {
        let entry = by_instance
            .entry((r.model.clone(), r.instance_id))
            .or_default();
        match r.approach.as_str() {
            "ABONN" => entry.0 = Some(r.appver_calls as f64),
            "BaB-baseline" => entry.1 = Some(r.appver_calls as f64),
            _ => {}
        }
    }
    let mut csv_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut panels = String::new();
    for &kind in &ModelKind::ALL {
        let model = kind.paper_name();
        let mut speedups = Vec::new();
        let mut points = Vec::new();
        for ((m, id), (abonn, bab)) in &by_instance {
            if m != model {
                continue;
            }
            if let (Some(a), Some(b)) = (abonn, bab) {
                let speedup = if *a > 0.0 { b / a } else { f64::INFINITY };
                speedups.push(speedup);
                points.push((*a, speedup));
                csv_rows.push(vec![
                    m.clone(),
                    id.to_string(),
                    format!("{a:.0}"),
                    format!("{speedup:.3}"),
                ]);
            }
        }
        if let Some(q) = quartiles(&speedups) {
            let wins = speedups.iter().filter(|&&s| s > 1.0).count();
            summary_rows.push(vec![
                model.to_string(),
                speedups.len().to_string(),
                wins.to_string(),
                format!("{:.2}", q[2]),
                format!("{:.2}", q[4]),
            ]);
            panels.push_str(&format!(
                "
Panel {model}:
"
            ));
            panels.push_str(&ascii_scatter(&points, 56, 10));
        }
    }
    let path = out_path(&args.out_dir, "fig4.csv");
    write_csv(
        &path,
        &["model", "instance", "abonn_calls", "speedup_vs_bab"],
        &csv_rows,
    )
    .expect("write fig4.csv");
    let table = fmt_table(
        &[
            "Model",
            "#points",
            "#speedup>1",
            "median speedup",
            "max speedup",
        ],
        &summary_rows,
    );
    format!(
        "Fig. 4: RQ1 - per-instance speedup of ABONN over BaB-baseline\n\
         (cost = AppVer calls)\n\n{table}\n{panels}\n\
         (full scatter series written {})\n",
        path.display()
    )
}

// ---------------------------------------------------------------------
// Fig. 5 (RQ2)
// ---------------------------------------------------------------------

/// Regenerates Fig. 5: hyperparameter heatmaps (λ × c) on three panels
/// (MNIST_L2, CIFAR_BASE, CIFAR_DEEP). Each cell reports
/// `solved/avg-calls`; in the paper darker is better.
#[must_use]
pub fn fig5(args: &Args) -> String {
    let panels = [
        ModelKind::MnistL2,
        ModelKind::CifarBase,
        ModelKind::CifarDeep,
    ];
    let per_model = args.scale.per_model().min(6);
    // The sweep multiplies the grid by 20 (λ × c) combinations; a reduced
    // per-run budget keeps it tractable while preserving the *relative*
    // comparison the heatmap is about.
    // Call-only like `Scale::budget`, so the heatmap is reproducible.
    let budget =
        abonn_core::Budget::with_appver_calls(args.scale.budget().max_appver_calls.min(500));
    let pool = Arc::new(WorkerPool::new(args.threads));
    let mut out = String::from("Fig. 5: RQ2 - hyperparameter impact (cells: solved/avg-calls)\n");
    let mut csv_rows = Vec::new();
    for kind in panels {
        let prepared = prepare_model_cached(kind, per_model, args.seed, &args.out_dir);
        out.push_str(&format!(
            "\nPanel {} ({} instances):\n",
            kind.paper_name(),
            prepared.instances.len()
        ));
        let mut rows = Vec::new();
        for &lambda in &LAMBDA_GRID {
            let mut row = vec![format!("lambda={lambda}")];
            for &c in &C_GRID {
                let approach = Approach::Abonn { lambda, c };
                // Instances of one cell run concurrently; `map` returns
                // them in instance order, so the heatmap and CSV are
                // independent of the thread count.
                let recs = pool.map(prepared.instances.iter().collect(), |instance| {
                    run_instance_configured(
                        &prepared,
                        instance,
                        approach,
                        &budget,
                        &pool,
                        args.bound_cache,
                        args.warm_start,
                    )
                });
                let mut solved = 0usize;
                let mut calls = Vec::new();
                for (instance, rec) in prepared.instances.iter().zip(recs) {
                    if rec.solved() {
                        solved += 1;
                    }
                    calls.push(rec.appver_calls as f64);
                    csv_rows.push(vec![
                        kind.paper_name().to_string(),
                        lambda.to_string(),
                        c.to_string(),
                        instance.id.to_string(),
                        rec.verdict.clone(),
                        rec.appver_calls.to_string(),
                    ]);
                }
                row.push(format!("{solved}/{:.0}", mean(calls.into_iter())));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["".to_string()];
        headers.extend(C_GRID.iter().map(|c| format!("c={c}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        out.push_str(&fmt_table(&headers_ref, &rows));
    }
    let path = out_path(&args.out_dir, "fig5.csv");
    write_csv(
        &path,
        &[
            "model",
            "lambda",
            "c",
            "instance",
            "verdict",
            "appver_calls",
        ],
        &csv_rows,
    )
    .expect("write fig5.csv");
    out.push_str(&format!("\n(written {})\n", path.display()));
    out
}

// ---------------------------------------------------------------------
// Fig. 6 (RQ3)
// ---------------------------------------------------------------------

/// Ground truth of an instance from the consensus of all runs: violated
/// if anyone falsified, certified if anyone verified, unknown otherwise.
fn instance_truth(records: &[&InstanceRecord]) -> Option<&'static str> {
    if records.iter().any(|r| r.verdict == "falsified") {
        Some("violated")
    } else if records.iter().any(|r| r.verdict == "verified") {
        Some("certified")
    } else {
        None
    }
}

/// Regenerates Fig. 6: verification-cost (`AppVer` calls) box statistics
/// of BaB-baseline vs ABONN, separately for violated and certified
/// instances, on MNIST_L2 and CIFAR_DEEP.
#[must_use]
pub fn fig6(args: &Args, records: &[InstanceRecord]) -> String {
    let panels = [ModelKind::MnistL2, ModelKind::CifarDeep];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for kind in panels {
        let model = kind.paper_name();
        // Collect per-instance record sets.
        let mut by_id: BTreeMap<usize, Vec<&InstanceRecord>> = BTreeMap::new();
        for r in records.iter().filter(|r| r.model == model) {
            by_id.entry(r.instance_id).or_default().push(r);
        }
        for truth in ["violated", "certified"] {
            for approach in ["BaB-baseline", "ABONN"] {
                let costs: Vec<f64> = by_id
                    .values()
                    .filter(|rs| instance_truth(rs) == Some(truth))
                    .flat_map(|rs| rs.iter().filter(|r| r.approach == approach))
                    .map(|r| r.appver_calls as f64)
                    .collect();
                if let Some(q) = quartiles(&costs) {
                    rows.push(vec![
                        model.to_string(),
                        truth.to_string(),
                        approach.to_string(),
                        costs.len().to_string(),
                        format!("{:.1}", q[0]),
                        format!("{:.1}", q[1]),
                        format!("{:.1}", q[2]),
                        format!("{:.1}", q[3]),
                        format!("{:.1}", q[4]),
                    ]);
                    csv_rows.push(vec![
                        model.to_string(),
                        truth.to_string(),
                        approach.to_string(),
                        format!("{:.1}", q[0]),
                        format!("{:.1}", q[1]),
                        format!("{:.1}", q[2]),
                        format!("{:.1}", q[3]),
                        format!("{:.1}", q[4]),
                    ]);
                }
            }
        }
    }
    let table = fmt_table(
        &[
            "Model", "Class", "Approach", "n", "min", "q1", "median", "q3", "max",
        ],
        &rows,
    );
    let path = out_path(&args.out_dir, "fig6.csv");
    write_csv(
        &path,
        &[
            "model", "class", "approach", "min", "q1", "median", "q3", "max",
        ],
        &csv_rows,
    )
    .expect("write fig6.csv");
    format!(
        "Fig. 6: RQ3 - cost (AppVer calls) box statistics, violated vs certified\n\n\
         {table}\n(written {})\n",
        path.display()
    )
}

// ---------------------------------------------------------------------
// Ablations (extension beyond the paper's tables)
// ---------------------------------------------------------------------

/// Extension study: ABONN with different branching heuristics, the
/// potentiality extremes (λ = 0 / 1), pure exploitation vs heavy
/// exploration, and an α-CROWN bound engine inside ABONN.
#[must_use]
pub fn ablation(args: &Args) -> String {
    // Like Fig. 5, the ablation multiplies the grid by the variant count;
    // cap the per-run budget for tractability.
    // Call-only like `Scale::budget`, so the ablation is reproducible.
    let budget =
        abonn_core::Budget::with_appver_calls(args.scale.budget().max_appver_calls.min(800));
    let per_model = args.scale.per_model().min(6);
    // `Sync` so instances of one variant can be verified concurrently:
    // each pool worker builds its own verifier from the shared builder.
    type VariantBuilder = Box<dyn Fn() -> Box<dyn Verifier> + Sync>;
    let variants: Vec<(String, VariantBuilder)> = vec![
        (
            "ABONN default".into(),
            Box::new(|| Approach::ABONN_DEFAULT.build()),
        ),
        (
            "heuristic=babsr".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig {
                        heuristic: HeuristicKind::Babsr,
                        ..AbonnConfig::default()
                    },
                    Arc::new(abonn_bound::DeepPoly::planet()),
                ))
            }),
        ),
        (
            "heuristic=max-range".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig {
                        heuristic: HeuristicKind::MaxRange,
                        ..AbonnConfig::default()
                    },
                    Arc::new(abonn_bound::DeepPoly::planet()),
                ))
            }),
        ),
        (
            "heuristic=random".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig {
                        heuristic: HeuristicKind::Random(7),
                        ..AbonnConfig::default()
                    },
                    Arc::new(abonn_bound::DeepPoly::planet()),
                ))
            }),
        ),
        (
            "lambda=0 (p-hat only)".into(),
            Box::new(|| {
                Approach::Abonn {
                    lambda: 0.0,
                    c: 0.2,
                }
                .build()
            }),
        ),
        (
            "lambda=1 (depth only)".into(),
            Box::new(|| {
                Approach::Abonn {
                    lambda: 1.0,
                    c: 0.2,
                }
                .build()
            }),
        ),
        (
            "c=0 (pure exploitation)".into(),
            Box::new(|| {
                Approach::Abonn {
                    lambda: 0.5,
                    c: 0.0,
                }
                .build()
            }),
        ),
        (
            "appver=alpha-crown".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig::default(),
                    Arc::new(abonn_bound::AlphaCrown::default()),
                ))
            }),
        ),
        (
            "appver=beta-crown".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig::default(),
                    Arc::new(abonn_bound::BetaCrown::default()),
                ))
            }),
        ),
        (
            "appver=deeppoly-adaptive".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig::default(),
                    Arc::new(abonn_bound::DeepPoly::new()),
                ))
            }),
        ),
        (
            "appver=ibp-deeppoly-cascade".into(),
            Box::new(|| {
                Box::new(AbonnVerifier::new(
                    AbonnConfig::default(),
                    Arc::new(abonn_bound::Cascade::standard()),
                ))
            }),
        ),
        (
            "bab-baseline (reference)".into(),
            Box::new(|| Box::new(BabBaseline::default())),
        ),
        (
            "crown-style (reference)".into(),
            Box::new(|| Box::new(CrownStyle::default())),
        ),
    ];

    let panels = [ModelKind::MnistL2, ModelKind::CifarBase];
    let mut out = String::from("Ablation: ABONN design choices (cells: solved/avg-calls)\n\n");
    let mut csv_rows = Vec::new();
    let mut rows = Vec::new();
    let prepared: Vec<_> = panels
        .iter()
        .map(|&kind| prepare_model_cached(kind, per_model, args.seed, &args.out_dir))
        .collect();
    let pool = Arc::new(WorkerPool::new(args.threads));
    for (name, build) in &variants {
        let mut row = vec![name.clone()];
        for p in &prepared {
            // One verifier per instance so workers never share mutable
            // state; `map` keeps instance order, so the table and CSV are
            // independent of the thread count.
            let results = pool.map(p.instances.iter().collect(), |instance| {
                let verifier = build();
                let problem = abonn_core::RobustnessProblem::new(
                    &p.network,
                    instance.input.clone(),
                    instance.label,
                    instance.epsilon,
                )
                .expect("valid instance");
                verifier.verify(&problem, &budget)
            });
            let mut solved = 0usize;
            let mut calls = Vec::new();
            for (instance, result) in p.instances.iter().zip(results) {
                if result.verdict.is_solved() {
                    solved += 1;
                }
                calls.push(result.stats.appver_calls as f64);
                csv_rows.push(vec![
                    name.clone(),
                    p.kind.paper_name().to_string(),
                    instance.id.to_string(),
                    format!("{:?}", result.verdict)
                        .split('(')
                        .next()
                        .unwrap_or("?")
                        .to_string(),
                    result.stats.appver_calls.to_string(),
                ]);
            }
            row.push(format!("{solved}/{:.0}", mean(calls.into_iter())));
        }
        rows.push(row);
    }
    let mut headers = vec!["Variant".to_string()];
    headers.extend(panels.iter().map(|k| k.paper_name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&fmt_table(&headers_ref, &rows));
    let path = out_path(&args.out_dir, "ablation.csv");
    write_csv(
        &path,
        &["variant", "model", "instance", "verdict", "appver_calls"],
        &csv_rows,
    )
    .expect("write ablation.csv");
    out.push_str(&format!("\n(written {})\n", path.display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        model: &str,
        approach: &str,
        id: usize,
        verdict: &str,
        calls: usize,
        secs: f64,
        tree: usize,
    ) -> InstanceRecord {
        InstanceRecord {
            model: model.into(),
            approach: approach.into(),
            instance_id: id,
            epsilon: 0.1,
            verdict: verdict.into(),
            appver_calls: calls,
            nodes_visited: calls,
            tree_size: tree,
            max_depth: 2,
            wall_secs: secs,
        }
    }

    fn synthetic_records() -> Vec<InstanceRecord> {
        let mut v = Vec::new();
        for id in 0..4 {
            v.push(record(
                "MNIST_L2",
                "BaB-baseline",
                id,
                "verified",
                40,
                0.4,
                31,
            ));
            v.push(record("MNIST_L2", "ab-CROWN", id, "verified", 30, 0.5, 21));
            v.push(record(
                "MNIST_L2",
                "ABONN",
                id,
                if id == 3 { "falsified" } else { "verified" },
                10,
                0.1,
                11,
            ));
        }
        v
    }

    #[test]
    fn table2_counts_solved_instances() {
        let args = Args::default();
        let t = table2(&args, &synthetic_records());
        assert!(t.contains("MNIST_L2"));
        assert!(t.contains('4')); // all four solved for each approach
    }

    #[test]
    fn fig3_buckets_tree_sizes() {
        let args = Args::default();
        let t = fig3(&args, &synthetic_records());
        assert!(t.contains("distribution"));
        assert!(t.contains('#'));
    }

    #[test]
    fn fig4_computes_speedups() {
        let args = Args::default();
        let t = fig4(&args, &synthetic_records());
        // BaB 0.4s vs ABONN 0.1s → median speedup 4.
        assert!(t.contains("4.00"), "table was:\n{t}");
    }

    #[test]
    fn fig6_separates_violated_and_certified() {
        let args = Args::default();
        let t = fig6(&args, &synthetic_records());
        assert!(t.contains("violated"));
        assert!(t.contains("certified"));
    }

    #[test]
    fn instance_truth_consensus() {
        let a = record("M", "ABONN", 0, "falsified", 1, 0.1, 1);
        let b = record("M", "BaB-baseline", 0, "timeout", 1, 0.1, 1);
        assert_eq!(instance_truth(&[&a, &b]), Some("violated"));
        let c = record("M", "ABONN", 0, "verified", 1, 0.1, 1);
        assert_eq!(instance_truth(&[&c, &b]), Some("certified"));
        assert_eq!(instance_truth(&[&b]), None);
    }
}
