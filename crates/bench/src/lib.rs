#![forbid(unsafe_code)]
//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§V).
//!
//! | Paper artefact | Binary | Library entry point |
//! |----------------|--------|---------------------|
//! | Table I (benchmark details)            | `table1`   | [`experiments::table1`] |
//! | Fig. 3 (BaB tree-size distribution)    | `fig3`     | [`experiments::fig3`] |
//! | Table II (RQ1 solved/time)             | `table2`   | [`experiments::table2`] |
//! | Fig. 4 (RQ1 per-instance speedups)     | `fig4`     | [`experiments::fig4`] |
//! | Fig. 5 (RQ2 hyperparameter heatmaps)   | `fig5`     | [`experiments::fig5`] |
//! | Fig. 6 (RQ3 violated/certified split)  | `fig6`     | [`experiments::fig6`] |
//! | Ablations (extensions)                 | `ablation` | [`experiments::ablation`] |
//!
//! Three audit binaries ride alongside the experiment runners: `fuzz`
//! (seeded differential fuzzing across all engines, JSON repros for
//! minimized failures), `check` (replay of every emitted certificate
//! through the independent checker in `abonn-check`), and `lint` (the
//! `abonn-lint` static determinism & soundness gate over the workspace
//! sources, with `--json` findings reports).
//!
//! Every binary accepts `--scale {smoke,default,full}`, `--seed N`,
//! `--out-dir PATH`, and `--fresh` (ignore cached run records). Results
//! are printed as text tables shaped like the paper's and persisted as
//! CSV/JSON under the output directory (default `target/experiments`).
//!
//! Run-time note: budgets are counted in `AppVer` calls (the
//! machine-independent cost unit, see `DESIGN.md` §2) with a wall-clock
//! cap per instance; relative comparisons between approaches are the
//! reproduction target, not absolute seconds.

pub mod cli;
pub mod experiments;
pub mod report;
pub mod scenario;

pub use cli::Args;
pub use scenario::{Approach, InstanceRecord, Scale};
