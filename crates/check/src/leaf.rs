//! Independent re-validation of a single leaf obligation.
//!
//! A leaf claims: "over the input region restricted by my split set, every
//! margin output is positive". The engines established that claim with
//! DeepPoly/α-CROWN back-substitution; this module re-establishes it with
//! machinery that shares none of that code, escalating through three
//! stages until one succeeds:
//!
//! 1. **Interval** — plain interval propagation ([`crate::interval`]).
//! 2. **Box LP** — one triangle-relaxation LP per output, with every
//!    unstable ReLU relaxed over its *interval* pre-activation range.
//! 3. **Refined LP** — intermediate pre-activation ranges are themselves
//!    re-derived layer by layer with LPs before the final margin LPs.
//!
//! Stage 3 dominates any back-substitution-style bound: a CROWN/DeepPoly
//! bound with slopes `α ∈ [0, 1]` is a dual-feasible bound of the
//! triangle LP over the same (or looser) intermediate boxes, so the LP
//! optimum is at least as large. A leaf the engines verified therefore
//! always passes stage 3 — up to simplex tolerances, absorbed by
//! [`ACCEPT_TOL`].

use crate::interval::{self, IntervalBounds, EMPTY_TOL};
use abonn_bound::{InputBox, SplitSet};
use abonn_lp::{Problem, Relation, Sense, Status};
use abonn_nn::CanonicalNetwork;

/// Acceptance tolerance on LP margins: a leaf passes when every output's
/// LP minimum exceeds `-ACCEPT_TOL`. Covers simplex feasibility/pivot
/// tolerances; the engines' own claims are strict (`p̂ > 0`).
pub const ACCEPT_TOL: f64 = 1e-6;

/// Which escalation stage certified the leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafStage {
    /// Plain interval propagation sufficed.
    Interval,
    /// Triangle LP over interval boxes.
    BoxLp,
    /// Triangle LP over layerwise LP-refined boxes.
    RefinedLp,
}

/// Successful leaf check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafOutcome {
    /// The split set empties the region: the claim is vacuously true.
    pub vacuous: bool,
    /// Stage that certified a non-vacuous leaf (`None` iff `vacuous`).
    pub stage: Option<LeafStage>,
    /// Certified lower bound on the minimum margin output.
    pub margin: f64,
    /// LP solves spent.
    pub lp_calls: usize,
}

/// Failed leaf check.
#[derive(Debug, Clone, PartialEq)]
pub enum LeafError {
    /// All stages exhausted without certifying positivity.
    NotVerified {
        /// Best (largest) margin lower bound any stage established.
        margin: f64,
        /// LP solves spent.
        lp_calls: usize,
    },
    /// The simplex solver itself failed (iteration limit / bad problem).
    Solver(String),
}

impl std::fmt::Display for LeafError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeafError::NotVerified { margin, .. } => {
                write!(f, "leaf not verified (margin lower bound {margin})")
            }
            LeafError::Solver(msg) => write!(f, "LP solver failure: {msg}"),
        }
    }
}

impl std::error::Error for LeafError {}

/// Outcome of one margin/bound LP.
enum LpBound {
    /// The relaxation is infeasible, so the exact region is empty.
    Vacuous,
    /// Optimal objective value (bias already added).
    Value(f64),
}

/// Builds the triangle-relaxation LP over stages `0..upto` and minimises
/// or maximises row `i` of stage `upto` over it.
///
/// Variables: the input box, then `(z_k, a_k)` per hidden stage `k <
/// upto`. Constraints: the affine rows as equalities, `a = z` for neurons
/// fixed non-negative by their box, `a = 0` for neurons fixed
/// non-positive, and the two triangle facets `a ≥ z`, `(u−l)·a − u·z ≤
/// −u·l` (with `a ≥ 0` as a variable bound) for unstable neurons.
fn stage_bound(
    net: &CanonicalNetwork,
    region: &InputBox,
    boxes: &[(Vec<f64>, Vec<f64>)],
    upto: usize,
    row: usize,
    sense: Sense,
) -> Result<LpBound, LeafError> {
    let n_in = net.input_dim();
    let stages = net.layers();
    let mut z_off = Vec::with_capacity(upto);
    let mut a_off = Vec::with_capacity(upto);
    let mut n_vars = n_in;
    for stage in &stages[..upto] {
        z_off.push(n_vars);
        a_off.push(n_vars + stage.out_dim());
        n_vars += 2 * stage.out_dim();
    }
    let mut lp = Problem::new(n_vars, sense);
    for j in 0..n_in {
        lp.set_bounds(j, region.lo()[j], region.hi()[j]);
    }
    for (k, stage) in stages[..upto].iter().enumerate() {
        let (lo, hi) = &boxes[k];
        for i in 0..stage.out_dim() {
            lp.set_bounds(z_off[k] + i, lo[i], hi[i]);
            lp.set_bounds(a_off[k] + i, lo[i].max(0.0), hi[i].max(0.0));
        }
    }
    // Affine rows and ReLU relaxations.
    let mut coeffs = vec![0.0; n_vars];
    for (k, stage) in stages[..upto].iter().enumerate() {
        let prev = |j: usize| if k == 0 { j } else { a_off[k - 1] + j };
        for i in 0..stage.out_dim() {
            coeffs.iter_mut().for_each(|c| *c = 0.0);
            coeffs[z_off[k] + i] = 1.0;
            for (j, &w) in stage.weight.row(i).iter().enumerate() {
                coeffs[prev(j)] = -w;
            }
            lp.add_row(&coeffs, Relation::Eq, stage.bias[i]);
            let (l, u) = (boxes[k].0[i], boxes[k].1[i]);
            coeffs.iter_mut().for_each(|c| *c = 0.0);
            if l >= 0.0 {
                // Fixed active: a = z.
                coeffs[a_off[k] + i] = 1.0;
                coeffs[z_off[k] + i] = -1.0;
                lp.add_row(&coeffs, Relation::Eq, 0.0);
            } else if u <= 0.0 {
                // Fixed inactive: a = 0 (already in the variable bounds).
                lp.set_bounds(a_off[k] + i, 0.0, 0.0);
            } else {
                // Unstable: the triangle. a ≥ 0 is a variable bound.
                coeffs[a_off[k] + i] = 1.0;
                coeffs[z_off[k] + i] = -1.0;
                lp.add_row(&coeffs, Relation::Ge, 0.0);
                coeffs[a_off[k] + i] = u - l;
                coeffs[z_off[k] + i] = -u;
                lp.add_row(&coeffs, Relation::Le, -u * l);
            }
        }
    }
    // Objective: row `row` of stage `upto` over its input variables.
    let target = &stages[upto];
    coeffs.iter_mut().for_each(|c| *c = 0.0);
    let prev = |j: usize| if upto == 0 { j } else { a_off[upto - 1] + j };
    for (j, &w) in target.weight.row(row).iter().enumerate() {
        coeffs[prev(j)] = w;
    }
    lp.set_objective(&coeffs);
    let sol = lp
        .solve()
        .map_err(|e| LeafError::Solver(e.to_string()))?;
    match sol.status {
        Status::Optimal => Ok(LpBound::Value(sol.objective + target.bias[row])),
        Status::Infeasible => Ok(LpBound::Vacuous),
        Status::Unbounded => Err(LeafError::Solver(
            "unbounded relaxation over a bounded box".into(),
        )),
    }
}

/// Minimises every output of the final stage over the relaxation; returns
/// the smallest minimum, or `Vacuous` if the relaxation is infeasible.
fn margin_lp(
    net: &CanonicalNetwork,
    region: &InputBox,
    boxes: &[(Vec<f64>, Vec<f64>)],
    lp_calls: &mut usize,
) -> Result<LpBound, LeafError> {
    let last = net.num_layers() - 1;
    let mut worst = f64::INFINITY;
    for row in 0..net.output_dim() {
        *lp_calls += 1;
        match stage_bound(net, region, boxes, last, row, Sense::Minimize)? {
            LpBound::Vacuous => return Ok(LpBound::Vacuous),
            LpBound::Value(v) => worst = worst.min(v),
        }
        if worst <= -ACCEPT_TOL {
            break; // already failing; no need to bound the other outputs
        }
    }
    Ok(LpBound::Value(worst))
}

fn vacuous_outcome(lp_calls: usize) -> LeafOutcome {
    LeafOutcome {
        vacuous: true,
        stage: None,
        margin: f64::INFINITY,
        lp_calls,
    }
}

/// Re-validates one leaf obligation; see the module docs for the staged
/// escalation.
///
/// # Errors
///
/// [`LeafError::NotVerified`] when no stage certifies positivity,
/// [`LeafError::Solver`] on simplex failure.
pub fn check_leaf(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
) -> Result<LeafOutcome, LeafError> {
    // Stage 1: intervals.
    let Some(bounds) = interval::propagate(net, region, splits) else {
        return Ok(vacuous_outcome(0));
    };
    let interval_margin = bounds.min_output_lower();
    if interval_margin > 0.0 {
        return Ok(LeafOutcome {
            vacuous: false,
            stage: Some(LeafStage::Interval),
            margin: interval_margin,
            lp_calls: 0,
        });
    }
    // Stage 2: triangle LP over the interval boxes.
    let IntervalBounds { pre: mut boxes } = bounds;
    let mut lp_calls = 0;
    let box_margin = match margin_lp(net, region, &boxes, &mut lp_calls)? {
        LpBound::Vacuous => return Ok(vacuous_outcome(lp_calls)),
        LpBound::Value(v) => v,
    };
    if box_margin > -ACCEPT_TOL {
        return Ok(LeafOutcome {
            vacuous: false,
            stage: Some(LeafStage::BoxLp),
            margin: box_margin,
            lp_calls,
        });
    }
    // Stage 3: refine intermediate boxes layer by layer with LPs, then
    // redo the margin LPs. Stage 0's interval box is already exact (an
    // affine image of the input box), so refinement starts at stage 1.
    let hidden = net.num_layers() - 1;
    let mut refined = false;
    for k in 1..hidden {
        for i in 0..boxes[k].0.len() {
            // Stable neurons contribute exact rows (`a = z` or `a = 0`) to
            // the relaxation; only unstable boxes feed triangle facets, so
            // only they need LP refinement. Intervals are looser than the
            // engines' bounds, so interval-stable implies engine-stable and
            // dominance is unaffected.
            if boxes[k].0[i] >= 0.0 || boxes[k].1[i] <= 0.0 {
                continue;
            }
            for sense in [Sense::Minimize, Sense::Maximize] {
                lp_calls += 1;
                match stage_bound(net, region, &boxes, k, i, sense)? {
                    LpBound::Vacuous => return Ok(vacuous_outcome(lp_calls)),
                    // Intersect with the split-clamped interval box: both
                    // bounds stay valid, so keep the tighter one.
                    LpBound::Value(v) => match sense {
                        Sense::Minimize if v > boxes[k].0[i] => {
                            boxes[k].0[i] = v;
                            refined = true;
                        }
                        Sense::Maximize if v < boxes[k].1[i] => {
                            boxes[k].1[i] = v;
                            refined = true;
                        }
                        _ => {}
                    },
                }
            }
            if boxes[k].0[i] > boxes[k].1[i] + EMPTY_TOL {
                return Ok(vacuous_outcome(lp_calls));
            }
        }
    }
    let refined_margin = if refined {
        match margin_lp(net, region, &boxes, &mut lp_calls)? {
            LpBound::Vacuous => return Ok(vacuous_outcome(lp_calls)),
            LpBound::Value(v) => v,
        }
    } else {
        box_margin
    };
    if refined_margin > -ACCEPT_TOL {
        return Ok(LeafOutcome {
            vacuous: false,
            stage: Some(LeafStage::RefinedLp),
            margin: refined_margin,
            lp_calls,
        });
    }
    Err(LeafError::NotVerified {
        margin: refined_margin.max(box_margin).max(interval_margin),
        lp_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_bound::{NeuronId, SplitSign};
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;

    /// z = (x, -x), a = relu(z), y = a0 + a1 - 0.6: true range of y over
    /// x in [-1, 1] is [-0.6 + |x|] = [-0.6, 0.4] — not robust at root,
    /// but each single-phase branch is decidable.
    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    #[test]
    fn interval_stage_certifies_shifted_v() {
        // y + 0.7 > 0 everywhere, and intervals see it.
        let net = CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![0.1]),
            ],
        );
        let out = check_leaf(
            &net,
            &InputBox::new(vec![-1.0], vec![1.0]),
            &SplitSet::new(),
        )
        .unwrap();
        assert_eq!(out.stage, Some(LeafStage::Interval));
        assert_eq!(out.lp_calls, 0);
    }

    #[test]
    fn box_lp_beats_intervals_on_the_v() {
        // On the x >= 0 branch: a0 = z0 = x, a1 = 0 (z1 = -x <= 0 is
        // stable), so the LP is exact: y = x - 0.6 dips to -0.6. Verify
        // the *positive-margin* variant instead: y' = a0 - a1 + 0.1 on
        // the same branch is x + 0.1 >= 0.1 > 0, which intervals already
        // prove. To force LP use, keep an unstable neuron: on the root
        // region the v-net margin is negative, so NotVerified is correct.
        let err = check_leaf(
            &v_net(),
            &InputBox::new(vec![-1.0], vec![1.0]),
            &SplitSet::new(),
        )
        .unwrap_err();
        match err {
            LeafError::NotVerified { margin, .. } => {
                // The exact minimum is -0.6; the LP must not report better
                // than the true minimum.
                assert!(margin <= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lp_is_exact_on_fully_split_leaves() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        // x >= 0 branch with both neurons phased: y = x - 0.6 over [0, 1]
        // has minimum -0.6 (not verified, correctly).
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 1), SplitSign::Neg);
        let err = check_leaf(&net, &region, &splits).unwrap_err();
        match err {
            LeafError::NotVerified { margin, .. } => {
                assert!((margin + 0.6).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_split_region_is_vacuous() {
        let net = v_net();
        let splits = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Neg);
        let out = check_leaf(&net, &InputBox::new(vec![0.5], vec![1.0]), &splits).unwrap();
        assert!(out.vacuous);
    }

    #[test]
    fn refined_lp_tightens_two_hidden_layer_nets() {
        // Layer 1: z1 = (x, -x); layer 2 feeds on a1 = relu(z1) with
        // y2 = (a0 - a1, a1 - a0); output sums relu(y2) - small constant.
        // The second layer's interval boxes are loose (they ignore the
        // a0/a1 anti-correlation); LP refinement recovers it.
        let net = CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(
                    Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]),
                    vec![0.0, 0.0],
                ),
                AffinePair::new(Matrix::from_rows(&[&[-1.0, -1.0]]), vec![1.05]),
            ],
        );
        // Exact: relu(x) - relu(-x) = x, so y2 = (x, -x), and
        // relu(y2) sums to |x| <= 1; output = 1.05 - |x| >= 0.05 > 0.
        let out = check_leaf(
            &net,
            &InputBox::new(vec![-1.0], vec![1.0]),
            &SplitSet::new(),
        );
        // Whatever stage certifies it, it must certify: the property is
        // robust with margin 0.05 and the refined LP dominates DeepPoly.
        let out = out.unwrap();
        assert!(!out.vacuous);
    }
}
