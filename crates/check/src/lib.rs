#![forbid(unsafe_code)]
//! Soundness audit subsystem: an independent certificate checker and a
//! seeded differential fuzzing harness.
//!
//! The engines under test (`abonn-core`'s MCTS search, the BaB baseline,
//! and the CROWN-style baseline) all bound sub-problems with the
//! DeepPoly/α-CROWN back-substitution machinery in `abonn-bound`. A bug
//! there could make *every* engine wrong in the same way, so this crate
//! re-establishes `Verified` verdicts from first principles:
//!
//! * [`interval`] reimplements plain interval propagation from its
//!   definition — no code shared with `abonn-bound`'s analyzers.
//! * [`leaf`] escalates each leaf obligation through three independent
//!   stages: intervals, a triangle-relaxation LP over the interval boxes,
//!   and a layerwise LP-refined variant whose bound provably dominates
//!   any back-substituted bound the engines could have used (see
//!   `DESIGN.md` §5d).
//! * [`audit`] replays a [`Certificate`](abonn_core::Certificate)'s flat
//!   terminal collection, rejecting overlapping or non-covering split
//!   sets before any leaf is believed.
//! * [`fuzz`] generates seeded random verification instances, runs all
//!   three engines across cache and thread configurations, and
//!   cross-checks verdicts, witnesses, `RunStats` determinism, and
//!   certificates; failures are minimized into re-runnable JSON repros.
//! * [`replay`] re-establishes a SAT witness against a VNN-LIB property
//!   with one concrete forward pass — the check proof-reuse layers run
//!   before serving a cached counterexample to a dominating query.
//!
//! What this crate deliberately shares with the engines: the problem and
//! certificate *types* (`abonn-core`), the network representation
//! (`abonn-nn`), and the simplex solver (`abonn-lp`). What it deliberately
//! reimplements: every bound computation.

pub mod audit;
pub mod fuzz;
pub mod interval;
pub mod leaf;
pub mod replay;

pub use audit::{
    audit_certificate, audit_partial, audit_structure, AuditError, AuditReport, StructureReport,
};
pub use fuzz::{generate_case, minimize, run_campaign, run_case, CampaignOutcome, FuzzCase,
    FuzzFailure};
pub use interval::{propagate, IntervalBounds};
pub use leaf::{check_leaf, LeafError, LeafOutcome, LeafStage};
pub use replay::{replay_witness, ReplayError};
