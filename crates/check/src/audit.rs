//! Certificate replay: structural validation plus independent leaf
//! re-verification.
//!
//! The auditor does **not** trust the proof tree's branch structure.
//! Every terminal ([`ProofNode::Leaf`] or [`ProofNode::Open`]) records
//! its own split set, and the audit validates the *flat collection* of
//! recorded sets: they must partition the root region exactly — no two
//! terminals may overlap, and no sub-region may be left uncovered. Only
//! then are the closed leaves re-verified with [`crate::leaf`]. The tree
//! walk is still performed, as a consistency check between recorded
//! provenance and branch paths (an inconsistency means the certificate
//! was assembled incorrectly or tampered with).

use crate::leaf::{check_leaf, LeafError, LeafStage};
use abonn_bound::{NeuronId, SplitSet, SplitSign};
use abonn_core::{Certificate, ProofNode, RobustnessProblem};

/// Why an audit rejected a certificate.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// A terminal's recorded split set disagrees with the branch path
    /// leading to it.
    SplitMismatch {
        /// Split set accumulated along the branch path.
        path: Vec<(NeuronId, SplitSign)>,
        /// Split set the terminal recorded.
        recorded: Vec<(NeuronId, SplitSign)>,
    },
    /// A branch re-splits a neuron already fixed on its path, or a
    /// recorded split set carries both phases of one neuron.
    DuplicateSplit {
        /// The twice-split neuron.
        neuron: NeuronId,
    },
    /// A split references a neuron the network does not have.
    InvalidNeuron {
        /// The out-of-range neuron.
        neuron: NeuronId,
    },
    /// Two terminals' recorded regions intersect.
    Overlap {
        /// Recorded split set of the first terminal.
        first: Vec<(NeuronId, SplitSign)>,
        /// Recorded split set of the second terminal.
        second: Vec<(NeuronId, SplitSign)>,
    },
    /// Some phase assignment is covered by no terminal.
    NonCovering {
        /// A split set describing an uncovered sub-region.
        region: Vec<(NeuronId, SplitSign)>,
    },
    /// A closed leaf failed independent re-verification.
    LeafNotVerified {
        /// The leaf's recorded split set.
        splits: Vec<(NeuronId, SplitSign)>,
        /// Best margin lower bound the checker established.
        margin: f64,
    },
    /// The certificate contains an open obligation but the audit required
    /// a complete proof.
    OpenObligation {
        /// The open terminal's recorded split set.
        splits: Vec<(NeuronId, SplitSign)>,
    },
    /// The LP solver failed while re-verifying a leaf.
    Solver(String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::SplitMismatch { path, recorded } => write!(
                f,
                "terminal provenance ({} splits) disagrees with its branch path ({} splits)",
                recorded.len(),
                path.len()
            ),
            AuditError::DuplicateSplit { neuron } => {
                write!(f, "neuron {neuron} split twice")
            }
            AuditError::InvalidNeuron { neuron } => {
                write!(f, "split references nonexistent neuron {neuron}")
            }
            AuditError::Overlap { .. } => write!(f, "two terminal regions overlap"),
            AuditError::NonCovering { region } => {
                write!(f, "uncovered sub-region ({} splits)", region.len())
            }
            AuditError::LeafNotVerified { splits, margin } => write!(
                f,
                "leaf with {} splits not verified (margin bound {margin})",
                splits.len()
            ),
            AuditError::OpenObligation { splits } => write!(
                f,
                "open obligation with {} splits in a supposedly complete certificate",
                splits.len()
            ),
            AuditError::Solver(msg) => write!(f, "LP solver failure: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Statistics from a successful audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Closed leaves re-verified (vacuous ones included).
    pub leaves: usize,
    /// Leaves whose split set empties the region (vacuously true).
    pub vacuous_leaves: usize,
    /// Open obligations encountered (only non-zero for partial audits).
    pub open: usize,
    /// Leaves certified by plain intervals.
    pub by_interval: usize,
    /// Leaves certified by the box LP.
    pub by_box_lp: usize,
    /// Leaves certified by the refined LP.
    pub by_refined_lp: usize,
    /// Total LP solves.
    pub lp_calls: usize,
}

/// Audits a certificate end to end, requiring a *complete* proof: any
/// [`ProofNode::Open`] obligation is an error.
///
/// # Errors
///
/// Any [`AuditError`]; see the variants.
pub fn audit_certificate(
    cert: &Certificate,
    problem: &RobustnessProblem,
) -> Result<AuditReport, AuditError> {
    audit(cert, problem, false)
}

/// Audits a *partial* certificate: open obligations are allowed (and
/// counted), but the terminal collection must still partition the region
/// exactly — the open terminals must cover precisely the unexplored
/// remainder — and every closed leaf must re-verify.
///
/// # Errors
///
/// Any [`AuditError`] except [`AuditError::OpenObligation`].
pub fn audit_partial(
    cert: &Certificate,
    problem: &RobustnessProblem,
) -> Result<AuditReport, AuditError> {
    audit(cert, problem, true)
}

/// What the structural half of an audit established.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructureReport {
    /// Closed terminals ([`ProofNode::Leaf`]) in the certificate.
    pub closed: usize,
    /// Open obligations ([`ProofNode::Open`]) in the certificate.
    pub open: usize,
}

/// Structural audit of a certificate *alone* — no network, no LP.
///
/// Validates everything that can be checked without a concrete problem:
/// recorded terminal provenance must agree with each branch path, no
/// neuron may be split twice, and the flat collection of recorded split
/// sets must partition the root region exactly. This is the cheap half
/// of [`audit_certificate`]; callers loading certificates from untrusted
/// or bit-rotted storage run it eagerly and defer the per-leaf
/// re-verification (which needs the model and property) to first reuse.
///
/// # Errors
///
/// Any structural [`AuditError`] (`SplitMismatch`, `DuplicateSplit`,
/// `Overlap`, `NonCovering`). Neuron range checks need the network and
/// are not performed here.
pub fn audit_structure(cert: &Certificate) -> Result<StructureReport, AuditError> {
    walk(cert.root(), &SplitSet::new(), None)?;
    let terminals = cert.terminals();
    let sets: Vec<Vec<(NeuronId, SplitSign)>> =
        terminals.iter().map(|(s, _)| normalize(s)).collect();
    exact_cover(&sets)?;
    let mut report = StructureReport::default();
    for (_, closed) in &terminals {
        if *closed {
            report.closed += 1;
        } else {
            report.open += 1;
        }
    }
    Ok(report)
}

fn audit(
    cert: &Certificate,
    problem: &RobustnessProblem,
    allow_open: bool,
) -> Result<AuditReport, AuditError> {
    let layer_sizes = problem.margin_net().relu_layer_sizes();
    // 1. Tree-walk consistency: paths vs recorded provenance, duplicate
    //    splits, neuron validity.
    walk(cert.root(), &SplitSet::new(), Some(&layer_sizes))?;
    // 2. The flat recorded collection partitions the region exactly.
    let terminals = cert.terminals();
    let sets: Vec<Vec<(NeuronId, SplitSign)>> =
        terminals.iter().map(|(s, _)| normalize(s)).collect();
    exact_cover(&sets)?;
    // 3. Open obligations.
    let mut report = AuditReport::default();
    for (splits, closed) in &terminals {
        if !closed {
            if !allow_open {
                return Err(AuditError::OpenObligation {
                    splits: splits.clone(),
                });
            }
            report.open += 1;
        }
    }
    // 4. Independent re-verification of every closed leaf, driven by the
    //    recorded provenance alone.
    for (splits, closed) in &terminals {
        if !closed {
            continue;
        }
        let mut set = SplitSet::new();
        for &(n, s) in splits {
            set = set.with(n, s);
        }
        match check_leaf(problem.margin_net(), problem.region(), &set) {
            Ok(outcome) => {
                report.leaves += 1;
                report.lp_calls += outcome.lp_calls;
                if outcome.vacuous {
                    report.vacuous_leaves += 1;
                } else {
                    match outcome.stage.expect("non-vacuous outcome has a stage") {
                        LeafStage::Interval => report.by_interval += 1,
                        LeafStage::BoxLp => report.by_box_lp += 1,
                        LeafStage::RefinedLp => report.by_refined_lp += 1,
                    }
                }
            }
            Err(LeafError::NotVerified { margin, lp_calls: _ }) => {
                return Err(AuditError::LeafNotVerified {
                    splits: splits.clone(),
                    margin,
                });
            }
            Err(LeafError::Solver(msg)) => return Err(AuditError::Solver(msg)),
        }
    }
    Ok(report)
}

/// Recursive tree walk: rejects duplicate splits along a path, invalid
/// neurons, and terminals whose recorded provenance disagrees with the
/// path.
fn walk(
    node: &ProofNode,
    path: &SplitSet,
    layer_sizes: Option<&[usize]>,
) -> Result<(), AuditError> {
    match node {
        ProofNode::Leaf { splits } | ProofNode::Open { splits } => {
            for &(neuron, _) in splits {
                check_neuron(neuron, layer_sizes)?;
            }
            // `path` is a map, so it cannot hold two phases of one
            // neuron; equality therefore also rejects recorded sets that
            // constrain a neuron twice.
            let recorded = normalize(splits);
            let from_path: Vec<(NeuronId, SplitSign)> = path.iter().collect();
            if recorded != from_path {
                return Err(AuditError::SplitMismatch {
                    path: from_path,
                    recorded: splits.clone(),
                });
            }
            Ok(())
        }
        ProofNode::Branch { neuron, pos, neg } => {
            check_neuron(*neuron, layer_sizes)?;
            if path.sign_of(*neuron).is_some() {
                return Err(AuditError::DuplicateSplit { neuron: *neuron });
            }
            walk(pos, &path.with(*neuron, SplitSign::Pos), layer_sizes)?;
            walk(neg, &path.with(*neuron, SplitSign::Neg), layer_sizes)
        }
    }
}

fn check_neuron(neuron: NeuronId, layer_sizes: Option<&[usize]>) -> Result<(), AuditError> {
    let Some(layer_sizes) = layer_sizes else {
        // Structure-only audits have no network to range-check against.
        return Ok(());
    };
    if neuron.layer >= layer_sizes.len() || neuron.index >= layer_sizes[neuron.layer] {
        return Err(AuditError::InvalidNeuron { neuron });
    }
    Ok(())
}

/// Sorts a recorded split set by `(layer, index)` without deduplicating —
/// a duplicated pair or a both-phases pair must stay visible to the
/// duplicate check.
fn normalize(splits: &[(NeuronId, SplitSign)]) -> Vec<(NeuronId, SplitSign)> {
    let mut v = splits.to_vec();
    v.sort_unstable();
    v.dedup(); // identical (neuron, sign) pairs are harmless repetition
    v
}

/// Checks that the recorded split sets partition the phase space exactly.
///
/// Recursive refinement: pick a neuron from the first set, divide the
/// collection into the sets compatible with its positive and negative
/// phase (sets not constraining the neuron go to both sides), and recurse.
/// A branch with no set is uncovered; a set that becomes empty while
/// siblings remain covers their regions too — an overlap.
fn exact_cover(sets: &[Vec<(NeuronId, SplitSign)>]) -> Result<(), AuditError> {
    let indexed: Vec<(usize, Vec<(NeuronId, SplitSign)>)> =
        sets.iter().cloned().enumerate().collect();
    cover_rec(&indexed, sets, &mut Vec::new())
}

fn cover_rec(
    active: &[(usize, Vec<(NeuronId, SplitSign)>)],
    originals: &[Vec<(NeuronId, SplitSign)>],
    region: &mut Vec<(NeuronId, SplitSign)>,
) -> Result<(), AuditError> {
    match active {
        [] => Err(AuditError::NonCovering {
            region: region.clone(),
        }),
        [(_, rest)] if rest.is_empty() => Ok(()),
        _ => {
            // A set with no remaining constraint covers this whole
            // sub-region; any sibling therefore overlaps it.
            if let Some((covering, _)) = active.iter().find(|(_, rest)| rest.is_empty()) {
                let (other, _) = active
                    .iter()
                    .find(|(idx, _)| idx != covering)
                    .expect("len > 1");
                return Err(AuditError::Overlap {
                    first: originals[*covering].clone(),
                    second: originals[*other].clone(),
                });
            }
            let neuron = active[0].1[0].0;
            for phase in [SplitSign::Pos, SplitSign::Neg] {
                let side: Vec<(usize, Vec<(NeuronId, SplitSign)>)> = active
                    .iter()
                    .filter(|(_, rest)| {
                        !rest.iter().any(|&(n, s)| n == neuron && s == phase.flipped())
                    })
                    .map(|(idx, rest)| {
                        (
                            *idx,
                            rest.iter().copied().filter(|&(n, _)| n != neuron).collect(),
                        )
                    })
                    .collect();
                region.push((neuron, phase));
                cover_rec(&side, originals, region)?;
                region.pop();
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Network, Shape};
    use abonn_tensor::Matrix;

    fn robust_problem() -> RobustnessProblem {
        let net = Network::new(
            Shape::Flat(2),
            vec![
                Layer::dense(
                    Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]]),
                    vec![0.0, 0.4],
                ),
                Layer::relu(),
                Layer::dense(Matrix::identity(2), vec![0.0, 0.0]),
            ],
        )
        .unwrap();
        RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.05).unwrap()
    }

    fn n(layer: usize, index: usize) -> NeuronId {
        NeuronId::new(layer, index)
    }

    #[test]
    fn trivial_root_leaf_certificate_audits() {
        let cert = Certificate::new(ProofNode::root_leaf());
        let report = audit_certificate(&cert, &robust_problem()).unwrap();
        assert_eq!(report.leaves, 1);
        assert_eq!(report.open, 0);
    }

    #[test]
    fn branching_certificate_audits() {
        let a = n(0, 0);
        let cert = Certificate::new(ProofNode::Branch {
            neuron: a,
            pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Pos)])),
            neg: Box::new(ProofNode::leaf(vec![(a, SplitSign::Neg)])),
        });
        let report = audit_certificate(&cert, &robust_problem()).unwrap();
        assert_eq!(report.leaves, 2);
    }

    #[test]
    fn flipped_split_phase_is_rejected() {
        // Corruption model from the acceptance criteria: the two leaves'
        // recorded phases are swapped relative to their branch paths.
        let a = n(0, 0);
        let cert = Certificate::new(ProofNode::Branch {
            neuron: a,
            pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Neg)])),
            neg: Box::new(ProofNode::leaf(vec![(a, SplitSign::Pos)])),
        });
        assert!(matches!(
            audit_certificate(&cert, &robust_problem()),
            Err(AuditError::SplitMismatch { .. })
        ));
    }

    #[test]
    fn overlapping_terminals_are_rejected() {
        // Both leaves record the Pos phase: the Pos region is covered
        // twice and the Neg region not at all; overlap is found first.
        let a = n(0, 0);
        let sets = vec![
            vec![(a, SplitSign::Pos)],
            vec![(a, SplitSign::Pos)],
        ];
        assert!(matches!(
            exact_cover(&sets),
            Err(AuditError::Overlap { .. })
        ));
    }

    #[test]
    fn non_covering_terminals_are_rejected() {
        let (a, b) = (n(0, 0), n(0, 1));
        // Missing the (Neg, Neg) cell.
        let sets = vec![
            vec![(a, SplitSign::Pos)],
            vec![(a, SplitSign::Neg), (b, SplitSign::Pos)],
        ];
        match exact_cover(&sets) {
            Err(AuditError::NonCovering { region }) => {
                assert!(region.contains(&(a, SplitSign::Neg)));
                assert!(region.contains(&(b, SplitSign::Neg)));
            }
            other => panic!("expected NonCovering, got {other:?}"),
        }
    }

    #[test]
    fn deep_partitions_cover() {
        let (a, b, c) = (n(0, 0), n(0, 1), n(1, 0));
        let sets = vec![
            vec![(a, SplitSign::Pos)],
            vec![(a, SplitSign::Neg), (b, SplitSign::Pos)],
            vec![(a, SplitSign::Neg), (b, SplitSign::Neg), (c, SplitSign::Pos)],
            vec![(a, SplitSign::Neg), (b, SplitSign::Neg), (c, SplitSign::Neg)],
        ];
        exact_cover(&sets).unwrap();
    }

    #[test]
    fn open_obligations_fail_strict_and_pass_partial() {
        let a = n(0, 0);
        let cert = Certificate::new(ProofNode::Branch {
            neuron: a,
            pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Pos)])),
            neg: Box::new(ProofNode::open(vec![(a, SplitSign::Neg)])),
        });
        assert!(matches!(
            audit_certificate(&cert, &robust_problem()),
            Err(AuditError::OpenObligation { .. })
        ));
        let report = audit_partial(&cert, &robust_problem()).unwrap();
        assert_eq!(report.open, 1);
        assert_eq!(report.leaves, 1);
    }

    #[test]
    fn invalid_neuron_is_rejected() {
        let bogus = n(7, 0);
        let cert = Certificate::new(ProofNode::Branch {
            neuron: bogus,
            pos: Box::new(ProofNode::leaf(vec![(bogus, SplitSign::Pos)])),
            neg: Box::new(ProofNode::leaf(vec![(bogus, SplitSign::Neg)])),
        });
        assert!(matches!(
            audit_certificate(&cert, &robust_problem()),
            Err(AuditError::InvalidNeuron { .. })
        ));
    }

    #[test]
    fn structural_audit_needs_no_problem() {
        let a = n(0, 0);
        let good = Certificate::new(ProofNode::Branch {
            neuron: a,
            pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Pos)])),
            neg: Box::new(ProofNode::open(vec![(a, SplitSign::Neg)])),
        });
        let report = audit_structure(&good).unwrap();
        assert_eq!((report.closed, report.open), (1, 1));
        // Swapped phases: provenance disagrees with the path.
        let bad = Certificate::new(ProofNode::Branch {
            neuron: a,
            pos: Box::new(ProofNode::leaf(vec![(a, SplitSign::Neg)])),
            neg: Box::new(ProofNode::leaf(vec![(a, SplitSign::Pos)])),
        });
        assert!(matches!(
            audit_structure(&bad),
            Err(AuditError::SplitMismatch { .. })
        ));
        // A leaf beyond this tiny network's neurons still passes the
        // structural audit — range checks need the network.
        let out_of_range = Certificate::new(ProofNode::Branch {
            neuron: n(7, 0),
            pos: Box::new(ProofNode::leaf(vec![(n(7, 0), SplitSign::Pos)])),
            neg: Box::new(ProofNode::leaf(vec![(n(7, 0), SplitSign::Neg)])),
        });
        assert!(audit_structure(&out_of_range).is_ok());
        assert!(matches!(
            audit_certificate(&out_of_range, &robust_problem()),
            Err(AuditError::InvalidNeuron { .. })
        ));
    }

    #[test]
    fn unverifiable_leaf_is_rejected() {
        // Same network, radius far too large for a single-leaf proof.
        let net = robust_problem().network().clone();
        let problem = RobustnessProblem::new(&net, vec![0.5, 0.5], 0, 0.45).unwrap();
        let cert = Certificate::new(ProofNode::root_leaf());
        assert!(matches!(
            audit_certificate(&cert, &problem),
            Err(AuditError::LeafNotVerified { .. })
        ));
    }
}
