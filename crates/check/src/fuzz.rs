//! Seeded differential fuzzing across all three engines.
//!
//! Each case is derived deterministically from `(seed, index)`, so a
//! campaign is reproducible from its command line and a single failing
//! case is reproducible from its JSON dump. Every case runs the MCTS
//! search, the BaB baseline (each with bound cache on/off, LP warm
//! starting on/off, and on 1 and 4 worker threads), and the CROWN-style
//! baseline, then cross-checks:
//!
//! * **Verdict agreement** — two solved runs must agree (`Timeout` is
//!   compatible with anything).
//! * **Witness validity** — every `Falsified` witness must falsify the
//!   property under a concrete forward pass.
//! * **Stats determinism** — `RunStats` must be identical across thread
//!   counts (modulo wall time), identical across cache settings modulo
//!   wall time and the cache work counters, identical across warm-start
//!   settings modulo wall time and the LP work counters, and identical
//!   across kernel/LP substrates (optimized vs `--reference-kernels`)
//!   modulo wall time and the per-pivot cell counter — including the
//!   certificate bytes.
//! * **Certificate audits** — verified runs must produce certificates
//!   that pass [`crate::audit::audit_certificate`]; timed-out runs must
//!   produce partial certificates that pass
//!   [`crate::audit::audit_partial`].
//!
//! Failing cases are greedily minimized (halve the budget, shrink the
//! radius, drop hidden neurons) before being reported.

use crate::audit::{audit_certificate, audit_partial};
use abonn_bound::DeepPoly;
use std::sync::Mutex;
use abonn_core::heuristics::HeuristicKind;
use abonn_core::{
    AbonnConfig, AbonnVerifier, BabBaseline, Budget, Certificate, RobustnessProblem, RunResult,
    RunStats, Verdict, WorkerPool,
};
use abonn_nn::{Layer, Network, Shape};
use abonn_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Weight-layout description of a fully-connected ReLU network, kept as
/// plain nested vectors so repro files are readable and mutation (neuron
/// dropping) is trivial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseSpec {
    /// Row-major weights, one row per output neuron.
    pub weights: Vec<Vec<f64>>,
    /// Per-output bias.
    pub bias: Vec<f64>,
}

/// A network as a list of dense stages with ReLUs between them (none
/// after the last).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Input dimension.
    pub input_dim: usize,
    /// Dense stages, first to last.
    pub layers: Vec<DenseSpec>,
}

impl NetSpec {
    /// Materialises the runtime [`Network`].
    ///
    /// # Panics
    ///
    /// Panics if the spec is structurally inconsistent (the generator and
    /// minimizer only produce consistent specs).
    #[must_use]
    pub fn build(&self) -> Network {
        let mut layers = Vec::new();
        for (k, stage) in self.layers.iter().enumerate() {
            let rows: Vec<&[f64]> = stage.weights.iter().map(Vec::as_slice).collect();
            layers.push(Layer::dense(Matrix::from_rows(&rows), stage.bias.clone()));
            if k + 1 < self.layers.len() {
                layers.push(Layer::relu());
            }
        }
        Network::new(Shape::Flat(self.input_dim), layers).expect("generated spec is consistent")
    }
}

/// One self-contained fuzz instance, serialisable as a repro file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Campaign seed.
    pub seed: u64,
    /// Case index within the campaign.
    pub index: u64,
    /// The network.
    pub net: NetSpec,
    /// Center of the `L∞` ball.
    pub input: Vec<f64>,
    /// Claimed label.
    pub label: usize,
    /// Perturbation radius.
    pub epsilon: f64,
    /// Per-engine `AppVer` call budget (call-based only, for
    /// determinism).
    pub budget_calls: usize,
}

impl FuzzCase {
    /// Serialises the case as pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FuzzCase serialises")
    }

    /// Parses a case from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// What a cross-check violation looked like.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Two solved engines disagreed on the verdict.
    VerdictDisagreement,
    /// A falsified run returned a witness the concrete network accepts.
    InvalidWitness,
    /// `RunStats` differed where they must be identical.
    StatsMismatch,
    /// A certificate failed its audit (or was missing/unexpected).
    CertificateRejected,
    /// The instance could not even be constructed.
    SpecError,
}

/// A cross-check violation, tied to the engine variant that exposed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzFailure {
    /// Violation category.
    pub kind: FailureKind,
    /// Human-readable description (engine variant, values involved).
    pub detail: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignOutcome {
    /// Cases generated and run.
    pub cases: usize,
    /// Cases every engine verified.
    pub verified: usize,
    /// Cases every solved engine falsified.
    pub falsified: usize,
    /// Cases where all engines timed out.
    pub timeout: usize,
    /// Certificate audits that passed (complete + partial).
    pub audits_passed: usize,
    /// Minimized failing cases with their violations.
    pub failures: Vec<(FuzzCase, FuzzFailure)>,
}

/// Serialises whole-variant-sweep executions: the reference-substrate
/// variants flip the process-global kernel/LP switches, and a flip
/// landing mid-sweep in a concurrent `run_case` would perturb that
/// sweep's `lp_pivot_cells` comparisons (results are substrate-invariant,
/// the per-pivot work metric deliberately is not).
static SUBSTRATE_SWEEP: Mutex<()> = Mutex::new(());

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministically derives case `index` of campaign `seed`.
#[must_use]
pub fn generate_case(seed: u64, index: u64) -> FuzzCase {
    let mut rng = SmallRng::seed_from_u64(seed ^ index.wrapping_mul(GOLDEN));
    let net = if rng.gen_bool(0.35) {
        gate_net(&mut rng)
    } else {
        random_net(&mut rng)
    };
    let input_dim = net.input_dim;
    let mut input: Vec<f64> = (0..input_dim).map(|_| rng.gen_range(0.15..0.85)).collect();
    if net.layers.len() >= 2 && input_dim == 2 && rng.gen_bool(0.5) {
        // Bias gate nets toward the interesting corner of their design.
        input = vec![rng.gen_range(0.7..0.9), rng.gen_range(0.1..0.3)];
    }
    let network = net.build();
    let out = network.forward(&input);
    let label = out
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    let epsilon = rng.gen_range(0.03..0.4);
    let budget_calls = *[12usize, 40, 120]
        .get(rng.gen_range(0usize..3))
        .expect("three budgets");
    FuzzCase {
        seed,
        index,
        net,
        input,
        label,
        epsilon,
        budget_calls,
    }
}

/// A small fully-random ReLU net: 2–4 inputs, 1–2 hidden layers of width
/// 2–5, 2–3 classes.
fn random_net(rng: &mut SmallRng) -> NetSpec {
    let input_dim = rng.gen_range(2usize..=4);
    let hidden_layers = rng.gen_range(1usize..=2);
    let classes = rng.gen_range(2usize..=3);
    let mut dims = vec![input_dim];
    for _ in 0..hidden_layers {
        dims.push(rng.gen_range(2usize..=5));
    }
    dims.push(classes);
    let mut layers = Vec::new();
    for w in dims.windows(2) {
        let (n_in, n_out) = (w[0], w[1]);
        layers.push(DenseSpec {
            weights: (0..n_out)
                .map(|_| (0..n_in).map(|_| rng.gen_range(-1.5..1.5)).collect())
                .collect(),
            bias: (0..n_out).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        });
    }
    NetSpec { input_dim, layers }
}

/// A "gate" net built to defeat one-shot relaxations: the margin
/// subtracts two ReLU gates whose thresholds sit near the input sum, so
/// robust instances still force the engines to branch.
fn gate_net(rng: &mut SmallRng) -> NetSpec {
    let t1 = 1.0 + rng.gen_range(-0.05..0.05);
    let t2 = 0.9 + rng.gen_range(-0.05..0.05);
    let coef = 0.2 + rng.gen_range(-0.05..0.05);
    NetSpec {
        input_dim: 2,
        layers: vec![
            DenseSpec {
                weights: vec![
                    vec![1.0, 1.0],
                    vec![1.0, 1.0],
                    vec![1.0, 0.0],
                    vec![0.0, 1.0],
                ],
                bias: vec![-t1, -t2, 0.0, 0.0],
            },
            DenseSpec {
                weights: vec![vec![-coef, -coef, 1.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]],
                bias: vec![0.0, 0.0],
            },
        ],
    }
}

/// One engine run: verdict, stats, and optional certificate.
struct VariantRun {
    name: &'static str,
    result: RunResult,
    certificate: Option<Certificate>,
}

/// Runs every engine variant on the case's problem.
fn run_variants(problem: &RobustnessProblem, budget: &Budget) -> Vec<VariantRun> {
    let _sweep = SUBSTRATE_SWEEP
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let planet = || Arc::new(DeepPoly::planet());
    let abonn = |cache: bool, warm: bool, threads: usize| {
        AbonnVerifier::new(
            AbonnConfig {
                incremental: cache,
                warm_start: warm,
                ..AbonnConfig::default()
            },
            planet(),
        )
        .with_pool(Arc::new(WorkerPool::new(threads)))
    };
    let bab = |cache: bool, warm: bool, threads: usize| {
        let mut b = BabBaseline::new(HeuristicKind::DeepSplit, planet());
        b.incremental = cache;
        b.warm_start = warm;
        b.with_pool(Arc::new(WorkerPool::new(threads)))
    };
    let mut runs = Vec::new();
    for (name, cache, threads) in [
        ("abonn/cache/1t", true, 1),
        ("abonn/nocache/1t", false, 1),
        ("abonn/cache/4t", true, 4),
    ] {
        let (result, certificate) =
            abonn(cache, true, threads).verify_with_certificate(problem, budget);
        runs.push(VariantRun {
            name,
            result,
            certificate,
        });
    }
    for (name, cache, threads) in [
        ("bab/cache/1t", true, 1),
        ("bab/nocache/1t", false, 1),
        ("bab/cache/4t", true, 4),
    ] {
        let (result, certificate) =
            bab(cache, true, threads).verify_with_certificate(problem, budget);
        runs.push(VariantRun {
            name,
            result,
            certificate,
        });
    }
    let (result, certificate) =
        abonn_core::CrownStyle::default().verify_with_certificate(problem, budget);
    runs.push(VariantRun {
        name: "crown",
        result,
        certificate,
    });
    // Warm-start ablations ride at the end so the cache/thread pair
    // indices above stay stable.
    let (result, certificate) = abonn(true, false, 1).verify_with_certificate(problem, budget);
    runs.push(VariantRun {
        name: "abonn/nowarm/1t",
        result,
        certificate,
    });
    let (result, certificate) = bab(true, false, 1).verify_with_certificate(problem, budget);
    runs.push(VariantRun {
        name: "bab/nowarm/1t",
        result,
        certificate,
    });
    // Reference-substrate ablations: naive rolled kernels + the dense
    // simplex engine must reproduce the cache/1t runs exactly (modulo
    // the per-pivot cell counter).
    abonn_tensor::set_reference_kernels(true);
    abonn_lp::set_reference_solver(true);
    let (result, certificate) = abonn(true, true, 1).verify_with_certificate(problem, budget);
    runs.push(VariantRun {
        name: "abonn/cache/1t/ref",
        result,
        certificate,
    });
    let (result, certificate) = bab(true, true, 1).verify_with_certificate(problem, budget);
    runs.push(VariantRun {
        name: "bab/cache/1t/ref",
        result,
        certificate,
    });
    abonn_tensor::set_reference_kernels(false);
    abonn_lp::set_reference_solver(false);
    runs
}

fn strip_wall(mut s: RunStats) -> RunStats {
    s.wall = Duration::ZERO;
    s
}

fn strip_cache_counters(mut s: RunStats) -> RunStats {
    s.wall = Duration::ZERO;
    s.cache_layers_reused = 0;
    s.cache_layers_recomputed = 0;
    s.backsub_steps = 0;
    s.backsub_rows_skipped = 0;
    s.backsub_rows_total = 0;
    s.blocks_skipped = 0;
    s.arena_bytes_peak = 0;
    s
}

/// Warm starting changes how many pivots each LP solve needs (and which
/// solves are warmed), but nothing else — strip exactly those counters.
fn strip_warm_counters(mut s: RunStats) -> RunStats {
    s.wall = Duration::ZERO;
    s.lp_pivots = 0;
    s.lp_warm_hits = 0;
    s.lp_cold_solves = 0;
    s.lp_pivot_cells = 0;
    s
}

/// The reference substrate (rolled kernels, dense simplex) must
/// reproduce every counter except the per-pivot work metric — the dense
/// engine rewrites more cells per basis change by design.
fn strip_substrate_counters(mut s: RunStats) -> RunStats {
    s.wall = Duration::ZERO;
    s.lp_pivot_cells = 0;
    s
}

fn fail(kind: FailureKind, detail: String) -> FuzzFailure {
    FuzzFailure { kind, detail }
}

/// Per-case summary on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseReport {
    /// `true` when every engine verified (nobody timed out or falsified).
    pub all_verified: bool,
    /// `true` when every solved engine falsified.
    pub any_falsified: bool,
    /// Certificate audits that passed.
    pub audits_passed: usize,
}

/// Runs one case through every engine variant and every cross-check.
///
/// # Errors
///
/// The first [`FuzzFailure`] encountered.
pub fn run_case(case: &FuzzCase) -> Result<CaseReport, FuzzFailure> {
    let network = case.net.build();
    let problem = RobustnessProblem::new(&network, case.input.clone(), case.label, case.epsilon)
        .map_err(|e| fail(FailureKind::SpecError, format!("problem construction: {e}")))?;
    let budget = Budget::with_appver_calls(case.budget_calls);
    let runs = run_variants(&problem, &budget);

    // Witness validity: a claimed counterexample must actually flip the
    // concrete network.
    for run in &runs {
        if let Verdict::Falsified(w) = &run.result.verdict {
            if !problem.validate_witness(w) {
                return Err(fail(
                    FailureKind::InvalidWitness,
                    format!("{}: witness {w:?} does not falsify the property", run.name),
                ));
            }
        }
    }

    // Verdict agreement among solved runs.
    let mut solved: Option<(&str, bool)> = None;
    for run in &runs {
        let this = match run.result.verdict {
            Verdict::Verified => Some(true),
            Verdict::Falsified(_) => Some(false),
            Verdict::Timeout => None,
        };
        if let Some(this) = this {
            match solved {
                None => solved = Some((run.name, this)),
                Some((first, v)) if v != this => {
                    return Err(fail(
                        FailureKind::VerdictDisagreement,
                        format!(
                            "{first} says {} but {} says {}",
                            verdict_word(v),
                            run.name,
                            verdict_word(this)
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }

    // Stats determinism: identical across thread counts; identical across
    // cache settings modulo the cache work counters.
    for (a, b) in [(0usize, 2usize), (3, 5)] {
        let (ra, rb) = (&runs[a], &runs[b]);
        if strip_wall(ra.result.stats) != strip_wall(rb.result.stats) {
            return Err(fail(
                FailureKind::StatsMismatch,
                format!(
                    "{} vs {}: {:?} != {:?}",
                    ra.name, rb.name, ra.result.stats, rb.result.stats
                ),
            ));
        }
        if ra.result.verdict != rb.result.verdict {
            return Err(fail(
                FailureKind::VerdictDisagreement,
                format!("{} vs {}: thread count changed the verdict", ra.name, rb.name),
            ));
        }
    }
    for (a, b) in [(0usize, 1usize), (3, 4)] {
        let (ra, rb) = (&runs[a], &runs[b]);
        if strip_cache_counters(ra.result.stats) != strip_cache_counters(rb.result.stats) {
            return Err(fail(
                FailureKind::StatsMismatch,
                format!(
                    "{} vs {}: {:?} != {:?}",
                    ra.name, rb.name, ra.result.stats, rb.result.stats
                ),
            ));
        }
        if ra.result.verdict != rb.result.verdict {
            return Err(fail(
                FailureKind::VerdictDisagreement,
                format!("{} vs {}: bound cache changed the verdict", ra.name, rb.name),
            ));
        }
    }
    // Identical across warm-start settings modulo the LP work counters.
    for (a, b) in [(0usize, 7usize), (3, 8)] {
        let (ra, rb) = (&runs[a], &runs[b]);
        if strip_warm_counters(ra.result.stats) != strip_warm_counters(rb.result.stats) {
            return Err(fail(
                FailureKind::StatsMismatch,
                format!(
                    "{} vs {}: {:?} != {:?}",
                    ra.name, rb.name, ra.result.stats, rb.result.stats
                ),
            ));
        }
        if ra.result.verdict != rb.result.verdict {
            return Err(fail(
                FailureKind::VerdictDisagreement,
                format!("{} vs {}: warm starting changed the verdict", ra.name, rb.name),
            ));
        }
    }

    // Identical across substrates modulo per-pivot cells, down to the
    // certificate bytes.
    for (a, b) in [(0usize, 9usize), (3, 10)] {
        let (ra, rb) = (&runs[a], &runs[b]);
        if strip_substrate_counters(ra.result.stats) != strip_substrate_counters(rb.result.stats) {
            return Err(fail(
                FailureKind::StatsMismatch,
                format!(
                    "{} vs {}: {:?} != {:?}",
                    ra.name, rb.name, ra.result.stats, rb.result.stats
                ),
            ));
        }
        if ra.result.verdict != rb.result.verdict {
            return Err(fail(
                FailureKind::VerdictDisagreement,
                format!("{} vs {}: the substrate changed the verdict", ra.name, rb.name),
            ));
        }
        if ra.certificate != rb.certificate {
            return Err(fail(
                FailureKind::CertificateRejected,
                format!("{} vs {}: the substrate changed the certificate", ra.name, rb.name),
            ));
        }
    }

    // Certificate audits.
    let mut audits_passed = 0usize;
    for run in &runs {
        match (&run.result.verdict, &run.certificate) {
            (Verdict::Verified, Some(cert)) => {
                audit_certificate(cert, &problem).map_err(|e| {
                    fail(
                        FailureKind::CertificateRejected,
                        format!("{}: complete certificate rejected: {e}", run.name),
                    )
                })?;
                audits_passed += 1;
            }
            (Verdict::Verified, None) => {
                return Err(fail(
                    FailureKind::CertificateRejected,
                    format!("{}: verified without a certificate", run.name),
                ));
            }
            (Verdict::Timeout, Some(cert)) => {
                audit_partial(cert, &problem).map_err(|e| {
                    fail(
                        FailureKind::CertificateRejected,
                        format!("{}: partial certificate rejected: {e}", run.name),
                    )
                })?;
                audits_passed += 1;
            }
            (Verdict::Timeout, None) => {
                return Err(fail(
                    FailureKind::CertificateRejected,
                    format!("{}: timeout without a partial certificate", run.name),
                ));
            }
            (Verdict::Falsified(_), Some(_)) => {
                return Err(fail(
                    FailureKind::CertificateRejected,
                    format!("{}: falsified run carries a certificate", run.name),
                ));
            }
            (Verdict::Falsified(_), None) => {}
        }
    }

    let all_verified = runs
        .iter()
        .all(|r| matches!(r.result.verdict, Verdict::Verified));
    let any_falsified = runs
        .iter()
        .any(|r| matches!(r.result.verdict, Verdict::Falsified(_)));
    Ok(CaseReport {
        all_verified,
        any_falsified,
        audits_passed,
    })
}

fn verdict_word(verified: bool) -> &'static str {
    if verified {
        "verified"
    } else {
        "falsified"
    }
}

/// Greedily shrinks a failing case: each candidate mutation is kept when
/// the case still fails (with any failure), until no mutation helps or
/// the rerun budget (60) is exhausted. Returns the minimized case and its
/// (possibly different) failure.
#[must_use]
pub fn minimize(case: FuzzCase, failure: FuzzFailure) -> (FuzzCase, FuzzFailure) {
    let mut best = case;
    let mut best_failure = failure;
    let mut reruns = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if reruns >= 60 {
                return (best, best_failure);
            }
            reruns += 1;
            if let Err(f) = run_case(&candidate) {
                best = candidate;
                best_failure = f;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, best_failure);
        }
    }
}

/// Candidate shrinks, cheapest first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    if case.budget_calls > 4 {
        let mut c = case.clone();
        c.budget_calls /= 2;
        out.push(c);
    }
    if case.epsilon > 0.02 {
        let mut c = case.clone();
        c.epsilon /= 2.0;
        out.push(c);
    }
    // Drop one neuron from each hidden stage in turn.
    for stage in 0..case.net.layers.len().saturating_sub(1) {
        let width = case.net.layers[stage].bias.len();
        if width <= 1 {
            continue;
        }
        for j in 0..width {
            let mut net = case.net.clone();
            net.layers[stage].weights.remove(j);
            net.layers[stage].bias.remove(j);
            for row in &mut net.layers[stage + 1].weights {
                row.remove(j);
            }
            let mut c = case.clone();
            c.net = net;
            out.push(c);
        }
    }
    out
}

/// Runs a whole campaign: `count` cases derived from `seed`, failures
/// minimized.
#[must_use]
pub fn run_campaign(seed: u64, count: u64) -> CampaignOutcome {
    let mut outcome = CampaignOutcome::default();
    for index in 0..count {
        let case = generate_case(seed, index);
        outcome.cases += 1;
        match run_case(&case) {
            Ok(report) => {
                if report.all_verified {
                    outcome.verified += 1;
                } else if report.any_falsified {
                    outcome.falsified += 1;
                } else {
                    outcome.timeout += 1;
                }
                outcome.audits_passed += report.audits_passed;
            }
            Err(failure) => {
                let (min_case, min_failure) = minimize(case, failure);
                outcome.failures.push((min_case, min_failure));
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(42, 7);
        let b = generate_case(42, 7);
        assert_eq!(a, b);
        let c = generate_case(43, 7);
        assert_ne!(a, c);
    }

    #[test]
    fn cases_roundtrip_through_json() {
        let case = generate_case(1, 2);
        let back = FuzzCase::from_json(&case.to_json()).unwrap();
        assert_eq!(case, back);
    }

    #[test]
    fn small_campaign_is_clean() {
        let outcome = run_campaign(7, 5);
        assert_eq!(outcome.cases, 5);
        assert!(
            outcome.failures.is_empty(),
            "unexpected failures: {:?}",
            outcome
                .failures
                .iter()
                .map(|(_, f)| f.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gate_case_forces_branching() {
        // The canonical gate instance is robust but defeats the one-shot
        // relaxation, so the search must branch — exercising certificates
        // beyond a single root leaf.
        let mut rng = SmallRng::seed_from_u64(0);
        let case = FuzzCase {
            seed: 0,
            index: 0,
            net: gate_net(&mut rng),
            input: vec![0.8, 0.2],
            label: 0,
            epsilon: 0.28,
            budget_calls: 120,
        };
        let network = case.net.build();
        let problem =
            RobustnessProblem::new(&network, case.input.clone(), case.label, case.epsilon).unwrap();
        let (r, cert) = AbonnVerifier::default()
            .verify_with_certificate(&problem, &Budget::with_appver_calls(case.budget_calls));
        assert!(r.stats.tree_size > 1, "gate instance did not branch");
        if r.verdict == Verdict::Verified {
            audit_certificate(&cert.unwrap(), &problem).unwrap();
        }
        assert!(run_case(&case).is_ok());
    }

    #[test]
    fn lp_driven_run_produces_auditable_certificates() {
        // Drive the BaB baseline with the exact triangle-LP relaxation as
        // its AppVer. The resulting certificates must pass the same
        // independent audit as DeepPoly-driven ones, and warm starting
        // must not change the verdict or the certificate bytes.
        let mut rng = SmallRng::seed_from_u64(0);
        let case_net = gate_net(&mut rng).build();
        let problem = RobustnessProblem::new(&case_net, vec![0.8, 0.2], 0, 0.28).unwrap();
        let budget = Budget::with_appver_calls(120);
        let run = |warm: bool| {
            let lp = abonn_bound::LpVerifier::new().with_warm_start(warm);
            let mut b = BabBaseline::new(HeuristicKind::DeepSplit, Arc::new(lp));
            b.warm_start = warm;
            b.with_pool(Arc::new(WorkerPool::new(1)))
                .verify_with_certificate(&problem, &budget)
        };
        let (warm_run, warm_cert) = run(true);
        let (cold_run, cold_cert) = run(false);
        assert_eq!(warm_run.verdict, cold_run.verdict);
        assert_eq!(warm_cert, cold_cert, "warm starting changed the certificate");
        match &warm_run.verdict {
            Verdict::Verified => {
                audit_certificate(&warm_cert.expect("verified run has certificate"), &problem)
                    .unwrap();
            }
            Verdict::Timeout => {
                audit_partial(&warm_cert.expect("timeout run has certificate"), &problem).unwrap();
            }
            Verdict::Falsified(w) => assert!(problem.validate_witness(w)),
        }
    }

    #[test]
    fn minimizer_preserves_failure() {
        // Build an artificial failure by corrupting a case's label so the
        // problem constructor rejects it, then check the minimizer
        // returns a still-failing case.
        let mut case = generate_case(3, 0);
        case.label = 99;
        let failure = run_case(&case).unwrap_err();
        assert_eq!(failure.kind, FailureKind::SpecError);
        let (min_case, min_failure) = minimize(case, failure);
        assert!(run_case(&min_case).is_err());
        assert_eq!(min_failure.kind, FailureKind::SpecError);
    }
}
