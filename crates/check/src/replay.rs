//! Wire-level witness replay: confirms a claimed counterexample against
//! a property with one concrete forward pass.
//!
//! This is the SAT side of proof reuse. A result store holding a witness
//! for a property at radius ε may serve any dominating query (ε′ ≥ ε,
//! same center) — but only after re-establishing the claim against the
//! *query's* region. The replay shares nothing with the engines beyond
//! the network's concrete `forward`: containment is checked against the
//! property's own box and violation against the property's own
//! disjunction semantics, so a store bug cannot be masked by an engine
//! bug.

use abonn_nn::Network;
use abonn_vnnlib::Property;
use std::fmt;

/// Tolerance for region containment, matching the engine's witness
/// validation (`RobustnessProblem::validate_witness`).
const REGION_TOL: f64 = 1e-9;

/// Why a witness replay was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The witness has the wrong number of coordinates.
    DimMismatch {
        /// Witness length.
        got: usize,
        /// Network input dimension.
        expected: usize,
    },
    /// The property's declared box disagrees with the network.
    PropertyMismatch(String),
    /// Some coordinate lies outside the property's input box.
    OutsideRegion {
        /// Offending coordinate index.
        index: usize,
        /// The coordinate's value.
        value: f64,
    },
    /// The forward pass does not land in the violation region.
    NotViolating,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::DimMismatch { got, expected } => {
                write!(f, "witness has {got} coordinates, network expects {expected}")
            }
            ReplayError::PropertyMismatch(msg) => write!(f, "property mismatch: {msg}"),
            ReplayError::OutsideRegion { index, value } => {
                write!(f, "witness coordinate {index} = {value} is outside the input box")
            }
            ReplayError::NotViolating => {
                write!(f, "forward pass does not violate the property")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays `witness` through `net` and checks it falsifies `property`.
///
/// On success returns the concrete network outputs at the witness (the
/// evidence a response can carry).
///
/// # Errors
///
/// [`ReplayError`] describing the first failed check: dimensions, box
/// containment, then violation.
pub fn replay_witness(
    net: &Network,
    property: &Property,
    witness: &[f64],
) -> Result<Vec<f64>, ReplayError> {
    if witness.len() != net.input_dim() {
        return Err(ReplayError::DimMismatch {
            got: witness.len(),
            expected: net.input_dim(),
        });
    }
    if property.num_inputs() != net.input_dim() {
        return Err(ReplayError::PropertyMismatch(format!(
            "property declares {} inputs, network expects {}",
            property.num_inputs(),
            net.input_dim()
        )));
    }
    if property.num_outputs != net.output_dim() {
        return Err(ReplayError::PropertyMismatch(format!(
            "property declares {} outputs, network has {}",
            property.num_outputs,
            net.output_dim()
        )));
    }
    for (i, &v) in witness.iter().enumerate() {
        if !(v >= property.input_lo[i] - REGION_TOL && v <= property.input_hi[i] + REGION_TOL) {
            return Err(ReplayError::OutsideRegion { index: i, value: v });
        }
    }
    let outputs = net.forward(witness);
    if property.is_violation(&outputs) {
        Ok(outputs)
    } else {
        Err(ReplayError::NotViolating)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::{Layer, Shape};
    use abonn_tensor::Matrix;
    use abonn_vnnlib::{parse, write_robustness};

    fn three_class_net() -> Network {
        Network::new(
            Shape::Flat(2),
            vec![Layer::dense(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, -1.0]]),
                vec![0.0, 0.0, 0.6],
            )],
        )
        .unwrap()
    }

    fn robustness_property(center: &[f64], eps: f64, label: usize) -> Property {
        parse(&write_robustness(center, eps, label, 3)).unwrap()
    }

    #[test]
    fn valid_witness_replays_with_outputs() {
        let net = three_class_net();
        let prop = robustness_property(&[0.5, 0.45], 0.1, 0);
        // x1 > x0 flips the argmax to class 1.
        let outputs = replay_witness(&net, &prop, &[0.45, 0.55]).unwrap();
        assert_eq!(outputs, net.forward(&[0.45, 0.55]));
        assert!(outputs[1] >= outputs[0]);
    }

    #[test]
    fn out_of_region_witness_is_rejected() {
        let net = three_class_net();
        let prop = robustness_property(&[0.5, 0.45], 0.1, 0);
        assert!(matches!(
            replay_witness(&net, &prop, &[0.0, 1.0]),
            Err(ReplayError::OutsideRegion { index: 0, .. })
        ));
    }

    #[test]
    fn non_violating_witness_is_rejected() {
        let net = three_class_net();
        let prop = robustness_property(&[0.5, 0.45], 0.1, 0);
        // Class 0 still wins here.
        assert_eq!(
            replay_witness(&net, &prop, &[0.55, 0.4]),
            Err(ReplayError::NotViolating)
        );
    }

    #[test]
    fn dimension_checks_come_first() {
        let net = three_class_net();
        let prop = robustness_property(&[0.5, 0.45], 0.1, 0);
        assert!(matches!(
            replay_witness(&net, &prop, &[0.5]),
            Err(ReplayError::DimMismatch {
                got: 1,
                expected: 2
            })
        ));
        let skinny = robustness_property(&[0.5], 0.1, 0);
        assert!(matches!(
            replay_witness(&net, &skinny, &[0.5, 0.5]),
            Err(ReplayError::PropertyMismatch(_))
        ));
    }

    #[test]
    fn domination_direction_holds_for_clamped_balls() {
        // A witness valid at ε stays valid at every ε′ ≥ ε with the same
        // center: the clamped balls nest, so containment is preserved
        // and the forward pass is unchanged.
        let net = three_class_net();
        let w = [0.45, 0.55];
        let small = robustness_property(&[0.5, 0.45], 0.1, 0);
        replay_witness(&net, &small, &w).unwrap();
        for eps in [0.11, 0.2, 0.5, 0.9] {
            let bigger = robustness_property(&[0.5, 0.45], eps, 0);
            replay_witness(&net, &bigger, &w).unwrap();
        }
        // And the converse direction can fail, as it must: a witness at
        // the rim of a big ball is outside a smaller one.
        let big = robustness_property(&[0.5, 0.45], 0.4, 0);
        let rim = [0.12, 0.55];
        replay_witness(&net, &big, &rim).unwrap();
        let tiny = robustness_property(&[0.5, 0.45], 0.05, 0);
        assert!(matches!(
            replay_witness(&net, &tiny, &rim),
            Err(ReplayError::OutsideRegion { .. })
        ));
    }
}
