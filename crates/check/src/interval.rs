//! Plain interval propagation, written from the definition.
//!
//! This is the auditor's *only* bound computation below the LP stages,
//! and it intentionally shares no code with `abonn-bound`: a one-line
//! transcription error in the engines' shared propagation loop would
//! survive any cross-check built on top of that loop.

use abonn_bound::{InputBox, NeuronId, SplitSet, SplitSign};
use abonn_nn::CanonicalNetwork;

/// Slack when deciding that a split constraint emptied a neuron's range:
/// `lo > hi + EMPTY_TOL` marks the sub-problem vacuous.
pub const EMPTY_TOL: f64 = 1e-12;

/// Axis-aligned pre-activation bounds for every affine stage, after split
/// clamping. The last stage holds the output (margin) bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalBounds {
    /// Per-stage `(lower, upper)` pre-activation bounds.
    pub pre: Vec<(Vec<f64>, Vec<f64>)>,
}

impl IntervalBounds {
    /// Lower bound on the minimum output coordinate — the quantity whose
    /// positivity certifies the leaf.
    #[must_use]
    pub fn min_output_lower(&self) -> f64 {
        let (lo, _) = self.pre.last().expect("network has at least one stage");
        lo.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Post-activation box of hidden stage `k` (ReLU of the clamped
    /// pre-activation box).
    #[must_use]
    pub fn post(&self, k: usize) -> (Vec<f64>, Vec<f64>) {
        let (lo, hi) = &self.pre[k];
        (
            lo.iter().map(|&v| v.max(0.0)).collect(),
            hi.iter().map(|&v| v.max(0.0)).collect(),
        )
    }
}

/// Interval image of one affine stage: each output coordinate's range is
/// `bias + Σ_j w_j · [in_lo_j, in_hi_j]`, picking the box corner matching
/// the sign of `w_j`.
pub(crate) fn affine_image(
    weight_row: &[f64],
    bias: f64,
    in_lo: &[f64],
    in_hi: &[f64],
) -> (f64, f64) {
    let mut lo = bias;
    let mut hi = bias;
    for (j, &w) in weight_row.iter().enumerate() {
        if w >= 0.0 {
            lo += w * in_lo[j];
            hi += w * in_hi[j];
        } else {
            lo += w * in_hi[j];
            hi += w * in_lo[j];
        }
    }
    (lo, hi)
}

/// Clamps a pre-activation range by a split constraint.
pub(crate) fn clamp_split(lo: f64, hi: f64, sign: Option<SplitSign>) -> (f64, f64) {
    match sign {
        Some(SplitSign::Pos) => (lo.max(0.0), hi),
        Some(SplitSign::Neg) => (lo, hi.min(0.0)),
        None => (lo, hi),
    }
}

/// Propagates the input box through the network, clamping each hidden
/// pre-activation by its split constraint before applying the ReLU.
///
/// Returns `None` when a split constraint empties some neuron's range —
/// the sub-problem contains no input at all, so any claim about it is
/// vacuously true.
#[must_use]
pub fn propagate(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
) -> Option<IntervalBounds> {
    if splits.is_contradictory() {
        return None;
    }
    let num_layers = net.num_layers();
    let mut in_lo = region.lo().to_vec();
    let mut in_hi = region.hi().to_vec();
    let mut pre = Vec::with_capacity(num_layers);
    for (k, stage) in net.layers().iter().enumerate() {
        let n = stage.out_dim();
        let mut lo = vec![0.0; n];
        let mut hi = vec![0.0; n];
        for i in 0..n {
            let (l, h) = affine_image(stage.weight.row(i), stage.bias[i], &in_lo, &in_hi);
            lo[i] = l;
            hi[i] = h;
        }
        if k + 1 < num_layers {
            for i in 0..n {
                let sign = splits.sign_of(NeuronId::new(k, i));
                let (l, h) = clamp_split(lo[i], hi[i], sign);
                if l > h + EMPTY_TOL {
                    return None;
                }
                lo[i] = l;
                hi[i] = h.max(l);
            }
            in_lo = lo.iter().map(|&v| v.max(0.0)).collect();
            in_hi = hi.iter().map(|&v| v.max(0.0)).collect();
        }
        pre.push((lo, hi));
    }
    Some(IntervalBounds { pre })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;

    /// z = (x, -x), a = relu(z), y = a0 + a1 - 0.6 over x in [-1, 1].
    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    #[test]
    fn bounds_contain_concrete_executions() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let b = propagate(&net, &region, &SplitSet::new()).unwrap();
        for step in 0..=20 {
            let x = -1.0 + 0.1 * f64::from(step);
            let zs = net.preactivations(&[x]);
            for ((lo, hi), z) in b.pre.iter().zip(&zs) {
                for (i, &zi) in z.iter().enumerate() {
                    assert!(zi >= lo[i] - 1e-9 && zi <= hi[i] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn split_clamps_and_detects_empty_regions() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let pos = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Pos);
        let b = propagate(&net, &region, &pos).unwrap();
        assert_eq!(b.pre[0].0[0], 0.0);
        // x in [0.5, 1] forces z0 >= 0.5, so a Neg split empties the region.
        let neg = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Neg);
        assert!(propagate(&net, &InputBox::new(vec![0.5], vec![1.0]), &neg).is_none());
    }

    #[test]
    fn contradictory_split_sets_are_empty() {
        let both = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 0), SplitSign::Neg);
        let net = v_net();
        assert!(propagate(&net, &InputBox::new(vec![-1.0], vec![1.0]), &both).is_none());
    }

    #[test]
    fn fully_split_v_instance_is_tight() {
        // Splitting both phases makes the intervals exact on each branch.
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 1), SplitSign::Neg);
        let b = propagate(&net, &region, &splits).unwrap();
        // x >= 0 branch: a0 in [0, 1], a1 = 0, y in [-0.6, 0.4].
        assert!((b.min_output_lower() + 0.6).abs() < 1e-12);
        assert_eq!(b.post(0).1[1], 0.0);
    }
}
