//! Semantic representation of a parsed VNN-LIB property.

use std::collections::BTreeMap;

/// Comparison relation of an output atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
}

/// A linear combination of output variables plus a constant:
/// `Σ coeffs[j]·Y_j + constant`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearTerm {
    /// Sparse coefficients keyed by output index.
    pub coeffs: BTreeMap<usize, f64>,
    /// Constant offset.
    pub constant: f64,
}

impl LinearTerm {
    /// The constant term `c`.
    #[must_use]
    pub fn constant(c: f64) -> Self {
        Self {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The single variable `Y_j`.
    #[must_use]
    pub fn output(j: usize) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(j, 1.0);
        Self {
            coeffs,
            constant: 0.0,
        }
    }

    /// Adds `s · other` into `self`.
    pub fn add_scaled(&mut self, s: f64, other: &LinearTerm) {
        for (&j, &c) in &other.coeffs {
            *self.coeffs.entry(j).or_insert(0.0) += s * c;
        }
        self.constant += s * other.constant;
    }

    /// Scales the whole term by `s`.
    pub fn scale(&mut self, s: f64) {
        for c in self.coeffs.values_mut() {
            *c *= s;
        }
        self.constant *= s;
    }

    /// Evaluates the term at concrete outputs `y`.
    ///
    /// Missing indices evaluate as `0`.
    #[must_use]
    pub fn eval(&self, y: &[f64]) -> f64 {
        self.coeffs
            .iter()
            .map(|(&j, &c)| c * y.get(j).copied().unwrap_or(0.0))
            // lint: allow(float-reduction-order, coeffs is a BTreeMap so iteration is ascending-key ordered and machine independent)
            .sum::<f64>()
            + self.constant
    }
}

/// One atomic output constraint `lhs (rel) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputAtom {
    /// Left-hand linear term.
    pub lhs: LinearTerm,
    /// The relation.
    pub rel: Relation,
    /// Right-hand linear term.
    pub rhs: LinearTerm,
}

impl OutputAtom {
    /// Returns `true` when concrete outputs `y` satisfy the atom.
    #[must_use]
    pub fn holds(&self, y: &[f64]) -> bool {
        let (l, r) = (self.lhs.eval(y), self.rhs.eval(y));
        match self.rel {
            Relation::Le => l <= r,
            Relation::Ge => l >= r,
        }
    }
}

/// A parsed VNN-LIB property: input box + violation region.
///
/// The violation region is a disjunction of conjunctions of
/// [`OutputAtom`]s; the property is *violated* by a network iff some input
/// in the box produces outputs satisfying at least one disjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Per-input lower bounds.
    pub input_lo: Vec<f64>,
    /// Per-input upper bounds.
    pub input_hi: Vec<f64>,
    /// Number of declared outputs.
    pub num_outputs: usize,
    /// Disjunction (outer) of conjunctions (inner) describing violations.
    pub violation: Vec<Vec<OutputAtom>>,
}

impl Property {
    /// Number of declared inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_lo.len()
    }

    /// Returns `true` when concrete outputs `y` land in the violation
    /// region.
    #[must_use]
    pub fn is_violation(&self, y: &[f64]) -> bool {
        self.violation
            .iter()
            .any(|conj| conj.iter().all(|atom| atom.holds(y)))
    }

    /// Recovers `(label, adversarial_classes)` when the property has the
    /// classification-robustness shape: every disjunct is a single atom
    /// `Y_label ≤ Y_j` (equivalently `Y_j ≥ Y_label`) for a common
    /// `label`.
    ///
    /// Returns `None` for properties outside that shape.
    #[must_use]
    pub fn as_robustness(&self) -> Option<(usize, Vec<usize>)> {
        let mut label: Option<usize> = None;
        let mut adversarial = Vec::new();
        for conj in &self.violation {
            let [atom] = conj.as_slice() else {
                return None;
            };
            // Normalise to "small ≤ big": Le keeps sides, Ge swaps.
            let (small, big) = match atom.rel {
                Relation::Le => (&atom.lhs, &atom.rhs),
                Relation::Ge => (&atom.rhs, &atom.lhs),
            };
            let single = |t: &LinearTerm| -> Option<usize> {
                if t.constant != 0.0 || t.coeffs.len() != 1 {
                    return None;
                }
                let (&j, &c) = t.coeffs.iter().next()?;
                (c == 1.0).then_some(j)
            };
            let l = single(small)?;
            let j = single(big)?;
            match label {
                None => label = Some(l),
                Some(existing) if existing != l => return None,
                _ => {}
            }
            adversarial.push(j);
        }
        adversarial.sort_unstable();
        adversarial.dedup();
        Some((label?, adversarial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(label: usize, j: usize) -> OutputAtom {
        OutputAtom {
            lhs: LinearTerm::output(label),
            rel: Relation::Le,
            rhs: LinearTerm::output(j),
        }
    }

    #[test]
    fn linear_term_eval_and_arith() {
        let mut t = LinearTerm::output(1);
        t.add_scaled(-2.0, &LinearTerm::output(0));
        t.add_scaled(1.0, &LinearTerm::constant(0.5));
        assert_eq!(t.eval(&[1.0, 3.0]), 3.0 - 2.0 + 0.5);
        t.scale(2.0);
        assert_eq!(t.eval(&[1.0, 3.0]), 2.0 * (3.0 - 2.0 + 0.5));
    }

    #[test]
    fn violation_semantics() {
        let p = Property {
            input_lo: vec![0.0],
            input_hi: vec![1.0],
            num_outputs: 3,
            violation: vec![vec![atom(0, 1)], vec![atom(0, 2)]],
        };
        assert!(p.is_violation(&[0.1, 0.5, 0.0])); // Y_1 beats Y_0
        assert!(p.is_violation(&[0.1, 0.0, 0.5])); // Y_2 beats Y_0
        assert!(!p.is_violation(&[0.9, 0.5, 0.1])); // Y_0 wins
    }

    #[test]
    fn robustness_shape_recovery() {
        let p = Property {
            input_lo: vec![0.0; 2],
            input_hi: vec![1.0; 2],
            num_outputs: 3,
            violation: vec![vec![atom(0, 2)], vec![atom(0, 1)]],
        };
        assert_eq!(p.as_robustness(), Some((0, vec![1, 2])));
    }

    #[test]
    fn non_robustness_shapes_are_rejected() {
        // Two atoms in one conjunct.
        let p = Property {
            input_lo: vec![0.0],
            input_hi: vec![1.0],
            num_outputs: 3,
            violation: vec![vec![atom(0, 1), atom(0, 2)]],
        };
        assert_eq!(p.as_robustness(), None);
        // Mixed labels.
        let q = Property {
            input_lo: vec![0.0],
            input_hi: vec![1.0],
            num_outputs: 3,
            violation: vec![vec![atom(0, 1)], vec![atom(1, 2)]],
        };
        assert_eq!(q.as_robustness(), None);
    }

    #[test]
    fn ge_relation_also_recovers() {
        let p = Property {
            input_lo: vec![0.0],
            input_hi: vec![1.0],
            num_outputs: 2,
            violation: vec![vec![OutputAtom {
                lhs: LinearTerm::output(1),
                rel: Relation::Ge,
                rhs: LinearTerm::output(0),
            }]],
        };
        assert_eq!(p.as_robustness(), Some((0, vec![1])));
    }
}
