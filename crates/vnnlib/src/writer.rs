//! Emitting VNN-LIB properties.

use crate::property::{LinearTerm, OutputAtom, Property, Relation};
use std::fmt::Write as _;

/// Writes the standard local-robustness property for a reference input:
/// box `[xᵢ − ε, xᵢ + ε] ∩ [0, 1]` and violation `∃j ≠ label: Y_label ≤
/// Y_j`.
///
/// The output round-trips through [`crate::parse`] and
/// [`crate::Property::as_robustness`].
///
/// # Panics
///
/// Panics if `label >= num_classes` or `num_classes < 2`.
#[must_use]
pub fn write_robustness(input: &[f64], epsilon: f64, label: usize, num_classes: usize) -> String {
    // lint: allow(panic-path, documented caller contract of a property generator that never sees wire bytes - the daemon only parses)
    assert!(num_classes >= 2, "need at least two classes");
    // lint: allow(panic-path, documented caller contract of a property generator that never sees wire bytes - the daemon only parses)
    assert!(label < num_classes, "label out of range");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; local robustness: {} inputs, {num_classes} classes, label {label}, eps {epsilon}",
        input.len()
    );
    for i in 0..input.len() {
        let _ = writeln!(out, "(declare-const X_{i} Real)");
    }
    for j in 0..num_classes {
        let _ = writeln!(out, "(declare-const Y_{j} Real)");
    }
    for (i, &v) in input.iter().enumerate() {
        let lo = (v - epsilon).max(0.0);
        let hi = (v + epsilon).min(1.0);
        let _ = writeln!(out, "(assert (>= X_{i} {lo}))");
        let _ = writeln!(out, "(assert (<= X_{i} {hi}))");
    }
    let disjuncts: Vec<String> = (0..num_classes)
        .filter(|&j| j != label)
        .map(|j| format!("(and (<= Y_{label} Y_{j}))"))
        .collect();
    let _ = writeln!(out, "(assert (or {}))", disjuncts.join(" "));
    out
}

fn term_to_sexpr(t: &LinearTerm) -> String {
    let mut parts: Vec<String> = t
        .coeffs
        .iter()
        .map(|(&j, &c)| {
            if (c - 1.0).abs() < 1e-15 {
                format!("Y_{j}")
            } else {
                format!("(* {c} Y_{j})")
            }
        })
        .collect();
    if t.constant != 0.0 || parts.is_empty() {
        parts.push(format!("{}", t.constant));
    }
    match parts.len() {
        1 => parts.remove(0),
        _ => format!("(+ {})", parts.join(" ")),
    }
}

fn atom_to_sexpr(a: &OutputAtom) -> String {
    let rel = match a.rel {
        Relation::Le => "<=",
        Relation::Ge => ">=",
    };
    format!("({rel} {} {})", term_to_sexpr(&a.lhs), term_to_sexpr(&a.rhs))
}

/// Writes an arbitrary parsed [`Property`] back to VNN-LIB text.
///
/// The output round-trips through [`crate::parse`] to an equivalent
/// property (same box, same violation semantics).
///
/// # Examples
///
/// ```
/// use abonn_vnnlib::{parse, write_property, write_robustness};
///
/// let original = parse(&write_robustness(&[0.4], 0.1, 1, 3))?;
/// let rewritten = parse(&write_property(&original))?;
/// assert_eq!(original.input_lo, rewritten.input_lo);
/// assert_eq!(original.as_robustness(), rewritten.as_robustness());
/// # Ok::<(), abonn_vnnlib::ParseError>(())
/// ```
#[must_use]
pub fn write_property(p: &Property) -> String {
    let mut out = String::new();
    for i in 0..p.num_inputs() {
        let _ = writeln!(out, "(declare-const X_{i} Real)");
    }
    for j in 0..p.num_outputs {
        let _ = writeln!(out, "(declare-const Y_{j} Real)");
    }
    for (i, (&l, &h)) in p.input_lo.iter().zip(&p.input_hi).enumerate() {
        let _ = writeln!(out, "(assert (>= X_{i} {l}))");
        let _ = writeln!(out, "(assert (<= X_{i} {h}))");
    }
    if !p.violation.is_empty() {
        let disjuncts: Vec<String> = p
            .violation
            .iter()
            .map(|conj| {
                let atoms: Vec<String> = conj.iter().map(atom_to_sexpr).collect();
                format!("(and {})", atoms.join(" "))
            })
            .collect();
        let _ = writeln!(out, "(assert (or {}))", disjuncts.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use proptest::prelude::*;

    #[test]
    fn writer_output_parses_back() {
        let text = write_robustness(&[0.3, 0.7, 0.5], 0.1, 2, 4);
        let p = parse(&text).unwrap();
        assert_eq!(p.num_inputs(), 3);
        assert_eq!(p.num_outputs, 4);
        assert_eq!(p.as_robustness(), Some((2, vec![0, 1, 3])));
    }

    #[test]
    fn box_is_clamped_to_unit_range() {
        let text = write_robustness(&[0.02, 0.98], 0.1, 0, 2);
        let p = parse(&text).unwrap();
        assert_eq!(p.input_lo, vec![0.0, 0.88]);
        assert!((p.input_hi[0] - 0.12).abs() < 1e-12);
        assert_eq!(p.input_hi[1], 1.0);
    }

    #[test]
    fn general_property_roundtrip_preserves_semantics() {
        let text = "\
(declare-const X_0 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(assert (>= X_0 0.25))
(assert (<= X_0 0.75))
(assert (or (and (<= (+ Y_0 (* -2.0 Y_1)) 0.5) (>= Y_1 0.0)) (and (<= Y_0 -1.0))))
";
        let original = parse(text).unwrap();
        let rewritten = parse(&write_property(&original)).unwrap();
        assert_eq!(original.input_lo, rewritten.input_lo);
        assert_eq!(original.input_hi, rewritten.input_hi);
        for y in [
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![-2.0, -1.0],
            vec![0.4, 0.2],
            vec![3.0, 1.0],
        ] {
            assert_eq!(
                original.is_violation(&y),
                rewritten.is_violation(&y),
                "semantics differ at {y:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Round-trip invariant over random robustness specs.
        #[test]
        fn roundtrip(
            input in proptest::collection::vec(0.0..1.0_f64, 1..8),
            eps in 0.001..0.3_f64,
            label in 0usize..5,
            extra in 2usize..6,
        ) {
            let classes = label + extra;
            let text = write_robustness(&input, eps, label, classes);
            let p = parse(&text).unwrap();
            prop_assert_eq!(p.num_inputs(), input.len());
            let (got_label, adversarial) = p.as_robustness().expect("shape");
            prop_assert_eq!(got_label, label);
            prop_assert_eq!(adversarial.len(), classes - 1);
            for (i, &v) in input.iter().enumerate() {
                prop_assert!(p.input_lo[i] >= (v - eps).max(0.0) - 1e-9);
                prop_assert!(p.input_hi[i] <= (v + eps).min(1.0) + 1e-9);
            }
        }
    }
}
