//! From s-expressions to a [`Property`].

use crate::property::{LinearTerm, OutputAtom, Property, Relation};
use crate::sexpr::{read_all, Sexpr, SexprError};
use std::fmt;

/// Error from [`parse`] / [`parse_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer/reader error.
    Syntax(SexprError),
    /// A structurally invalid or unsupported construct, with context.
    Unsupported(String),
    /// Input variables lack a finite box.
    IncompleteInputBox(usize),
    /// The wire bytes are not valid UTF-8 (byte offset of the defect).
    NotUtf8(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax(e) => write!(f, "syntax error {e}"),
            ParseError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
            ParseError::IncompleteInputBox(i) => {
                write!(f, "input X_{i} is missing a lower or upper bound")
            }
            ParseError::NotUtf8(offset) => {
                write!(f, "property bytes are not valid UTF-8 at byte {offset}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<SexprError> for ParseError {
    fn from(e: SexprError) -> Self {
        ParseError::Syntax(e)
    }
}

/// A reference to a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Var {
    Input(usize),
    Output(usize),
}

fn parse_var(name: &str) -> Option<Var> {
    if let Some(rest) = name.strip_prefix("X_") {
        rest.parse().ok().map(Var::Input)
    } else if let Some(rest) = name.strip_prefix("Y_") {
        rest.parse().ok().map(Var::Output)
    } else {
        None
    }
}

/// Linear expression over inputs OR outputs (mixing is unsupported, as in
/// practice properties never mix).
#[derive(Debug, Clone, PartialEq)]
enum Expr {
    OverInputs {
        /// Only single-input expressions are supported (box constraints).
        input: Option<usize>,
        coeff: f64,
        constant: f64,
    },
    OverOutputs(LinearTerm),
}

fn parse_number(a: &str) -> Option<f64> {
    a.parse::<f64>().ok()
}

fn parse_expr(e: &Sexpr) -> Result<Expr, ParseError> {
    match e {
        Sexpr::Atom(a) => {
            if let Some(v) = parse_var(a) {
                Ok(match v {
                    Var::Input(i) => Expr::OverInputs {
                        input: Some(i),
                        coeff: 1.0,
                        constant: 0.0,
                    },
                    Var::Output(j) => Expr::OverOutputs(LinearTerm::output(j)),
                })
            } else if let Some(c) = parse_number(a) {
                // A bare constant is usable on either side; default to an
                // input-expression carrier, converted on demand below.
                Ok(Expr::OverInputs {
                    input: None,
                    coeff: 0.0,
                    constant: c,
                })
            } else {
                Err(ParseError::Unsupported(format!("atom '{a}'")))
            }
        }
        Sexpr::List(items) => {
            let [Sexpr::Atom(op), rest @ ..] = items.as_slice() else {
                return Err(ParseError::Unsupported(format!("expression '{e}'")));
            };
            match op.as_str() {
                "+" | "-" => {
                    let mut terms = rest.iter().map(parse_expr);
                    let Some(first) = terms.next() else {
                        return Err(ParseError::Unsupported(format!("empty '{op}'")));
                    };
                    let mut acc = to_outputs(first?)?;
                    for t in terms {
                        let sign = if op == "-" { -1.0 } else { 1.0 };
                        acc.add_scaled(sign, &to_outputs(t?)?);
                    }
                    Ok(Expr::OverOutputs(acc))
                }
                "*" => {
                    let [a, b] = rest else {
                        return Err(ParseError::Unsupported("'*' arity".into()));
                    };
                    let (scalar, term) = match (parse_expr(a)?, parse_expr(b)?) {
                        (
                            Expr::OverInputs {
                                input: None,
                                constant,
                                ..
                            },
                            other,
                        ) => (constant, other),
                        (
                            other,
                            Expr::OverInputs {
                                input: None,
                                constant,
                                ..
                            },
                        ) => (constant, other),
                        _ => {
                            return Err(ParseError::Unsupported(
                                "'*' needs one constant operand".into(),
                            ))
                        }
                    };
                    let mut t = to_outputs(term)?;
                    t.scale(scalar);
                    Ok(Expr::OverOutputs(t))
                }
                _ => Err(ParseError::Unsupported(format!("operator '{op}'"))),
            }
        }
    }
}

/// Converts an expression to an output linear term; constants pass
/// through, single-input expressions are rejected (inputs only appear in
/// box constraints).
fn to_outputs(e: Expr) -> Result<LinearTerm, ParseError> {
    match e {
        Expr::OverOutputs(t) => Ok(t),
        Expr::OverInputs {
            input: None,
            constant,
            ..
        } => Ok(LinearTerm::constant(constant)),
        Expr::OverInputs { input: Some(i), .. } => Err(ParseError::Unsupported(format!(
            "input X_{i} inside an output constraint"
        ))),
    }
}

/// Parses the VNN-LIB subset into a [`Property`].
///
/// # Errors
///
/// Returns [`ParseError`] for syntax errors, constructs outside the
/// supported subset, or input variables without a complete box.
pub fn parse(text: &str) -> Result<Property, ParseError> {
    parse_checked(text)
}

/// Wire-level entry point: parses raw bytes as received from a client.
///
/// Every malformed input — invalid UTF-8, unbalanced or absurdly nested
/// parentheses, unsupported constructs, incomplete boxes — comes back as
/// a [`ParseError`]; no input can panic or overflow the stack.
///
/// # Errors
///
/// [`ParseError::NotUtf8`] for non-UTF-8 bytes, otherwise as [`parse`].
pub fn parse_bytes(bytes: &[u8]) -> Result<Property, ParseError> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| ParseError::NotUtf8(e.valid_up_to()))?;
    parse_checked(text)
}

fn parse_checked(text: &str) -> Result<Property, ParseError> {
    let exprs = read_all(text)?;
    let mut n_inputs = 0usize;
    let mut n_outputs = 0usize;
    let mut lo: Vec<f64> = Vec::new();
    let mut hi: Vec<f64> = Vec::new();
    let mut violation: Vec<Vec<OutputAtom>> = Vec::new();

    for e in &exprs {
        let Sexpr::List(items) = e else {
            return Err(ParseError::Unsupported(format!("top-level atom '{e}'")));
        };
        match items.as_slice() {
            [Sexpr::Atom(kw), Sexpr::Atom(name), Sexpr::Atom(ty)] if kw == "declare-const" => {
                if ty != "Real" {
                    return Err(ParseError::Unsupported(format!("sort '{ty}'")));
                }
                match parse_var(name) {
                    Some(Var::Input(i)) => n_inputs = n_inputs.max(i + 1),
                    Some(Var::Output(j)) => n_outputs = n_outputs.max(j + 1),
                    None => return Err(ParseError::Unsupported(format!("variable '{name}'"))),
                }
            }
            [Sexpr::Atom(kw), body] if kw == "assert" => {
                lo.resize(n_inputs, f64::NEG_INFINITY);
                hi.resize(n_inputs, f64::INFINITY);
                parse_assert(body, &mut lo, &mut hi, &mut violation)?;
            }
            _ => return Err(ParseError::Unsupported(format!("command '{e}'"))),
        }
    }
    lo.resize(n_inputs, f64::NEG_INFINITY);
    hi.resize(n_inputs, f64::INFINITY);
    for (i, (l, h)) in lo.iter().zip(&hi).enumerate() {
        if !l.is_finite() || !h.is_finite() {
            return Err(ParseError::IncompleteInputBox(i));
        }
    }
    for atom in violation.iter().flatten() {
        for &j in atom.lhs.coeffs.keys().chain(atom.rhs.coeffs.keys()) {
            if j >= n_outputs {
                return Err(ParseError::Unsupported(format!("undeclared output Y_{j}")));
            }
        }
    }
    Ok(Property {
        input_lo: lo,
        input_hi: hi,
        num_outputs: n_outputs,
        violation,
    })
}

fn parse_assert(
    body: &Sexpr,
    lo: &mut [f64],
    hi: &mut [f64],
    violation: &mut Vec<Vec<OutputAtom>>,
) -> Result<(), ParseError> {
    let Sexpr::List(items) = body else {
        return Err(ParseError::Unsupported(format!("assert body '{body}'")));
    };
    let [Sexpr::Atom(op), rest @ ..] = items.as_slice() else {
        return Err(ParseError::Unsupported(format!("assert body '{body}'")));
    };
    match op.as_str() {
        "<=" | ">=" => {
            let [a, b] = rest else {
                return Err(ParseError::Unsupported(format!("'{op}' arity")));
            };
            let (ea, eb) = (parse_expr(a)?, parse_expr(b)?);
            // Input box constraint: X_i vs constant.
            if let (
                Expr::OverInputs {
                    input: Some(i),
                    coeff,
                    ..
                },
                Expr::OverInputs {
                    input: None,
                    constant,
                    ..
                },
            ) = (&ea, &eb)
            {
                debug_assert_eq!(*coeff, 1.0);
                let (Some(l), Some(h)) = (lo.get_mut(*i), hi.get_mut(*i)) else {
                    return Err(ParseError::Unsupported(format!("undeclared input X_{i}")));
                };
                if op == "<=" {
                    *h = h.min(*constant);
                } else {
                    *l = l.max(*constant);
                }
                return Ok(());
            }
            // Output atom: one top-level conjunct of a single atom.
            let atom = OutputAtom {
                lhs: to_outputs(ea)?,
                rel: if op == "<=" {
                    Relation::Le
                } else {
                    Relation::Ge
                },
                rhs: to_outputs(eb)?,
            };
            violation.push(vec![atom]);
            Ok(())
        }
        "or" => {
            for disjunct in rest {
                let conj = parse_conjunct(disjunct)?;
                violation.push(conj);
            }
            Ok(())
        }
        "and" => {
            violation.push(parse_conjunct(body)?);
            Ok(())
        }
        _ => Err(ParseError::Unsupported(format!("assert operator '{op}'"))),
    }
}

/// Parses `(and atom…)` or a bare atom into a conjunction of atoms.
fn parse_conjunct(e: &Sexpr) -> Result<Vec<OutputAtom>, ParseError> {
    let Sexpr::List(items) = e else {
        return Err(ParseError::Unsupported(format!("conjunct '{e}'")));
    };
    match items.as_slice() {
        // An empty `(and)` is vacuously true, which would mark the whole
        // input box as violated — reject it instead of mis-encoding it.
        [Sexpr::Atom(op)] if op == "and" => {
            Err(ParseError::Unsupported("empty conjunction '(and)'".into()))
        }
        [Sexpr::Atom(op), rest @ ..] if op == "and" => rest.iter().map(parse_atom).collect(),
        _ => Ok(vec![parse_atom(e)?]),
    }
}

fn parse_atom(e: &Sexpr) -> Result<OutputAtom, ParseError> {
    let Sexpr::List(items) = e else {
        return Err(ParseError::Unsupported(format!("atom '{e}'")));
    };
    let [Sexpr::Atom(op), a, b] = items.as_slice() else {
        return Err(ParseError::Unsupported(format!("atom '{e}'")));
    };
    let rel = match op.as_str() {
        "<=" => Relation::Le,
        ">=" => Relation::Ge,
        _ => return Err(ParseError::Unsupported(format!("relation '{op}'"))),
    };
    Ok(OutputAtom {
        lhs: to_outputs(parse_expr(a)?)?,
        rel,
        rhs: to_outputs(parse_expr(b)?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; local robustness, 2 inputs, 3 classes, label 1
(declare-const X_0 Real)
(declare-const X_1 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(declare-const Y_2 Real)
(assert (>= X_0 0.35))
(assert (<= X_0 0.45))
(assert (>= X_1 0.15))
(assert (<= X_1 0.25))
(assert (or (and (<= Y_1 Y_0)) (and (<= Y_1 Y_2))))
";

    #[test]
    fn parses_a_standard_robustness_property() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.num_inputs(), 2);
        assert_eq!(p.num_outputs, 3);
        assert_eq!(p.input_lo, vec![0.35, 0.15]);
        assert_eq!(p.input_hi, vec![0.45, 0.25]);
        assert_eq!(p.as_robustness(), Some((1, vec![0, 2])));
    }

    #[test]
    fn violation_region_matches_semantics() {
        let p = parse(SAMPLE).unwrap();
        assert!(p.is_violation(&[1.0, 0.5, 0.2])); // Y_0 beats Y_1
        assert!(!p.is_violation(&[0.1, 0.9, 0.3])); // Y_1 wins
    }

    #[test]
    fn missing_bound_is_an_error() {
        let text = "(declare-const X_0 Real)\n(assert (>= X_0 0.0))";
        assert_eq!(parse(text), Err(ParseError::IncompleteInputBox(0)));
    }

    #[test]
    fn arithmetic_in_output_atoms() {
        let text = "\
(declare-const X_0 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (<= (+ Y_0 (* -1.0 Y_1)) 0.5))
";
        let p = parse(text).unwrap();
        let atom = &p.violation[0][0];
        assert!(atom.holds(&[0.4, 0.0])); // 0.4 <= 0.5
        assert!(!atom.holds(&[1.0, 0.0])); // 1.0 > 0.5
    }

    #[test]
    fn unsupported_constructs_error_cleanly() {
        assert!(matches!(
            parse("(set-logic QF_LRA)"),
            Err(ParseError::Unsupported(_))
        ));
        assert!(matches!(
            parse("(declare-const Z_0 Real)"),
            Err(ParseError::Unsupported(_))
        ));
    }

    #[test]
    fn conjunctive_disjuncts_parse_and_evaluate() {
        let text = "\
(declare-const X_0 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(declare-const Y_2 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (or (and (<= Y_0 Y_1) (<= Y_0 Y_2)) (and (<= Y_0 -1.0))))
";
        let p = parse(text).unwrap();
        // Not single-atom disjuncts: no robustness shape.
        assert_eq!(p.as_robustness(), None);
        // But the violation semantics are exact.
        assert!(p.is_violation(&[0.0, 1.0, 1.0])); // both beat Y_0
        assert!(!p.is_violation(&[0.0, 1.0, -1.0])); // Y_2 does not
        assert!(p.is_violation(&[-2.0, -3.0, -3.0])); // Y_0 <= -1
    }

    #[test]
    fn undeclared_variables_error_instead_of_panicking() {
        // Input index past the declarations must not index out of bounds.
        let text = "(declare-const X_0 Real)\n(assert (>= X_1 0.0))";
        assert!(matches!(parse(text), Err(ParseError::Unsupported(_))));
        // Output index past the declarations is rejected too.
        let text = "\
(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (<= Y_0 Y_3))
";
        assert!(matches!(parse(text), Err(ParseError::Unsupported(_))));
    }

    #[test]
    fn empty_conjunction_is_rejected() {
        // `(and)` is vacuously true and would mark the whole box violated.
        let text = "\
(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (or (and)))
";
        assert!(matches!(parse(text), Err(ParseError::Unsupported(_))));
    }

    #[test]
    fn tighter_repeated_bounds_intersect() {
        let text = "\
(declare-const X_0 Real)
(assert (>= X_0 0.0))
(assert (>= X_0 0.2))
(assert (<= X_0 1.0))
(assert (<= X_0 0.8))
";
        let p = parse(text).unwrap();
        assert_eq!(p.input_lo, vec![0.2]);
        assert_eq!(p.input_hi, vec![0.8]);
    }
}
