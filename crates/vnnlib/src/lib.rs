#![forbid(unsafe_code)]
//! Parser and writer for the VNN-LIB property subset used by
//! local-robustness benchmarks.
//!
//! The paper draws its 552 problems from the VNN-COMP-style local
//! robustness setting, whose interchange format is VNN-LIB: an SMT-LIB
//! flavoured s-expression file declaring input variables `X_i`, output
//! variables `Y_j`, box constraints on the inputs, and a (possibly
//! disjunctive) description of the *violation* region over the outputs.
//! This crate implements the practically-used subset:
//!
//! * `(declare-const X_i Real)` / `(declare-const Y_j Real)`;
//! * `(assert (<= X_i c))`, `(assert (>= X_i c))` — the input box;
//! * `(assert (<= Y_a Y_b))`, `(assert (>= Y_a Y_b))`, constants on
//!   either side, and `(or …)` / `(and …)` combinations over the outputs.
//!
//! The parsed [`Property`] separates the input box from the disjunction
//! of output constraint conjunctions. For classification robustness (the
//! paper's setting) [`Property::as_robustness`] recovers the target label
//! and adversarial classes directly.
//!
//! # Examples
//!
//! ```
//! use abonn_vnnlib::{parse, write_robustness};
//!
//! let text = write_robustness(&[0.4, 0.1], 0.05, 0, 3);
//! let prop = parse(&text)?;
//! assert_eq!(prop.num_inputs(), 2);
//! let (label, adversarial) = prop.as_robustness().expect("robustness-shaped");
//! assert_eq!(label, 0);
//! assert_eq!(adversarial, vec![1, 2]);
//! # Ok::<(), abonn_vnnlib::ParseError>(())
//! ```

mod parser;
mod property;
mod sexpr;
mod writer;

pub use parser::{parse, parse_bytes, ParseError};
pub use sexpr::MAX_DEPTH;
pub use property::{LinearTerm, OutputAtom, Property, Relation};
pub use writer::{write_property, write_robustness};
