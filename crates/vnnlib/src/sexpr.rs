//! Minimal s-expression tokenizer and reader.
//!
//! Both stages are wire-hardened: the tokenizer walks characters (never
//! slicing inside a multi-byte UTF-8 sequence), and the reader is
//! iterative with an explicit nesting cap, so adversarial input of any
//! size or depth yields a [`SexprError`] instead of a panic or a stack
//! overflow (reading, printing, and dropping a tree all recurse at most
//! [`MAX_DEPTH`] frames).

use std::fmt;

/// Maximum list-nesting depth accepted by [`read_all`].
///
/// Real VNN-LIB properties nest a handful of levels
/// (`assert`/`or`/`and`/arithmetic); the cap exists so downstream
/// recursive consumers (display, parsing, drop glue) are bounded even on
/// adversarial input.
pub const MAX_DEPTH: usize = 200;

/// An s-expression: an atom or a parenthesised list.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexpr {
    /// A bare token (symbol or numeral).
    Atom(String),
    /// A `( … )` list.
    List(Vec<Sexpr>),
}

impl fmt::Display for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexpr::Atom(a) => f.write_str(a),
            Sexpr::List(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Error position and message from [`read_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SexprError {
    /// Byte offset in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SexprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SexprError {}

/// Reads every top-level s-expression in `text`. `;` starts a comment
/// running to the end of the line.
///
/// # Errors
///
/// Returns [`SexprError`] on unbalanced parentheses, stray tokens, or
/// nesting deeper than [`MAX_DEPTH`].
pub fn read_all(text: &str) -> Result<Vec<Sexpr>, SexprError> {
    let tokens = tokenize(text);
    let mut top = Vec::new();
    // Explicit stack of open lists: (offset of the '(', items so far).
    let mut stack: Vec<(usize, Vec<Sexpr>)> = Vec::new();
    for (offset, tok) in tokens {
        match tok.as_str() {
            "(" => {
                if stack.len() >= MAX_DEPTH {
                    return Err(SexprError {
                        offset,
                        message: format!("nesting deeper than {MAX_DEPTH}"),
                    });
                }
                stack.push((offset, Vec::new()));
            }
            ")" => {
                let Some((_, items)) = stack.pop() else {
                    return Err(SexprError {
                        offset,
                        message: "unexpected ')'".into(),
                    });
                };
                let list = Sexpr::List(items);
                match stack.last_mut() {
                    Some((_, parent)) => parent.push(list),
                    None => top.push(list),
                }
            }
            _ => {
                let atom = Sexpr::Atom(tok);
                match stack.last_mut() {
                    Some((_, items)) => items.push(atom),
                    None => top.push(atom),
                }
            }
        }
    }
    if let Some(&(offset, _)) = stack.last() {
        return Err(SexprError {
            offset,
            message: "unclosed '('".into(),
        });
    }
    Ok(top)
}

/// Character-based tokenizer: offsets index bytes, but scanning advances
/// whole characters so atom slices always land on UTF-8 boundaries.
fn tokenize(text: &str) -> Vec<(usize, String)> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            ';' => {
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' => {
                tokens.push((i, c.to_string()));
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let start = i;
                let mut end = text.len();
                while let Some(&(j, c)) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        end = j;
                        break;
                    }
                    chars.next();
                }
                if chars.peek().is_none() {
                    end = text.len();
                }
                // lint: allow(panic-path, start and end both come from char_indices of this very str so the slice bounds sit on char boundaries)
                tokens.push((start, text[start..end].to_string()));
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let out = read_all("(a (b c) d)").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "(a (b c) d)");
    }

    #[test]
    fn comments_are_skipped() {
        let out = read_all("; header\n(x) ; trailing\n(y)").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(read_all("(a (b)").is_err());
        assert!(read_all("a)").is_err());
    }

    #[test]
    fn multiple_top_level_atoms() {
        let out = read_all("a b 1.5").unwrap();
        assert_eq!(
            out,
            vec![
                Sexpr::Atom("a".into()),
                Sexpr::Atom("b".into()),
                Sexpr::Atom("1.5".into())
            ]
        );
    }

    #[test]
    fn nesting_is_capped_not_crashed() {
        // Far past any stack limit if the reader recursed.
        let deep = "(".repeat(1_000_000);
        let err = read_all(&deep).unwrap_err();
        assert!(err.message.contains("deeper than"), "{err}");
        // Exactly at the cap still reads.
        let ok = format!("{}{}", "(".repeat(MAX_DEPTH), ")".repeat(MAX_DEPTH));
        assert!(read_all(&ok).is_ok());
        let over = format!("{}{}", "(".repeat(MAX_DEPTH + 1), ")".repeat(MAX_DEPTH + 1));
        assert!(read_all(&over).is_err());
    }

    #[test]
    fn multibyte_whitespace_does_not_split_mid_character() {
        // U+00A0 (no-break space) is whitespace but two bytes in UTF-8;
        // the old byte-based scanner sliced inside it and panicked.
        let out = read_all("a\u{00A0}b").unwrap();
        assert_eq!(out, vec![Sexpr::Atom("a".into()), Sexpr::Atom("b".into())]);
        // Multi-byte symbol characters survive as atoms.
        let out = read_all("(é π)").unwrap();
        assert_eq!(out[0].to_string(), "(é π)");
    }

    #[test]
    fn atom_at_end_of_input_is_complete() {
        let out = read_all("abc").unwrap();
        assert_eq!(out, vec![Sexpr::Atom("abc".into())]);
    }
}
