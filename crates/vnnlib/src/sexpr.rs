//! Minimal s-expression tokenizer and reader.

use std::fmt;

/// An s-expression: an atom or a parenthesised list.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexpr {
    /// A bare token (symbol or numeral).
    Atom(String),
    /// A `( … )` list.
    List(Vec<Sexpr>),
}

impl fmt::Display for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexpr::Atom(a) => f.write_str(a),
            Sexpr::List(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Error position and message from [`read_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SexprError {
    /// Byte offset in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SexprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SexprError {}

/// Reads every top-level s-expression in `text`. `;` starts a comment
/// running to the end of the line.
///
/// # Errors
///
/// Returns [`SexprError`] on unbalanced parentheses or stray tokens.
pub fn read_all(text: &str) -> Result<Vec<Sexpr>, SexprError> {
    let mut tokens = tokenize(text);
    let mut out = Vec::new();
    while let Some(&(offset, ref tok)) = tokens.first() {
        if tok == ")" {
            return Err(SexprError {
                offset,
                message: "unexpected ')'".into(),
            });
        }
        out.push(read_one(&mut tokens)?);
    }
    Ok(out)
}

fn tokenize(text: &str) -> Vec<(usize, String)> {
    let mut tokens = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' => {
                tokens.push((i, c.to_string()));
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            _ => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    i += 1;
                }
                tokens.push((start, text[start..i].to_string()));
            }
        }
    }
    tokens
}

fn read_one(tokens: &mut Vec<(usize, String)>) -> Result<Sexpr, SexprError> {
    let (offset, tok) = tokens.remove(0);
    if tok == "(" {
        let mut items = Vec::new();
        loop {
            match tokens.first() {
                None => {
                    return Err(SexprError {
                        offset,
                        message: "unclosed '('".into(),
                    })
                }
                Some((_, t)) if t == ")" => {
                    tokens.remove(0);
                    return Ok(Sexpr::List(items));
                }
                Some(_) => items.push(read_one(tokens)?),
            }
        }
    } else {
        Ok(Sexpr::Atom(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_nested_lists() {
        let out = read_all("(a (b c) d)").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_string(), "(a (b c) d)");
    }

    #[test]
    fn comments_are_skipped() {
        let out = read_all("; header\n(x) ; trailing\n(y)").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unbalanced_parens_error() {
        assert!(read_all("(a (b)").is_err());
        assert!(read_all("a)").is_err());
    }

    #[test]
    fn multiple_top_level_atoms() {
        let out = read_all("a b 1.5").unwrap();
        assert_eq!(
            out,
            vec![
                Sexpr::Atom("a".into()),
                Sexpr::Atom("b".into()),
                Sexpr::Atom("1.5".into())
            ]
        );
    }
}
