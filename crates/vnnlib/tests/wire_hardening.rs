//! Regression tests for adversarial wire input.
//!
//! Each case is a minimized crasher (or near-miss) found by throwing
//! hostile byte strings at the query-level API: the contract is that
//! `parse_bytes` returns `Err` for every malformed input and never
//! panics, overflows the stack, or aborts.

use abonn_vnnlib::{parse, parse_bytes, ParseError, MAX_DEPTH};

#[test]
fn invalid_utf8_is_a_structured_error() {
    // Minimized: a lone continuation byte.
    assert!(matches!(parse_bytes(b"\x80"), Err(ParseError::NotUtf8(0))));
    // Truncated multi-byte sequence at the end of an otherwise-valid
    // property prefix.
    let mut bytes = b"(declare-const X_0 Real)".to_vec();
    bytes.push(0xC2);
    match parse_bytes(&bytes) {
        Err(ParseError::NotUtf8(off)) => assert_eq!(off, bytes.len() - 1),
        other => panic!("expected NotUtf8, got {other:?}"),
    }
    // Overlong/invalid sequences inside an atom.
    assert!(matches!(
        parse_bytes(b"(assert \xF5\x80\x80\x80)"),
        Err(ParseError::NotUtf8(_))
    ));
}

#[test]
fn deep_nesting_errors_instead_of_overflowing() {
    // Minimized from the reader's old recursive descent: one million
    // open parens used to abort with a stack overflow. The reader is
    // iterative now, and the depth cap also bounds every recursive
    // consumer downstream (Display, parse_expr, drop glue).
    let bomb = "(".repeat(1_000_000).into_bytes();
    assert!(matches!(parse_bytes(&bomb), Err(ParseError::Syntax(_))));

    // Balanced but too deep: same structured rejection.
    let deep = format!(
        "(assert {}Y_0{})",
        "(+ ".repeat(MAX_DEPTH),
        ")".repeat(MAX_DEPTH)
    );
    assert!(matches!(parse(&deep), Err(ParseError::Syntax(_))));
}

#[test]
fn multibyte_whitespace_does_not_panic_the_tokenizer() {
    // Minimized: U+00A0 directly after an atom character made the old
    // byte-based tokenizer slice mid-character and panic.
    assert!(parse_bytes("a\u{00A0}b".as_bytes()).is_err());
    // The same character inside an otherwise valid property is plain
    // whitespace and must parse.
    let text = "(declare-const X_0 Real)\n(assert (>=\u{00A0}X_0 0.0))\n(assert (<= X_0 1.0))";
    assert!(parse(text).is_ok());
}

#[test]
fn stray_tokens_and_truncations_error_cleanly() {
    for bad in [
        &b")"[..],
        b"(",
        b"(assert",
        b"(assert)",
        b"((((assert or and))))",
        b"(declare-const)",
        b"(declare-const X_0)",
        b"(declare-const X_0 Real extra)",
        b"(assert (<= ))",
        b"(assert (<= Y_0))",
        b"(assert (* Y_0 Y_1))",
    ] {
        let got = parse_bytes(bad);
        assert!(got.is_err(), "accepted {:?}", String::from_utf8_lossy(bad));
    }
}

#[test]
fn absurd_numerals_do_not_panic() {
    // Overflows to infinity: the box is then incomplete, not a crash.
    let text = "(declare-const X_0 Real)\n(assert (>= X_0 -1e999999))\n(assert (<= X_0 1e999999))";
    assert!(matches!(parse(text), Err(ParseError::IncompleteInputBox(0))));
    // NaN-looking atoms are not numerals in this subset.
    assert!(parse("(assert (<= X_0 NaN))").is_err());
}

#[test]
fn empty_and_comment_only_inputs_parse_to_empty_properties() {
    let p = parse_bytes(b"").unwrap();
    assert_eq!(p.num_inputs(), 0);
    assert!(p.violation.is_empty());
    let p = parse("; nothing here\n; at all\n").unwrap();
    assert_eq!(p.num_inputs(), 0);
}

#[test]
fn giant_flat_input_is_linear_not_quadratic() {
    // The old reader removed tokens from the front of a Vec (O(n²));
    // 200k flat atoms now parse (to an error — stray atoms) instantly.
    let flat = "x ".repeat(200_000);
    assert!(parse(&flat).is_err());
}

#[test]
fn contradictory_bounds_yield_an_empty_but_parseable_box() {
    // Parsing succeeds (the box is syntactically complete); rejecting
    // the empty region is the spec layer's job, and it must do so
    // without panicking (covered in abonn-core's tests).
    let text = "(declare-const X_0 Real)\n(assert (>= X_0 0.9))\n(assert (<= X_0 0.1))";
    let p = parse(text).unwrap();
    assert!(p.input_lo[0] > p.input_hi[0]);
}
