//! Round-trip tests over the bundled benchmark suite: every instance's
//! property must survive `parse → write_property → parse` exactly, and
//! malformed inputs must come back as errors — never panics.

use abonn_data::zoo::ModelKind;
use abonn_data::{suite, SuiteConfig};
use abonn_vnnlib::{parse, write_property, write_robustness};

/// `parse(write_property(parse(text)))` must equal `parse(text)`: the
/// writer prints floats with Rust's shortest-round-trip formatting, so
/// not just semantics but the exact parsed representation is preserved.
fn assert_roundtrip(text: &str) {
    let first = parse(text).unwrap_or_else(|e| panic!("original does not parse: {e}"));
    let rewritten = write_property(&first);
    let second =
        parse(&rewritten).unwrap_or_else(|e| panic!("rewritten does not parse: {e}\n{rewritten}"));
    assert_eq!(first, second, "round-trip changed the property");
    // A second cycle must be a fixed point as well.
    let third = parse(&write_property(&second)).unwrap();
    assert_eq!(second, third, "second round-trip changed the property");
}

#[test]
fn suite_instances_roundtrip_for_every_model() {
    // Architecture-only networks: instance generation needs forward
    // passes and gradients, not trained accuracy, and the properties
    // depend only on (input, epsilon, label, classes).
    let mut checked = 0usize;
    for kind in ModelKind::ALL {
        let net = kind.architecture(7);
        let config = SuiteConfig {
            per_model: 4,
            seed: 2025,
        };
        for instance in suite::build_instances(kind, &net, &config) {
            let text = write_robustness(
                &instance.input,
                instance.epsilon,
                instance.label,
                net.output_dim(),
            );
            assert_roundtrip(&text);
            let property = parse(&text).unwrap();
            assert_eq!(property.num_inputs(), instance.input.len());
            let (label, adversarial) = property.as_robustness().expect("robustness shape");
            assert_eq!(label, instance.label);
            assert_eq!(adversarial.len(), net.output_dim() - 1);
            checked += 1;
        }
    }
    assert!(checked >= 5, "suite produced only {checked} instances");
}

#[test]
fn general_properties_roundtrip() {
    // Shapes beyond plain robustness: scaled coefficients, constants,
    // multi-atom conjunctions, empty violation region.
    for text in [
        "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(declare-const Y_1 Real)\n\
         (assert (>= X_0 0.1))\n(assert (<= X_0 0.9))\n\
         (assert (or (and (<= (+ Y_0 (* -2.5 Y_1)) 0.125) (>= Y_1 -3.0)) (and (<= Y_0 -1.0))))\n",
        "(declare-const X_0 Real)\n(declare-const X_1 Real)\n(declare-const Y_0 Real)\n\
         (assert (>= X_0 0.0))\n(assert (<= X_0 1.0))\n\
         (assert (>= X_1 -0.5))\n(assert (<= X_1 0.5))\n\
         (assert (or (and (>= Y_0 0.3333333333333333))))\n",
        "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n\
         (assert (>= X_0 0.25))\n(assert (<= X_0 0.75))\n",
    ] {
        assert_roundtrip(text);
    }
}

#[test]
fn awkward_floats_roundtrip_exactly() {
    // Shortest-representation printing must reproduce these bit-exactly.
    let inputs = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 0.123_456_789_012_345_68];
    let text = write_robustness(&inputs.map(|v| v.clamp(0.0, 1.0)), 0.05, 1, 4);
    assert_roundtrip(&text);
}

#[test]
fn malformed_inputs_error_without_panicking() {
    let cases: &[(&str, &str)] = &[
        ("(assert", "unclosed paren"),
        ("(assert (>= X_0 0.1)))", "extra close paren"),
        ("(declare-const X_0 Real", "unclosed declaration"),
        ("(declare-const X_0)", "missing sort"),
        ("(declare-const Z_0 Real)", "unknown variable family"),
        ("(declare-const X_0 Real)\n(assert (>= X_1 0.0))", "undeclared input"),
        ("(declare-const X_0 Real)\n(assert (>= X_0 banana))", "non-numeric literal"),
        ("(declare-const X_0 Real)\n(assert (>= X_0))", "missing operand"),
        ("(declare-const X_0 Real)\n(assert (?? X_0 0.0))", "unknown operator"),
        (
            "(declare-const X_0 Real)\n(declare-const Y_0 Real)\n(assert (or (and)))\n",
            "empty conjunct",
        ),
        ("(declare-const X_0 Real)\n(assert (>= Y_0 0.0))", "undeclared output"),
        ("\u{0}\u{1}\u{2}", "binary garbage"),
        ("(((((((((((", "deep unclosed nesting"),
        (")", "stray close paren"),
        ("(declare-const X_0 Real)", "declared input without a box"),
        ("(set-logic QF_LRA)", "unsupported command"),
    ];
    for (text, label) in cases {
        // A panic aborts the test; an Ok here would mean garbage silently
        // parsed into a property.
        assert!(parse(text).is_err(), "{label}: expected a parse error");
    }
}
