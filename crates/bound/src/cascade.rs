//! Cheap-first verifier cascade.
//!
//! Production verifiers avoid paying for tight bounds when loose ones
//! already decide a sub-problem: run IBP first, escalate to DeepPoly only
//! when IBP is inconclusive, and optionally escalate again to a final
//! tier. The cascade is itself an [`AppVer`], so every BaB approach can
//! use it transparently; it returns the first conclusive analysis, or the
//! last (tightest) one.

use crate::types::{Analysis, AppVer, InputBox, SplitSet};
use abonn_nn::CanonicalNetwork;
use std::sync::Arc;

/// A sequence of verifiers tried cheapest-first.
///
/// # Examples
///
/// ```
/// use abonn_bound::{AppVer, Cascade, DeepPoly, Ibp, InputBox, SplitSet};
/// use abonn_nn::{AffinePair, CanonicalNetwork};
/// use abonn_tensor::Matrix;
/// use std::sync::Arc;
///
/// let cascade = Cascade::new(vec![Arc::new(Ibp::new()), Arc::new(DeepPoly::new())]);
/// let net = CanonicalNetwork::from_affine_pairs(1, vec![
///     AffinePair::new(Matrix::identity(1), vec![2.0]),
/// ]);
/// let a = cascade.analyze(&net, &InputBox::new(vec![-1.0], vec![1.0]), &SplitSet::new());
/// assert!(a.p_hat > 0.0); // IBP already verifies; DeepPoly never runs
/// ```
#[derive(Clone)]
pub struct Cascade {
    tiers: Vec<Arc<dyn AppVer>>,
}

impl Cascade {
    /// Creates a cascade from cheapest to most expensive tier.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    #[must_use]
    pub fn new(tiers: Vec<Arc<dyn AppVer>>) -> Self {
        assert!(!tiers.is_empty(), "Cascade::new: need at least one tier");
        Self { tiers }
    }

    /// The standard two-tier cascade: IBP then DeepPoly.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(vec![
            Arc::new(crate::Ibp::new()),
            Arc::new(crate::DeepPoly::new()),
        ])
    }

    /// Number of tiers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Returns `true` if the cascade has no tiers (never after `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }
}

impl std::fmt::Debug for Cascade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.tiers.iter().map(|t| t.name()).collect();
        write!(f, "Cascade({})", names.join(" -> "))
    }
}

impl AppVer for Cascade {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        let mut last = None;
        for tier in &self.tiers {
            let analysis = tier.analyze(net, region, splits);
            if analysis.verified() {
                return analysis;
            }
            last = Some(analysis);
        }
        last.expect("cascade has at least one tier")
    }

    fn name(&self) -> &'static str {
        "cascade"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeepPoly, Ibp};
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, dims: &[usize]) -> CanonicalNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
            let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(AffinePair::new(m, b));
        }
        CanonicalNetwork::from_affine_pairs(dims[0], layers)
    }

    #[test]
    fn cascade_result_matches_final_tier_when_inconclusive() {
        let net = random_net(1, &[3, 6, 2]);
        let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
        let cascade = Cascade::standard();
        let c = cascade.analyze(&net, &region, &SplitSet::new());
        let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        if !c.verified() {
            assert_eq!(c.p_hat, dp.p_hat);
        }
    }

    #[test]
    fn cascade_never_looser_than_first_tier() {
        for seed in 0..5 {
            let net = random_net(seed, &[3, 5, 2]);
            let region = InputBox::new(vec![-0.3; 3], vec![0.3; 3]);
            let ibp = Ibp::new().analyze(&net, &region, &SplitSet::new());
            let c = Cascade::standard().analyze(&net, &region, &SplitSet::new());
            assert!(c.p_hat >= ibp.p_hat - 1e-12);
        }
    }

    #[test]
    fn single_tier_cascade_is_transparent() {
        let net = random_net(7, &[2, 4, 2]);
        let region = InputBox::new(vec![-0.4; 2], vec![0.4; 2]);
        let only = Cascade::new(vec![Arc::new(Ibp::new())]);
        let a = only.analyze(&net, &region, &SplitSet::new());
        let b = Ibp::new().analyze(&net, &region, &SplitSet::new());
        assert_eq!(a.p_hat, b.p_hat);
        assert_eq!(only.len(), 1);
    }

    #[test]
    fn debug_lists_tier_names() {
        let c = Cascade::standard();
        assert_eq!(format!("{c:?}"), "Cascade(IBP -> DeepPoly)");
    }
}
