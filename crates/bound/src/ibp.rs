//! Interval bound propagation (IBP).

use crate::relax::apply_split;
use crate::types::{Analysis, AppVer, InputBox, LayerBounds, SplitSet};
use abonn_nn::CanonicalNetwork;

/// The cheapest sound verifier: propagates axis-aligned intervals through
/// every stage. Fast but loose; mostly useful as a baseline and as a
/// cross-check that tighter verifiers stay inside its bounds.
///
/// # Examples
///
/// ```
/// use abonn_bound::{AppVer, Ibp, InputBox, SplitSet};
/// use abonn_nn::{AffinePair, CanonicalNetwork};
/// use abonn_tensor::Matrix;
///
/// let net = CanonicalNetwork::from_affine_pairs(1, vec![
///     AffinePair::new(Matrix::identity(1), vec![2.0]),
/// ]);
/// let a = Ibp::new().analyze(&net, &InputBox::new(vec![-1.0], vec![1.0]), &SplitSet::new());
/// assert!((a.p_hat - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ibp {
    _private: (),
}

impl Ibp {
    /// Creates an IBP verifier.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Propagates interval bounds, returning per-stage pre-activation
    /// bounds, or `None` if a split constraint empties a stage.
    pub(crate) fn propagate(
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
    ) -> Option<Vec<LayerBounds>> {
        let mut out = Vec::with_capacity(net.num_layers());
        Self::propagate_tail(
            net,
            splits,
            region.lo().to_vec(),
            region.hi().to_vec(),
            0,
            &mut out,
        )?;
        Some(out)
    }

    /// Like [`propagate`](Self::propagate), but resumes after the cached
    /// `prefix` of post-clamp pre-activation bounds (layers `0..prefix
    /// .len()`), which must have been produced by a split set agreeing
    /// with `splits` on those layers. The recomputed tail runs the exact
    /// same per-layer code as `propagate`, so the result is bit-for-bit
    /// what a from-scratch pass returns.
    pub(crate) fn propagate_from(
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
        prefix: &[LayerBounds],
    ) -> Option<Vec<LayerBounds>> {
        let Some(last) = prefix.last() else {
            return Self::propagate(net, region, splits);
        };
        // Re-derive the post-activation interval feeding the first
        // recomputed stage, exactly as the from-scratch loop does.
        let a_lo: Vec<f64> = last.lower.iter().map(|&v| v.max(0.0)).collect();
        let a_hi: Vec<f64> = last.upper.iter().map(|&v| v.max(0.0)).collect();
        let mut out = Vec::with_capacity(net.num_layers());
        out.extend_from_slice(prefix);
        Self::propagate_tail(net, splits, a_lo, a_hi, prefix.len(), &mut out)?;
        Some(out)
    }

    /// Shared propagation loop over stages `start..`, appending to `out`.
    fn propagate_tail(
        net: &CanonicalNetwork,
        splits: &SplitSet,
        mut a_lo: Vec<f64>,
        mut a_hi: Vec<f64>,
        start: usize,
        out: &mut Vec<LayerBounds>,
    ) -> Option<()> {
        let num_layers = net.num_layers();
        for (k, stage) in net.layers().iter().enumerate().skip(start) {
            let n = stage.out_dim();
            let mut lo = stage.bias.clone();
            let mut hi = stage.bias.clone();
            for i in 0..n {
                let row = stage.weight.row(i);
                let mut l = 0.0;
                let mut h = 0.0;
                for (t, &w) in row.iter().enumerate() {
                    if w >= 0.0 {
                        l += w * a_lo[t];
                        h += w * a_hi[t];
                    } else {
                        l += w * a_hi[t];
                        h += w * a_lo[t];
                    }
                }
                lo[i] += l;
                hi[i] += h;
            }
            if k + 1 < num_layers {
                // Apply split clamps, detect infeasibility, then ReLU.
                for i in 0..n {
                    let sign = splits.sign_of(crate::types::NeuronId::new(k, i));
                    let (l, u) = apply_split(lo[i], hi[i], sign);
                    if l > u + 1e-12 {
                        return None;
                    }
                    lo[i] = l;
                    hi[i] = u.max(l);
                }
                a_lo = lo.iter().map(|&v| v.max(0.0)).collect();
                a_hi = hi.iter().map(|&v| v.max(0.0)).collect();
            }
            out.push(LayerBounds::new(lo, hi));
        }
        Some(())
    }
}

impl AppVer for Ibp {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        if splits.is_contradictory() {
            return Analysis::infeasible();
        }
        let Some(bounds) = Self::propagate(net, region, splits) else {
            return Analysis::infeasible();
        };
        let out = bounds.last().expect("network has at least one stage");
        let p_hat = out.lower.iter().cloned().fold(f64::INFINITY, f64::min);
        let candidate = (p_hat < 0.0).then(|| region.center());
        Analysis {
            p_hat,
            candidate,
            bounds,
            infeasible: false,
        }
    }

    fn name(&self) -> &'static str {
        "IBP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{NeuronId, SplitSign};
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;

    /// z1 = (x, -x), a = relu(z1), y = a0 + a1 - 0.6 over x in [-1, 1].
    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    #[test]
    fn ibp_is_loose_on_the_v_example() {
        // True output range is [-0.6+|x|... ] = [-0.6 + 0, -0.6 + 1] but IBP
        // treats the two branches independently: a0, a1 in [0, 1] each, so
        // output in [-0.6, 1.4].
        let a = Ibp::new().analyze(
            &v_net(),
            &InputBox::new(vec![-1.0], vec![1.0]),
            &SplitSet::new(),
        );
        assert!((a.p_hat + 0.6).abs() < 1e-12);
        assert!(a.candidate.is_some());
        assert_eq!(a.bounds.len(), 2);
    }

    #[test]
    fn split_tightens_ibp() {
        // Splitting neuron (0,0) positive: x >= 0, so a0 in [0,1], a1 = 0...
        // IBP clamps z bounds only, post-relu a1 in [0, 1] -> with Neg split
        // on neuron 1 it becomes exactly 0.
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 1), SplitSign::Neg);
        let a = Ibp::new().analyze(&net, &region, &splits);
        // a1 = 0, a0 in [0, 1] → output in [-0.6, 0.4]
        assert!((a.p_hat + 0.6).abs() < 1e-12);
        let root = Ibp::new().analyze(&net, &region, &SplitSet::new());
        assert!(a.bounds[0].upper[1] <= root.bounds[0].upper[1]);
    }

    #[test]
    fn contradictory_splits_are_infeasible() {
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 0), SplitSign::Neg);
        let a = Ibp::new().analyze(&v_net(), &InputBox::new(vec![0.0], vec![1.0]), &splits);
        assert!(a.infeasible);
        assert!(a.verified());
    }

    #[test]
    fn unsatisfiable_split_region_detected() {
        // x in [0.5, 1.0] forces z0 = x >= 0.5 > 0; a Neg split empties it.
        let splits = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Neg);
        let a = Ibp::new().analyze(&v_net(), &InputBox::new(vec![0.5], vec![1.0]), &splits);
        assert!(a.infeasible);
    }

    #[test]
    fn propagate_from_prefix_is_bit_identical() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let splits = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Pos);
        let scratch = Ibp::propagate(&net, &region, &splits).expect("feasible");
        // A parent with no splits agrees with `splits` on layer 0? No — the
        // split lands on layer 0, so only the empty prefix is reusable;
        // check both the empty-prefix path and a genuine one-layer prefix
        // taken from the same split set.
        let from_empty = Ibp::propagate_from(&net, &region, &splits, &[]).expect("feasible");
        let from_one = Ibp::propagate_from(&net, &region, &splits, &scratch[..1]).expect("feasible");
        for (a, b) in scratch.iter().zip(&from_empty) {
            assert_eq!(a, b);
        }
        for (a, b) in scratch.iter().zip(&from_one) {
            for (u, v) in a.lower.iter().zip(&b.lower) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
            for (u, v) in a.upper.iter().zip(&b.upper) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn bounds_contain_concrete_executions() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let a = Ibp::new().analyze(&net, &region, &SplitSet::new());
        for step in 0..=10 {
            let x = -1.0 + 0.2 * step as f64;
            let zs = net.preactivations(&[x]);
            for (lb, z) in a.bounds.iter().zip(&zs) {
                for (i, &zi) in z.iter().enumerate() {
                    assert!(zi >= lb.lower[i] - 1e-9 && zi <= lb.upper[i] + 1e-9);
                }
            }
        }
    }
}
