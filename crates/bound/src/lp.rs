//! LP-relaxation verifier: the Planet-style triangle encoding solved with
//! the `abonn-lp` simplex.
//!
//! This is the reproduction's stand-in for the paper's GUROBI-backed
//! bounding. Each unstable ReLU contributes the three triangle facets
//! `a ≥ 0`, `a ≥ z`, `a ≤ u·(z − l)/(u − l)`; stable and split neurons
//! contribute exact linear rows. The LP minimum of an output coordinate is
//! a sound lower bound that is at least as tight as DeepPoly's (the
//! DeepPoly bound is a feasible dual choice of the same relaxation).
//!
//! # Warm starting across the BaB tree
//!
//! A child node's LP differs from its parent's by the rows/bounds of the
//! neurons its extra split touches, so re-solving from scratch wastes
//! almost all of the parent's simplex work (Bunel et al.). Three reuse
//! layers avoid that:
//!
//! 1. **Constant row layout.** Every hidden neuron contributes *exactly
//!    two* ReLU rows regardless of its stability category (unstable:
//!    `a ≥ z` and `a ≤ s·(z − l)`; active: `a = z` plus an all-zero
//!    trivial row; inactive: two trivial rows). An all-zero `≤ 0` row is
//!    inert in the simplex — its slack stays basic at zero and its column
//!    never becomes eligible to enter — so the padding costs nothing but
//!    keeps the constraint matrix the same shape at every node of a tree,
//!    letting a parent's terminal basis install directly on the child.
//! 2. **Skeleton sharing.** The split-independent part of the problem
//!    (variable layout, input-box bounds, the affine rows
//!    `z_k = W_k·a_{k−1} + b_k`) is built once per tree and shared via
//!    [`Arc`] through [`BoundPrefix`]; a node clones it and patches only
//!    pre-activation bounds and ReLU rows.
//! 3. **Warm-started solves.** Within a node, each output-row LP differs
//!    from the previous one only in the objective, so its terminal basis
//!    is dual-feasible for the next row and re-solving from it takes few
//!    pivots. Across nodes, the parent's final basis seeds the child's
//!    first solve through [`Problem::solve_warm`]'s deterministic repair.
//!
//! Warm and cold solves return bit-identical [`abonn_lp::Solution`]s
//! whenever they terminate in the same basis (canonical extraction; see
//! `abonn-lp`), so verdicts, witnesses, and reports do not depend on the
//! `warm_start` switch — CI diffs a `--no-warm-start` rerun byte-for-byte
//! to enforce this. The in-memory [`BoundComputeStats`] counters
//! (`lp_pivots`, `lp_warm_hits`, `lp_cold_solves`) are the only observable
//! difference.

use crate::cache::{BoundComputeStats, BoundPrefix, CachedAnalysis, LpPrefix};
use crate::deeppoly::{compute_bounds_engine, RelaxMode};
use crate::types::{Analysis, AppVer, InputBox, NeuronId, SplitSet, SplitSign};
use abonn_lp::{Problem, Relation, Sense, Status, WarmStart};
use abonn_nn::CanonicalNetwork;
use std::sync::Arc;

/// The LP-relaxation verifier.
///
/// Noticeably more expensive per call than [`DeepPoly`](crate::DeepPoly);
/// intended for small networks, ablations, and as the "expensive solver"
/// end of the verifier spectrum. Warm starting (on by default) reuses
/// simplex bases across the output rows of a node and, through
/// [`AppVer::analyze_cached`], across parent/child BaB nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpVerifier {
    warm_start: bool,
}

impl Default for LpVerifier {
    fn default() -> Self {
        Self::new()
    }
}

/// Variable layout of the triangle LP: input, then per hidden stage the
/// pair `(z_k, a_k)`, then the output `z`.
struct Layout {
    n_in: usize,
    z_off: Vec<usize>,
    a_off: Vec<usize>,
    total: usize,
}

impl Layout {
    fn of(net: &CanonicalNetwork) -> Self {
        let num_layers = net.num_layers();
        let n_in = net.input_dim();
        let mut z_off = Vec::with_capacity(num_layers);
        let mut a_off = Vec::with_capacity(num_layers - 1);
        let mut total = n_in;
        for k in 0..num_layers {
            z_off.push(total);
            total += net.layers()[k].out_dim();
            if k + 1 < num_layers {
                a_off.push(total);
                total += net.layers()[k].out_dim();
            }
        }
        Self {
            n_in,
            z_off,
            a_off,
            total,
        }
    }
}

/// Builds the split-independent constraint skeleton: input-box bounds and
/// the affine rows `z_k − W_k·a_{k−1} = b_k`. Identical for every node of
/// a BaB tree over `(net, region)`, so it is built once and shared.
fn build_skeleton(net: &CanonicalNetwork, region: &InputBox, layout: &Layout) -> Problem {
    let mut base = Problem::new(layout.total, Sense::Minimize);
    for (j, (&l, &h)) in region.lo().iter().zip(region.hi()).enumerate() {
        base.set_bounds(j, l, h);
    }
    // z_k = W_k · a_{k-1} + b_k  (a_{-1} = x).
    for k in 0..net.num_layers() {
        let stage = &net.layers()[k];
        let prev_off = if k == 0 { 0 } else { layout.a_off[k - 1] };
        for i in 0..stage.out_dim() {
            let mut row = vec![0.0; layout.total];
            row[layout.z_off[k] + i] = 1.0;
            for (t, &w) in stage.weight.row(i).iter().enumerate() {
                row[prev_off + t] = -w;
            }
            base.add_row(&row, Relation::Eq, stage.bias[i]);
        }
    }
    base
}

impl LpVerifier {
    /// Creates an LP verifier with warm starting enabled.
    #[must_use]
    pub fn new() -> Self {
        Self { warm_start: true }
    }

    /// Enables or disables warm starting. Results are bit-identical either
    /// way; only the in-memory work counters differ.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Shared implementation behind [`AppVer::analyze`] and
    /// [`AppVer::analyze_cached`]: one code path, so both entry points
    /// produce bit-for-bit the same analysis.
    fn run(
        &self,
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
        parent: Option<&Arc<BoundPrefix>>,
        want_prefix: bool,
    ) -> CachedAnalysis {
        let mut stats = BoundComputeStats::default();
        if splits.is_contradictory() {
            return CachedAnalysis::scratch(Analysis::infeasible());
        }
        // DeepPoly pass supplies the pre-activation boxes the triangle
        // facets need (and already handles split clamping); it runs
        // through the incremental engine so a parent prefix saves the
        // already-bound layers.
        let Some(engine_out) = compute_bounds_engine(
            net,
            region,
            splits,
            None,
            RelaxMode::Adaptive,
            true,
            parent,
            want_prefix,
            &mut stats,
        ) else {
            return CachedAnalysis {
                analysis: Analysis::infeasible(),
                prefix: None,
                stats,
            };
        };
        let mut bounds = engine_out.result.bounds;
        let num_layers = net.num_layers();
        let n_out = net.output_dim();
        let layout = Layout::of(net);
        let total = layout.total;

        let parent_lp = parent.and_then(|p| p.lp.as_ref());
        let skeleton = match parent_lp {
            Some(lp) => Arc::clone(&lp.skeleton),
            None => Arc::new(build_skeleton(net, region, &layout)),
        };

        let mut base = (*skeleton).clone();
        for (k, lb) in bounds.iter().enumerate().take(num_layers) {
            for i in 0..lb.len() {
                base.set_bounds(layout.z_off[k] + i, lb.lower[i], lb.upper[i]);
            }
        }

        // ReLU encodings: exactly two rows per hidden neuron, in a fixed
        // order, padding stable categories with inert all-zero rows so the
        // constraint matrix keeps the same shape at every node (see the
        // module docs). `zero_row` is reused for every trivial row.
        let zero_row = vec![0.0; total];
        for (k, lb) in bounds.iter().enumerate().take(num_layers - 1) {
            for i in 0..lb.len() {
                let (l, u) = (lb.lower[i], lb.upper[i]);
                let zv = layout.z_off[k] + i;
                let av = layout.a_off[k] + i;
                let sign = splits.sign_of(NeuronId::new(k, i));
                let active = l >= 0.0 || sign == Some(SplitSign::Pos);
                let inactive = u <= 0.0 || sign == Some(SplitSign::Neg);
                if active && !inactive {
                    // a = z
                    base.set_bounds(av, l.max(0.0), u.max(0.0));
                    let mut row = vec![0.0; total];
                    row[av] = 1.0;
                    row[zv] = -1.0;
                    base.add_row(&row, Relation::Eq, 0.0);
                    base.add_row(&zero_row, Relation::Le, 0.0);
                } else if inactive {
                    base.set_bounds(av, 0.0, 0.0);
                    base.add_row(&zero_row, Relation::Le, 0.0);
                    base.add_row(&zero_row, Relation::Le, 0.0);
                } else {
                    // Unstable: triangle relaxation.
                    base.set_bounds(av, 0.0, u.max(0.0));
                    let mut ge = vec![0.0; total];
                    ge[av] = 1.0;
                    ge[zv] = -1.0;
                    base.add_row(&ge, Relation::Ge, 0.0); // a >= z
                    let s = u / (u - l);
                    let mut le = vec![0.0; total];
                    le[av] = 1.0;
                    le[zv] = -s;
                    base.add_row(&le, Relation::Le, -s * l); // a <= s(z - l)
                }
            }
        }

        // Solve one LP per output row DeepPoly has not already verified,
        // chaining each solve off the previous terminal basis (and the
        // first off the parent's) when warm starting is on.
        let mut warm: Option<WarmStart> = if self.warm_start {
            parent_lp.and_then(|lp| lp.warm.clone())
        } else {
            None
        };
        let out_off = layout.z_off[num_layers - 1];
        let mut p_hat = f64::INFINITY;
        let mut candidate: Option<Vec<f64>> = None;
        let out_bounds = bounds.last().expect("non-empty").clone();
        let mut new_lower = out_bounds.lower.clone();
        // One objective buffer reused across the per-row solves: the rows
        // differ only in which coefficient is 1.0, and `set_objective`
        // overwrites in place, so the former per-row `base.clone()` (a
        // full copy of the constraint matrix) is gone.
        let mut obj = vec![0.0; total];
        for r in 0..n_out {
            if out_bounds.lower[r] > 0.0 {
                p_hat = p_hat.min(out_bounds.lower[r]);
                continue;
            }
            obj[out_off + r] = 1.0;
            base.set_objective(&obj);
            let res = match &warm {
                Some(w) => base.solve_warm(w),
                None => base.solve(),
            };
            obj[out_off + r] = 0.0;
            match res {
                Ok(sol) => {
                    stats.lp_pivots += sol.pivots;
                    stats.lp_pivot_cells += sol.pivot_cells;
                    if sol.warmed {
                        stats.lp_warm_hits += 1;
                    } else {
                        stats.lp_cold_solves += 1;
                    }
                    match sol.status {
                        Status::Optimal => {
                            if self.warm_start && sol.warm.is_some() {
                                warm = sol.warm.clone();
                            }
                            // The LP minimum can only improve (raise) the
                            // DeepPoly bound; guard against solver
                            // tolerance lowering it.
                            let v = sol.objective.max(out_bounds.lower[r]);
                            new_lower[r] = v;
                            if v < p_hat {
                                p_hat = v;
                                if v < 0.0 {
                                    candidate = Some(sol.x[..layout.n_in].to_vec());
                                }
                            }
                        }
                        Status::Infeasible => {
                            return CachedAnalysis {
                                analysis: Analysis::infeasible(),
                                prefix: None,
                                stats,
                            };
                        }
                        // Unbounded cannot happen (all variables boxed);
                        // fall back to the sound DeepPoly bound.
                        _ => p_hat = p_hat.min(out_bounds.lower[r]),
                    }
                }
                // Solver failure falls back to the sound DeepPoly bound.
                Err(_) => {
                    stats.lp_cold_solves += 1;
                    p_hat = p_hat.min(out_bounds.lower[r]);
                }
            }
        }
        let last = bounds.len() - 1;
        bounds[last].lower = new_lower;

        let prefix = if want_prefix {
            engine_out.prefix.map(|p| {
                let mut inner = (*p).clone();
                inner.lp = Some(LpPrefix {
                    skeleton,
                    warm: if self.warm_start { warm } else { None },
                });
                Arc::new(inner)
            })
        } else {
            None
        };

        CachedAnalysis {
            analysis: Analysis {
                p_hat,
                candidate,
                bounds,
                infeasible: false,
            },
            prefix,
            stats,
        }
    }
}

impl AppVer for LpVerifier {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        self.run(net, region, splits, None, false).analysis
    }

    fn analyze_cached(
        &self,
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
        parent: Option<&Arc<BoundPrefix>>,
    ) -> CachedAnalysis {
        self.run(net, region, splits, parent, true)
    }

    fn name(&self) -> &'static str {
        "LP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deeppoly::DeepPoly;
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    fn random_net(seed: u64, dims: &[usize]) -> CanonicalNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
            let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(AffinePair::new(m, b));
        }
        CanonicalNetwork::from_affine_pairs(dims[0], layers)
    }

    fn assert_analysis_bits_eq(a: &Analysis, b: &Analysis, what: &str) {
        assert_eq!(a.infeasible, b.infeasible, "{what}: infeasible");
        assert_eq!(a.p_hat.to_bits(), b.p_hat.to_bits(), "{what}: p_hat");
        assert_eq!(a.candidate.is_some(), b.candidate.is_some(), "{what}");
        if let (Some(x), Some(y)) = (&a.candidate, &b.candidate) {
            for (u, v) in x.iter().zip(y) {
                assert_eq!(u.to_bits(), v.to_bits(), "{what}: candidate");
            }
        }
        assert_eq!(a.bounds.len(), b.bounds.len(), "{what}: bounds len");
        for (la, lb) in a.bounds.iter().zip(&b.bounds) {
            for (u, v) in la.lower.iter().zip(&lb.lower) {
                assert_eq!(u.to_bits(), v.to_bits(), "{what}: lower");
            }
            for (u, v) in la.upper.iter().zip(&lb.upper) {
                assert_eq!(u.to_bits(), v.to_bits(), "{what}: upper");
            }
        }
    }

    #[test]
    fn lp_at_least_as_tight_as_deeppoly() {
        for seed in 0..6 {
            let net = random_net(seed, &[3, 5, 4, 2]);
            let region = InputBox::new(vec![-0.4; 3], vec![0.4; 3]);
            let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let lp = LpVerifier::new().analyze(&net, &region, &SplitSet::new());
            assert!(
                lp.p_hat >= dp.p_hat - 1e-6,
                "seed {seed}: lp {} < dp {}",
                lp.p_hat,
                dp.p_hat
            );
        }
    }

    #[test]
    fn lp_is_sound() {
        for seed in 10..14 {
            let net = random_net(seed, &[3, 5, 3, 2]);
            let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
            let a = LpVerifier::new().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xBB);
            for _ in 0..30 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
                let min_y = net
                    .forward(&x)
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert!(a.p_hat <= min_y + 1e-6, "seed {seed}");
            }
        }
    }

    #[test]
    fn lp_candidate_lies_in_region() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let a = LpVerifier::new().analyze(&net, &region, &SplitSet::new());
        if let Some(c) = &a.candidate {
            assert!(region.contains(c, 1e-6));
        }
        // On the V example the LP relaxation still cannot prove more than
        // the true minimum of −0.6.
        assert!(a.p_hat <= -0.6 + 1e-6);
    }

    #[test]
    fn fully_split_problem_is_exact() {
        // Splitting the only unstable layer completely makes the LP exact:
        // on x >= 0 the network is y = x - 0.6 with minimum -0.6.
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 1), SplitSign::Neg);
        let a = LpVerifier::new().analyze(&net, &region, &splits);
        assert!((a.p_hat + 0.6).abs() < 1e-6, "p_hat = {}", a.p_hat);
    }

    #[test]
    fn contradictory_splits_are_infeasible_in_both_entry_points() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let n = NeuronId::new(0, 0);
        let splits = SplitSet::new()
            .with(n, SplitSign::Pos)
            .with(n, SplitSign::Neg);
        assert!(splits.is_contradictory());
        for lp in [
            LpVerifier::new(),
            LpVerifier::new().with_warm_start(false),
        ] {
            let a = lp.analyze(&net, &region, &splits);
            assert!(a.infeasible, "analyze must report infeasible");
            assert!(a.verified(), "infeasible implies vacuously verified");
            let c = lp.analyze_cached(&net, &region, &splits, None);
            assert!(c.analysis.infeasible);
            assert!(c.prefix.is_none(), "no prefix for an empty region");
        }
    }

    #[test]
    fn warm_and_cold_analyses_are_bit_identical() {
        for seed in 0..5 {
            let net = random_net(seed, &[3, 6, 5, 2]);
            let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
            let warm_v = LpVerifier::new();
            let cold_v = LpVerifier::new().with_warm_start(false);
            // Root, then a child per sign of the first unstable neuron,
            // threading the warm verifier's prefix to exercise the
            // parent-basis path.
            let root_w = warm_v.analyze_cached(&net, &region, &SplitSet::new(), None);
            let root_c = cold_v.analyze_cached(&net, &region, &SplitSet::new(), None);
            assert_analysis_bits_eq(&root_w.analysis, &root_c.analysis, "root");
            let unstable = root_w.analysis.unstable_neurons(&SplitSet::new());
            if unstable.is_empty() {
                continue;
            }
            for sign in [SplitSign::Pos, SplitSign::Neg] {
                let splits = SplitSet::new().with(unstable[0], sign);
                let child_w =
                    warm_v.analyze_cached(&net, &region, &splits, root_w.prefix.as_ref());
                let child_c = cold_v.analyze_cached(&net, &region, &splits, None);
                assert_analysis_bits_eq(
                    &child_w.analysis,
                    &child_c.analysis,
                    &format!("seed {seed} child {sign:?}"),
                );
            }
        }
    }

    #[test]
    fn warm_start_reduces_pivots_and_counts_hits() {
        let net = random_net(7, &[4, 8, 8, 3]);
        let region = InputBox::new(vec![-0.5; 4], vec![0.5; 4]);
        let warm_v = LpVerifier::new();
        let cold_v = LpVerifier::new().with_warm_start(false);

        let mut warm_stats = BoundComputeStats::default();
        let mut cold_stats = BoundComputeStats::default();
        let root_w = warm_v.analyze_cached(&net, &region, &SplitSet::new(), None);
        let root_c = cold_v.analyze_cached(&net, &region, &SplitSet::new(), None);
        warm_stats.absorb(&root_w.stats);
        cold_stats.absorb(&root_c.stats);
        let unstable = root_w.analysis.unstable_neurons(&SplitSet::new());
        assert!(!unstable.is_empty(), "test needs an unstable neuron");
        for sign in [SplitSign::Pos, SplitSign::Neg] {
            let splits = SplitSet::new().with(unstable[0], sign);
            let cw = warm_v.analyze_cached(&net, &region, &splits, root_w.prefix.as_ref());
            let cc = cold_v.analyze_cached(&net, &region, &splits, None);
            warm_stats.absorb(&cw.stats);
            cold_stats.absorb(&cc.stats);
        }
        assert!(warm_stats.lp_warm_hits > 0, "warm path never engaged");
        assert_eq!(cold_stats.lp_warm_hits, 0, "cold run must not warm-start");
        assert!(
            cold_stats.lp_cold_solves >= warm_stats.lp_warm_hits + warm_stats.lp_cold_solves,
            "solve counts should cover the same LPs"
        );
        assert!(
            warm_stats.lp_pivots < cold_stats.lp_pivots,
            "warm {} >= cold {} pivots",
            warm_stats.lp_pivots,
            cold_stats.lp_pivots
        );
    }

    #[test]
    fn analyze_matches_analyze_cached_without_parent() {
        let net = random_net(21, &[3, 6, 4, 2]);
        let region = InputBox::new(vec![-0.4; 3], vec![0.4; 3]);
        let lp = LpVerifier::new();
        let plain = lp.analyze(&net, &region, &SplitSet::new());
        let cached = lp.analyze_cached(&net, &region, &SplitSet::new(), None);
        assert_analysis_bits_eq(&plain, &cached.analysis, "entry points");
        assert!(cached.prefix.is_some(), "LP verifier caches its prefix");
        let prefix = cached.prefix.expect("just checked");
        assert!(prefix.lp.is_some(), "prefix carries LP state");
    }
}
