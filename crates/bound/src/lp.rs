//! LP-relaxation verifier: the Planet-style triangle encoding solved with
//! the `abonn-lp` simplex.
//!
//! This is the reproduction's stand-in for the paper's GUROBI-backed
//! bounding. Each unstable ReLU contributes the three triangle facets
//! `a ≥ 0`, `a ≥ z`, `a ≤ u·(z − l)/(u − l)`; stable and split neurons
//! contribute exact linear rows. The LP minimum of an output coordinate is
//! a sound lower bound that is at least as tight as DeepPoly's (the
//! DeepPoly bound is a feasible dual choice of the same relaxation).

use crate::deeppoly::compute_bounds;
use crate::types::{Analysis, AppVer, InputBox, NeuronId, SplitSet, SplitSign};
use abonn_lp::{Problem, Relation, Sense, Status};
use abonn_nn::CanonicalNetwork;

/// The LP-relaxation verifier.
///
/// Noticeably more expensive per call than [`DeepPoly`](crate::DeepPoly);
/// intended for small networks, ablations, and as the "expensive solver"
/// end of the verifier spectrum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpVerifier {
    _private: (),
}

impl LpVerifier {
    /// Creates an LP verifier.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AppVer for LpVerifier {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        if splits.is_contradictory() {
            return Analysis::infeasible();
        }
        // DeepPoly pass supplies the pre-activation boxes the triangle
        // facets need (and already handles split clamping).
        let Some(pre) = compute_bounds(net, region, splits, None) else {
            return Analysis::infeasible();
        };
        let mut bounds = pre.bounds;
        let num_layers = net.num_layers();
        let n_out = net.output_dim();

        // Variable layout: input, then per hidden stage (z_k, a_k), then
        // the output z.
        let n_in = net.input_dim();
        let mut z_off = Vec::with_capacity(num_layers);
        let mut a_off = Vec::with_capacity(num_layers - 1);
        let mut total = n_in;
        for k in 0..num_layers {
            z_off.push(total);
            total += net.layers()[k].out_dim();
            if k + 1 < num_layers {
                a_off.push(total);
                total += net.layers()[k].out_dim();
            }
        }

        let mut base = Problem::new(total, Sense::Minimize);
        for (j, (&l, &h)) in region.lo().iter().zip(region.hi()).enumerate() {
            base.set_bounds(j, l, h);
        }
        for k in 0..num_layers {
            let lb = &bounds[k];
            for i in 0..lb.len() {
                base.set_bounds(z_off[k] + i, lb.lower[i], lb.upper[i]);
            }
        }

        // z_k = W_k · a_{k-1} + b_k  (a_{-1} = x).
        for k in 0..num_layers {
            let stage = &net.layers()[k];
            let prev_off = if k == 0 { 0 } else { a_off[k - 1] };
            for i in 0..stage.out_dim() {
                let mut row = vec![0.0; total];
                row[z_off[k] + i] = 1.0;
                for (t, &w) in stage.weight.row(i).iter().enumerate() {
                    row[prev_off + t] = -w;
                }
                base.add_row(&row, Relation::Eq, stage.bias[i]);
            }
        }

        // ReLU encodings per hidden neuron.
        for k in 0..num_layers - 1 {
            let lb = bounds[k].clone();
            for i in 0..lb.len() {
                let (l, u) = (lb.lower[i], lb.upper[i]);
                let zv = z_off[k] + i;
                let av = a_off[k] + i;
                let sign = splits.sign_of(NeuronId::new(k, i));
                let active = l >= 0.0 || sign == Some(SplitSign::Pos);
                let inactive = u <= 0.0 || sign == Some(SplitSign::Neg);
                if active && !inactive {
                    // a = z
                    base.set_bounds(av, l.max(0.0), u.max(0.0));
                    let mut row = vec![0.0; total];
                    row[av] = 1.0;
                    row[zv] = -1.0;
                    base.add_row(&row, Relation::Eq, 0.0);
                } else if inactive {
                    base.set_bounds(av, 0.0, 0.0);
                } else {
                    // Unstable: triangle relaxation.
                    base.set_bounds(av, 0.0, u.max(0.0));
                    let mut ge = vec![0.0; total];
                    ge[av] = 1.0;
                    ge[zv] = -1.0;
                    base.add_row(&ge, Relation::Ge, 0.0); // a >= z
                    let s = u / (u - l);
                    let mut le = vec![0.0; total];
                    le[av] = 1.0;
                    le[zv] = -s;
                    base.add_row(&le, Relation::Le, -s * l); // a <= s(z - l)
                }
            }
        }

        // Solve one LP per output row DeepPoly has not already verified.
        let out_off = z_off[num_layers - 1];
        let mut p_hat = f64::INFINITY;
        let mut candidate: Option<Vec<f64>> = None;
        let out_bounds = bounds.last().expect("non-empty").clone();
        let mut new_lower = out_bounds.lower.clone();
        for r in 0..n_out {
            if out_bounds.lower[r] > 0.0 {
                p_hat = p_hat.min(out_bounds.lower[r]);
                continue;
            }
            let mut prob = base.clone();
            let mut obj = vec![0.0; total];
            obj[out_off + r] = 1.0;
            prob.set_objective(&obj);
            match prob.solve() {
                Ok(sol) if sol.status == Status::Optimal => {
                    // The LP minimum can only improve (raise) the DeepPoly
                    // bound; guard against solver tolerance lowering it.
                    let v = sol.objective.max(out_bounds.lower[r]);
                    new_lower[r] = v;
                    if v < p_hat {
                        p_hat = v;
                        if v < 0.0 {
                            candidate = Some(sol.x[..n_in].to_vec());
                        }
                    }
                }
                Ok(sol) if sol.status == Status::Infeasible => {
                    return Analysis::infeasible();
                }
                // Unbounded cannot happen (all variables boxed); solver
                // failure falls back to the sound DeepPoly bound.
                _ => p_hat = p_hat.min(out_bounds.lower[r]),
            }
        }
        let last = bounds.len() - 1;
        bounds[last].lower = new_lower;

        Analysis {
            p_hat,
            candidate,
            bounds,
            infeasible: false,
        }
    }

    fn name(&self) -> &'static str {
        "LP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deeppoly::DeepPoly;
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    fn random_net(seed: u64, dims: &[usize]) -> CanonicalNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
            let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(AffinePair::new(m, b));
        }
        CanonicalNetwork::from_affine_pairs(dims[0], layers)
    }

    #[test]
    fn lp_at_least_as_tight_as_deeppoly() {
        for seed in 0..6 {
            let net = random_net(seed, &[3, 5, 4, 2]);
            let region = InputBox::new(vec![-0.4; 3], vec![0.4; 3]);
            let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let lp = LpVerifier::new().analyze(&net, &region, &SplitSet::new());
            assert!(
                lp.p_hat >= dp.p_hat - 1e-6,
                "seed {seed}: lp {} < dp {}",
                lp.p_hat,
                dp.p_hat
            );
        }
    }

    #[test]
    fn lp_is_sound() {
        for seed in 10..14 {
            let net = random_net(seed, &[3, 5, 3, 2]);
            let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
            let a = LpVerifier::new().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xBB);
            for _ in 0..30 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
                let min_y = net
                    .forward(&x)
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert!(a.p_hat <= min_y + 1e-6, "seed {seed}");
            }
        }
    }

    #[test]
    fn lp_candidate_lies_in_region() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let a = LpVerifier::new().analyze(&net, &region, &SplitSet::new());
        if let Some(c) = &a.candidate {
            assert!(region.contains(c, 1e-6));
        }
        // On the V example the LP relaxation still cannot prove more than
        // the true minimum of −0.6.
        assert!(a.p_hat <= -0.6 + 1e-6);
    }

    #[test]
    fn fully_split_problem_is_exact() {
        // Splitting the only unstable layer completely makes the LP exact:
        // on x >= 0 the network is y = x - 0.6 with minimum -0.6.
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let splits = SplitSet::new()
            .with(NeuronId::new(0, 0), SplitSign::Pos)
            .with(NeuronId::new(0, 1), SplitSign::Neg);
        let a = LpVerifier::new().analyze(&net, &region, &splits);
        assert!((a.p_hat + 0.6).abs() < 1e-6, "p_hat = {}", a.p_hat);
    }
}
