//! DeepPoly/CROWN-style linear-relaxation bound propagation with split
//! constraints.
//!
//! For each affine stage the engine back-substitutes a pair of linear
//! expressions (a lower and an upper bound on the stage's pre-activations)
//! through all earlier ReLU relaxations down to the input, then
//! concretises them over the input box. Pre-activation bounds are
//! intersected with interval propagation (so the result is never looser
//! than [`Ibp`](crate::Ibp)) and tightened by the sub-problem's split
//! constraints before the stage's own ReLU relaxation is formed.

use crate::ibp::Ibp;
use crate::relax::{apply_split, ReluRelaxation};
use crate::types::{Analysis, AppVer, InputBox, LayerBounds, NeuronId, SplitSet};
use abonn_nn::CanonicalNetwork;
use abonn_tensor::Matrix;

/// Intermediate result of a full bound computation, including everything
/// needed to extract candidates and to re-run with different α slopes.
#[derive(Debug, Clone)]
pub(crate) struct BoundsResult {
    /// Pre-activation bounds per stage (post split-clamp).
    pub bounds: Vec<LayerBounds>,
    /// Coefficients of the linear lower bound of the *output* stage over
    /// the input (one row per output); used to extract the box corner that
    /// minimises the relaxed output.
    pub output_lower_coeffs: Matrix,
}

/// Per-stage, per-neuron lower-relaxation slopes in `[0, 1]`.
pub(crate) type AlphaAssignment = Vec<Vec<f64>>;

/// Runs the backward-substitution analysis.
///
/// `alphas` overrides the lower-relaxation slope of unstable neurons; when
/// `None` the DeepPoly adaptive slope is used. Returns `None` when a split
/// constraint makes the region infeasible.
pub(crate) fn compute_bounds(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
    alphas: Option<&AlphaAssignment>,
) -> Option<BoundsResult> {
    compute_bounds_with(net, region, splits, alphas, RelaxMode::Adaptive, true)
}

/// Lower-relaxation slope policy for unstable neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RelaxMode {
    /// DeepPoly's area-adaptive slope (`1` when `u ≥ −l`, else `0`).
    #[default]
    Adaptive,
    /// Planet-style zero lower bound (`a ≥ 0` only) — markedly looser,
    /// producing the larger, bushier BaB trees typical of weaker
    /// relaxations.
    Zero,
}

/// Full-control variant of [`compute_bounds`]: slope policy and whether to
/// intersect with interval propagation.
pub(crate) fn compute_bounds_with(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
    alphas: Option<&AlphaAssignment>,
    mode: RelaxMode,
    intersect_ibp: bool,
) -> Option<BoundsResult> {
    let num_layers = net.num_layers();
    let ibp_bounds = Ibp::propagate(net, region, splits)?;

    let mut bounds: Vec<LayerBounds> = Vec::with_capacity(num_layers);
    let mut relaxations: Vec<Vec<ReluRelaxation>> = Vec::with_capacity(num_layers - 1);
    let mut out_low: Option<Matrix> = None;

    for k in 0..num_layers {
        let (lo_expr, lo_const, hi_expr, hi_const) = back_substitute(net, k, &relaxations);
        let n = net.layers()[k].out_dim();
        let mut lo = vec![0.0; n];
        let mut hi = vec![0.0; n];
        for s in 0..n {
            lo[s] = concretize_min(lo_expr.row(s), region) + lo_const[s];
            hi[s] = concretize_max(hi_expr.row(s), region) + hi_const[s];
        }
        // Intersect with IBP so DeepPoly never reports looser bounds
        // (skipped in the deliberately-loose Planet mode).
        for s in 0..n {
            if intersect_ibp {
                lo[s] = lo[s].max(ibp_bounds[k].lower[s]);
                hi[s] = hi[s].min(ibp_bounds[k].upper[s]);
            } else {
                lo[s] = lo[s].max(ibp_bounds[k].lower[s].min(-1e30));
                hi[s] = hi[s].min(ibp_bounds[k].upper[s].max(1e30));
            }
            // Numerical guard: never let the pair invert from round-off.
            if lo[s] > hi[s] && lo[s] - hi[s] < 1e-9 {
                let mid = 0.5 * (lo[s] + hi[s]);
                lo[s] = mid;
                hi[s] = mid;
            }
        }

        if k + 1 < num_layers {
            // Split clamping + infeasibility detection, then relaxations.
            let mut relax = Vec::with_capacity(n);
            for s in 0..n {
                let sign = splits.sign_of(NeuronId::new(k, s));
                let (l, u) = apply_split(lo[s], hi[s], sign);
                if l > u + 1e-12 {
                    return None;
                }
                lo[s] = l;
                hi[s] = u.max(l);
                let alpha = match (alphas, mode) {
                    (Some(a), _) => a[k][s].clamp(0.0, 1.0),
                    (None, RelaxMode::Adaptive) => ReluRelaxation::deeppoly_alpha(lo[s], hi[s]),
                    (None, RelaxMode::Zero) => 0.0,
                };
                relax.push(ReluRelaxation::with_alpha(lo[s], hi[s], alpha));
            }
            relaxations.push(relax);
        } else {
            out_low = Some(lo_expr);
        }
        bounds.push(LayerBounds::new(lo, hi));
    }

    let output_lower_coeffs = out_low.expect("loop always reaches the output stage");
    Some(BoundsResult {
        bounds,
        output_lower_coeffs,
    })
}

/// Back-substitutes stage `k`'s pre-activation expressions down to the
/// input, returning `(lower_coeffs, lower_consts, upper_coeffs,
/// upper_consts)` over the input vector.
fn back_substitute(
    net: &CanonicalNetwork,
    k: usize,
    relaxations: &[Vec<ReluRelaxation>],
) -> (Matrix, Vec<f64>, Matrix, Vec<f64>) {
    let stage = &net.layers()[k];
    let mut lo_a = stage.weight.clone();
    let mut lo_c = stage.bias.clone();
    let mut hi_a = stage.weight.clone();
    let mut hi_c = stage.bias.clone();

    for j in (0..k).rev() {
        let relax = &relaxations[j];
        substitute_relu(&mut lo_a, &mut lo_c, relax, true);
        substitute_relu(&mut hi_a, &mut hi_c, relax, false);
        let prev = &net.layers()[j];
        // Expression over z_j = W_j a_{j-1} + b_j → over a_{j-1}.
        for (ci, v) in lo_c.iter_mut().enumerate() {
            *v += abonn_tensor::vecops::dot(lo_a.row(ci), &prev.bias);
        }
        for (ci, v) in hi_c.iter_mut().enumerate() {
            *v += abonn_tensor::vecops::dot(hi_a.row(ci), &prev.bias);
        }
        lo_a = lo_a.matmul(&prev.weight);
        hi_a = hi_a.matmul(&prev.weight);
    }
    (lo_a, lo_c, hi_a, hi_c)
}

/// Replaces coefficients over post-activations `a_j` with coefficients
/// over pre-activations `z_j`, using the sound side of each relaxation.
///
/// For a *lower* bound expression, positive coefficients take the ReLU's
/// lower linear bound and negative ones its upper bound (and vice versa
/// for an upper bound expression).
fn substitute_relu(a: &mut Matrix, c: &mut [f64], relax: &[ReluRelaxation], lower: bool) {
    for (s, cs) in c.iter_mut().enumerate() {
        let row = a.row_mut(s);
        let mut const_add = 0.0;
        for (coeff, r) in row.iter_mut().zip(relax) {
            let take_lower = (*coeff >= 0.0) == lower;
            if take_lower {
                *coeff *= r.lower_slope;
            } else {
                const_add += *coeff * r.upper_intercept;
                *coeff *= r.upper_slope;
            }
        }
        *cs += const_add;
    }
}

/// Minimum of `coeffs · x` over the box.
fn concretize_min(coeffs: &[f64], region: &InputBox) -> f64 {
    coeffs
        .iter()
        .zip(region.lo().iter().zip(region.hi()))
        .map(|(&w, (&l, &h))| if w >= 0.0 { w * l } else { w * h })
        .sum()
}

/// Maximum of `coeffs · x` over the box.
fn concretize_max(coeffs: &[f64], region: &InputBox) -> f64 {
    coeffs
        .iter()
        .zip(region.lo().iter().zip(region.hi()))
        .map(|(&w, (&l, &h))| if w >= 0.0 { w * h } else { w * l })
        .sum()
}

/// Extracts the candidate counterexample: the box corner minimising the
/// linear lower bound of the most-violated output row.
pub(crate) fn candidate_from(result: &BoundsResult, region: &InputBox) -> Option<Vec<f64>> {
    let out = result.bounds.last()?;
    let (worst_row, _) = out
        .lower
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("bounds are not NaN"))?;
    let coeffs = result.output_lower_coeffs.row(worst_row);
    Some(
        coeffs
            .iter()
            .zip(region.lo().iter().zip(region.hi()))
            .map(|(&w, (&l, &h))| if w >= 0.0 { l } else { h })
            .collect(),
    )
}

/// The DeepPoly verifier: linear relaxation with the adaptive lower slope
/// (or, in [`DeepPoly::planet`] mode, the looser Planet-style relaxation).
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepPoly {
    mode: RelaxMode,
    intersect_ibp: bool,
}

impl Default for DeepPoly {
    fn default() -> Self {
        Self::new()
    }
}

impl DeepPoly {
    /// Creates a DeepPoly verifier (adaptive slopes, IBP-intersected).
    #[must_use]
    pub fn new() -> Self {
        Self {
            mode: RelaxMode::Adaptive,
            intersect_ibp: true,
        }
    }

    /// Creates the deliberately looser Planet-style variant: zero lower
    /// slopes and no interval intersection. Still sound, but with the
    /// larger over-approximation (and hence the larger BaB trees) typical
    /// of earlier-generation verifiers.
    #[must_use]
    pub fn planet() -> Self {
        Self {
            mode: RelaxMode::Zero,
            intersect_ibp: false,
        }
    }
}

impl AppVer for DeepPoly {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        if splits.is_contradictory() {
            return Analysis::infeasible();
        }
        let Some(result) =
            compute_bounds_with(net, region, splits, None, self.mode, self.intersect_ibp)
        else {
            return Analysis::infeasible();
        };
        let out = result.bounds.last().expect("non-empty");
        let p_hat = out.lower.iter().cloned().fold(f64::INFINITY, f64::min);
        let candidate = (p_hat < 0.0)
            .then(|| candidate_from(&result, region))
            .flatten();
        Analysis {
            p_hat,
            candidate,
            bounds: result.bounds,
            infeasible: false,
        }
    }

    fn name(&self) -> &'static str {
        "DeepPoly"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SplitSign;
    use abonn_nn::AffinePair;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// z1 = (x, -x), a = relu(z1), y = a0 + a1 - 0.6 over x in [-1, 1].
    /// The true minimum of y is -0.6 (at x = 0); DeepPoly's relaxation
    /// proves a bound in [-0.6 - slack, -0.6].
    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    fn random_net(seed: u64, dims: &[usize]) -> CanonicalNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
            let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(AffinePair::new(m, b));
        }
        CanonicalNetwork::from_affine_pairs(dims[0], layers)
    }

    #[test]
    fn deeppoly_tightens_over_ibp_on_v_example() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        let ibp = Ibp::new().analyze(&net, &region, &SplitSet::new());
        assert!(dp.p_hat >= ibp.p_hat - 1e-12);
        // DeepPoly cannot prove more than the true minimum −0.6.
        assert!(dp.p_hat <= -0.6 + 1e-9);
    }

    #[test]
    fn splitting_both_branches_verifies_nothing_but_tightens() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        // Pos split on neuron 0 (x >= 0) makes both neurons stable:
        // z0 = x in [0,1] active, z1 = -x in [-1, 0] inactive → y = x - 0.6
        // with exact bounds [-0.6, 0.4].
        let splits = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Pos);
        let a = DeepPoly::new().analyze(&net, &region, &splits);
        assert!((a.p_hat + 0.6).abs() < 1e-9, "p_hat = {}", a.p_hat);
    }

    #[test]
    fn candidate_minimises_relaxed_output() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let a = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        let cand = a.candidate.expect("negative p_hat gives candidate");
        assert!(region.contains(&cand, 1e-12));
    }

    #[test]
    fn verified_region_has_no_candidate() {
        // y = relu(x) + 1 > 0 always.
        let net = CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::identity(1), vec![0.0]),
                AffinePair::new(Matrix::identity(1), vec![1.0]),
            ],
        );
        let a = DeepPoly::new().analyze(
            &net,
            &InputBox::new(vec![-1.0], vec![1.0]),
            &SplitSet::new(),
        );
        assert!(a.p_hat > 0.0);
        assert!(a.candidate.is_none());
        assert!(a.verified());
    }

    #[test]
    fn soundness_on_random_networks() {
        for seed in 0..5 {
            let net = random_net(seed, &[3, 6, 5, 2]);
            let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
            let a = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed + 100);
            for _ in 0..50 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
                let zs = net.preactivations(&x);
                for (lb, z) in a.bounds.iter().zip(&zs) {
                    for (i, &zi) in z.iter().enumerate() {
                        assert!(
                            zi >= lb.lower[i] - 1e-7 && zi <= lb.upper[i] + 1e-7,
                            "seed {seed}: z = {zi} outside [{}, {}]",
                            lb.lower[i],
                            lb.upper[i]
                        );
                    }
                }
                let y = net.forward(&x);
                let min_y = y.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(
                    a.p_hat <= min_y + 1e-7,
                    "p_hat {} above margin {min_y}",
                    a.p_hat
                );
            }
        }
    }

    #[test]
    fn deeppoly_dominates_ibp_on_random_networks() {
        for seed in 10..16 {
            let net = random_net(seed, &[4, 8, 8, 3]);
            let region = InputBox::new(vec![-0.3; 4], vec![0.3; 4]);
            let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let ibp = Ibp::new().analyze(&net, &region, &SplitSet::new());
            assert!(dp.p_hat >= ibp.p_hat - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn split_children_bounds_within_parent() {
        let net = random_net(42, &[3, 6, 4, 2]);
        let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
        let root = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        let unstable = root.unstable_neurons(&SplitSet::new());
        assert!(!unstable.is_empty(), "need an unstable neuron for the test");
        let n = unstable[0];
        for sign in [SplitSign::Pos, SplitSign::Neg] {
            let child = DeepPoly::new().analyze(&net, &region, &SplitSet::new().with(n, sign));
            if !child.infeasible {
                // Splitting only adds constraints, so the child's bound can
                // only improve (increase).
                assert!(child.p_hat >= root.p_hat - 1e-9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// p̂ must lower-bound the concrete margin for random nets, boxes,
        /// and sampled points.
        #[test]
        fn p_hat_is_a_sound_lower_bound(
            seed in 0u64..200,
            half_width in 0.05..0.6_f64,
        ) {
            let net = random_net(seed, &[3, 5, 4, 2]);
            let region = InputBox::new(vec![-half_width; 3], vec![half_width; 3]);
            let a = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xFFFF);
            for _ in 0..20 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-half_width..half_width)).collect();
                let y = net.forward(&x);
                let min_y = y.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(a.p_hat <= min_y + 1e-7);
            }
        }
    }
}
