//! DeepPoly/CROWN-style linear-relaxation bound propagation with split
//! constraints.
//!
//! For each affine stage the engine back-substitutes a pair of linear
//! expressions (a lower and an upper bound on the stage's pre-activations)
//! through all earlier ReLU relaxations down to the input, then
//! concretises them over the input box. Pre-activation bounds are
//! intersected with interval propagation (so the result is never looser
//! than [`Ibp`](crate::Ibp)) and tightened by the sub-problem's split
//! constraints before the stage's own ReLU relaxation is formed.

use crate::arena::{ArenaLease, BoundArena};
use crate::cache::{BoundComputeStats, BoundPrefix, CachedAnalysis};
use crate::ibp::Ibp;
use crate::relax::{apply_split, ReluRelaxation};
use crate::types::{Analysis, AppVer, InputBox, LayerBounds, NeuronId, SplitSet};
use abonn_nn::CanonicalNetwork;
use abonn_tensor::Matrix;
use std::sync::Arc;

/// Intermediate result of a full bound computation, including everything
/// needed to extract candidates and to re-run with different α slopes.
#[derive(Debug, Clone)]
pub(crate) struct BoundsResult {
    /// Pre-activation bounds per stage (post split-clamp).
    pub bounds: Vec<LayerBounds>,
    /// Coefficients of the linear lower bound of the *output* stage over
    /// the input (one row per output); used to extract the box corner that
    /// minimises the relaxed output.
    pub output_lower_coeffs: Matrix,
}

/// Per-stage, per-neuron lower-relaxation slopes in `[0, 1]`.
pub(crate) type AlphaAssignment = Vec<Vec<f64>>;

/// Runs the backward-substitution analysis.
///
/// `alphas` overrides the lower-relaxation slope of unstable neurons; when
/// `None` the DeepPoly adaptive slope is used. Returns `None` when a split
/// constraint makes the region infeasible.
pub(crate) fn compute_bounds(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
    alphas: Option<&AlphaAssignment>,
) -> Option<BoundsResult> {
    compute_bounds_with(net, region, splits, alphas, RelaxMode::Adaptive, true)
}

/// Lower-relaxation slope policy for unstable neurons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RelaxMode {
    /// DeepPoly's area-adaptive slope (`1` when `u ≥ −l`, else `0`).
    #[default]
    Adaptive,
    /// Planet-style zero lower bound (`a ≥ 0` only) — markedly looser,
    /// producing the larger, bushier BaB trees typical of weaker
    /// relaxations.
    Zero,
}

/// Full-control variant of [`compute_bounds`]: slope policy and whether to
/// intersect with interval propagation.
pub(crate) fn compute_bounds_with(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
    alphas: Option<&AlphaAssignment>,
    mode: RelaxMode,
    intersect_ibp: bool,
) -> Option<BoundsResult> {
    let mut stats = BoundComputeStats::default();
    compute_bounds_engine(
        net,
        region,
        splits,
        alphas,
        mode,
        intersect_ibp,
        None,
        false,
        &mut stats,
    )
    .map(|out| out.result)
}

/// Result of one [`compute_bounds_engine`] call.
pub(crate) struct EngineOutput {
    pub result: BoundsResult,
    /// Reusable prefix for child sub-problems (requested + supported).
    pub prefix: Option<Arc<BoundPrefix>>,
}

/// The incremental bounding engine behind every DeepPoly-style pass.
///
/// When `parent` holds a [`BoundPrefix`] produced under the same
/// relaxation configuration, layers strictly below the first diverging
/// split layer are served from the cache and only the suffix is re-run —
/// with the *exact* from-scratch loop body, so results are bit-for-bit
/// identical to `parent = None`. `alphas` overrides disable reuse (the
/// cached relaxations were built without them). Work performed/avoided is
/// accumulated into `stats`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_bounds_engine(
    net: &CanonicalNetwork,
    region: &InputBox,
    splits: &SplitSet,
    alphas: Option<&AlphaAssignment>,
    mode: RelaxMode,
    intersect_ibp: bool,
    parent: Option<&Arc<BoundPrefix>>,
    want_prefix: bool,
    stats: &mut BoundComputeStats,
) -> Option<EngineOutput> {
    let num_layers = net.num_layers();
    // A parent prefix is only sound under the same relaxation
    // configuration, with no slope overrides, and when it covers the
    // whole network.
    let parent = parent.filter(|p| {
        alphas.is_none()
            && p.mode == mode
            && p.intersect_ibp == intersect_ibp
            && p.bounds.len() == num_layers
    });

    // First layer whose relaxation may differ from the cached pass. The
    // output stage is always recomputed so `output_lower_coeffs` is
    // rebuilt by the same code path regardless of where splits land.
    let start = match parent {
        None => 0,
        Some(p) => match p.splits.first_divergence(splits) {
            Some(layer) => layer.min(num_layers - 1),
            None => {
                // Identical split constraints: the cached pass answers
                // the whole query.
                stats.layers_reused += num_layers;
                return Some(EngineOutput {
                    result: BoundsResult {
                        bounds: p.bounds.clone(),
                        output_lower_coeffs: p.output_lower_coeffs.clone(),
                    },
                    prefix: Some(Arc::clone(p)),
                });
            }
        },
    };

    let ibp_bounds = match parent {
        Some(p) if start > 0 => Ibp::propagate_from(net, region, splits, &p.ibp[..start])?,
        _ => Ibp::propagate(net, region, splits)?,
    };

    let mut bounds: Vec<LayerBounds> = Vec::with_capacity(num_layers);
    let mut relaxations: Vec<Vec<ReluRelaxation>> = Vec::with_capacity(num_layers - 1);
    if let Some(p) = parent {
        bounds.extend_from_slice(&p.bounds[..start]);
        relaxations.extend_from_slice(&p.relax[..start]);
        stats.layers_reused += start;
    }

    // Leased, not allocated: the thread's arena holds every scratch
    // buffer back-substitution needs, sized once per network. The RAII
    // lease also covers the infeasible `return None` below.
    let mut lease = ArenaLease::take();
    let scratch: &mut BoundArena = &mut lease;
    let mut out_low: Option<Matrix> = None;

    for k in start..num_layers {
        stats.layers_recomputed += 1;
        stats.backsub_steps += k;
        back_substitute(net, k, &relaxations, scratch, stats);
        let n = net.layers()[k].out_dim();
        let mut lo = vec![0.0; n];
        let mut hi = vec![0.0; n];
        for s in 0..n {
            lo[s] = concretize_min(scratch.lo_a.row(s), region) + scratch.lo_c[s];
            hi[s] = concretize_max(scratch.hi_a.row(s), region) + scratch.hi_c[s];
        }
        // Intersect with IBP so DeepPoly never reports looser bounds
        // (skipped in the deliberately-loose Planet mode).
        for s in 0..n {
            if intersect_ibp {
                lo[s] = lo[s].max(ibp_bounds[k].lower[s]);
                hi[s] = hi[s].min(ibp_bounds[k].upper[s]);
            } else {
                lo[s] = lo[s].max(ibp_bounds[k].lower[s].min(-1e30));
                hi[s] = hi[s].min(ibp_bounds[k].upper[s].max(1e30));
            }
            // Numerical guard: never let the pair invert from round-off.
            if lo[s] > hi[s] && lo[s] - hi[s] < 1e-9 {
                let mid = 0.5 * (lo[s] + hi[s]);
                lo[s] = mid;
                hi[s] = mid;
            }
        }

        if k + 1 < num_layers {
            // Split clamping + infeasibility detection, then relaxations.
            let mut relax = Vec::with_capacity(n);
            for s in 0..n {
                let sign = splits.sign_of(NeuronId::new(k, s));
                let (l, u) = apply_split(lo[s], hi[s], sign);
                if l > u + 1e-12 {
                    return None;
                }
                lo[s] = l;
                hi[s] = u.max(l);
                let alpha = match (alphas, mode) {
                    (Some(a), _) => a[k][s].clamp(0.0, 1.0),
                    (None, RelaxMode::Adaptive) => ReluRelaxation::deeppoly_alpha(lo[s], hi[s]),
                    (None, RelaxMode::Zero) => 0.0,
                };
                relax.push(ReluRelaxation::with_alpha(lo[s], hi[s], alpha));
            }
            relaxations.push(relax);
        } else {
            out_low = Some(scratch.lo_a.clone());
        }
        bounds.push(LayerBounds::new(lo, hi));
    }

    let output_lower_coeffs = out_low.expect("loop always reaches the output stage");
    let prefix = if want_prefix && alphas.is_none() {
        Some(Arc::new(BoundPrefix {
            splits: splits.clone(),
            mode,
            intersect_ibp,
            ibp: ibp_bounds,
            bounds: bounds.clone(),
            relax: relaxations,
            output_lower_coeffs: output_lower_coeffs.clone(),
            lp: None,
        }))
    } else {
        None
    };
    Some(EngineOutput {
        result: BoundsResult {
            bounds,
            output_lower_coeffs,
        },
        prefix,
    })
}

/// Back-substitutes stage `k`'s pre-activation expressions down to the
/// input: coefficients land in `scratch.lo_a` / `scratch.hi_a`, the
/// constant terms in `scratch.lo_c` / `scratch.hi_c`.
///
/// Each `A ← A·W, c ← c + A·b` step runs as one fused kernel into a swap
/// buffer — no per-step allocation, every buffer living in the leased
/// [`BoundArena`] — with the same per-element summation order as the
/// original dot + matmul formulation.
///
/// Stable-neuron sparsity: neurons whose relaxation is identically zero
/// (slopes and intercept all `0.0`) would only multiply everything by
/// zero, so both the slope substitution and the fused kernel skip them
/// outright (the kernel mask drops the stale coefficient column); neurons
/// with the identity relaxation `(1, 1, 0)` skip the slope substitution
/// only. Under round-to-nearest both skips are bit-for-bit identical to
/// the dense computation: multiplying by `1.0` is exact, and the elided
/// terms are all `±0.0` additions into accumulators that start at `+0.0`
/// and therefore can never hold `-0.0`. As splits deepen, most neurons
/// become stable and the effective substitution width collapses —
/// `stats.backsub_rows_skipped` counts the elided rows.
///
/// Block sparsity: the per-neuron mask is condensed once per step into
/// maximal unmasked column runs; on the default substrate the fused
/// kernel walks those runs ([`Matrix::fused_affine_into_runs`]), skipping
/// whole masked blocks structurally instead of testing every column. The
/// covered columns are visited in the same ascending order either way, so
/// both substrates agree bit-for-bit; `stats.blocks_skipped` counts the
/// elided gaps on both.
fn back_substitute(
    net: &CanonicalNetwork,
    k: usize,
    relaxations: &[Vec<ReluRelaxation>],
    scratch: &mut BoundArena,
    stats: &mut BoundComputeStats,
) {
    let stage = &net.layers()[k];
    scratch.lo_a.copy_from(&stage.weight);
    scratch.hi_a.copy_from(&stage.weight);
    scratch.lo_c.clear();
    scratch.lo_c.extend_from_slice(&stage.bias);
    scratch.hi_c.clear();
    scratch.hi_c.extend_from_slice(&stage.bias);

    for j in (0..k).rev() {
        let relax = &relaxations[j];
        scratch.skip.clear();
        scratch.ident.clear();
        let mut stable = 0usize;
        for r in relax {
            let zero = r.lower_slope == 0.0 && r.upper_slope == 0.0 && r.upper_intercept == 0.0;
            let ident = r.lower_slope == 1.0 && r.upper_slope == 1.0 && r.upper_intercept == 0.0;
            scratch.skip.push(zero);
            scratch.ident.push(ident);
            stable += usize::from(zero || ident);
        }
        // One lower and one upper substitution per step; both stable
        // kinds (zero and identity relaxation) elide their substitution
        // row entirely.
        stats.backsub_rows_total += 2 * relax.len();
        stats.backsub_rows_skipped += 2 * stable;
        // Condense the mask into its maximal unmasked runs (shared by the
        // lower and upper kernel calls); the gap count feeds the
        // substrate-invariant `blocks_skipped` counter on both paths.
        scratch.runs.clear();
        let mut run_start = None;
        for (t, &sk) in scratch.skip.iter().enumerate() {
            match (sk, run_start) {
                (false, None) => run_start = Some(t),
                (true, Some(s)) => {
                    scratch.runs.push((s, t));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            scratch.runs.push((s, scratch.skip.len()));
        }
        let mut gap_blocks = 0usize;
        let mut in_gap = false;
        for &sk in &scratch.skip {
            gap_blocks += usize::from(sk && !in_gap);
            in_gap = sk;
        }
        stats.blocks_skipped += 2 * gap_blocks;
        substitute_relu(
            &mut scratch.lo_a,
            &mut scratch.lo_c,
            relax,
            true,
            &scratch.skip,
            &scratch.ident,
        );
        substitute_relu(
            &mut scratch.hi_a,
            &mut scratch.hi_c,
            relax,
            false,
            &scratch.skip,
            &scratch.ident,
        );
        let prev = &net.layers()[j];
        // Expression over z_j = W_j a_{j-1} + b_j → over a_{j-1}.
        if abonn_tensor::reference_kernels() {
            scratch.lo_a.fused_affine_into_masked(
                &prev.weight,
                &prev.bias,
                &mut scratch.lo_c,
                &mut scratch.lo_next,
                &scratch.skip,
            );
        } else {
            scratch.lo_a.fused_affine_into_runs(
                &prev.weight,
                &prev.bias,
                &mut scratch.lo_c,
                &mut scratch.lo_next,
                &scratch.runs,
            );
        }
        std::mem::swap(&mut scratch.lo_a, &mut scratch.lo_next);
        if abonn_tensor::reference_kernels() {
            scratch.hi_a.fused_affine_into_masked(
                &prev.weight,
                &prev.bias,
                &mut scratch.hi_c,
                &mut scratch.hi_next,
                &scratch.skip,
            );
        } else {
            scratch.hi_a.fused_affine_into_runs(
                &prev.weight,
                &prev.bias,
                &mut scratch.hi_c,
                &mut scratch.hi_next,
                &scratch.runs,
            );
        }
        std::mem::swap(&mut scratch.hi_a, &mut scratch.hi_next);
        // Length-based footprint after the swaps, when every buffer's
        // logical size is determined by this node's own computation
        // (never by stale contents from a previous lease).
        stats.arena_bytes_peak = stats.arena_bytes_peak.max(scratch.live_bytes());
    }
}

/// Replaces coefficients over post-activations `a_j` with coefficients
/// over pre-activations `z_j`, using the sound side of each relaxation.
///
/// For a *lower* bound expression, positive coefficients take the ReLU's
/// lower linear bound and negative ones its upper bound (and vice versa
/// for an upper bound expression). Neurons flagged in `skip` (zero
/// relaxation; their stale coefficients are masked out of the following
/// fused kernel) or `ident` (identity relaxation) are passed over — see
/// [`back_substitute`] for why this is bit-exact.
fn substitute_relu(
    a: &mut Matrix,
    c: &mut [f64],
    relax: &[ReluRelaxation],
    lower: bool,
    skip: &[bool],
    ident: &[bool],
) {
    for (s, cs) in c.iter_mut().enumerate() {
        let row = a.row_mut(s);
        let mut const_add = 0.0;
        for (t, (coeff, r)) in row.iter_mut().zip(relax).enumerate() {
            if skip[t] || ident[t] {
                continue;
            }
            let take_lower = (*coeff >= 0.0) == lower;
            if take_lower {
                *coeff *= r.lower_slope;
            } else {
                const_add += *coeff * r.upper_intercept;
                *coeff *= r.upper_slope;
            }
        }
        *cs += const_add;
    }
}

/// Minimum of `coeffs · x` over the box.
fn concretize_min(coeffs: &[f64], region: &InputBox) -> f64 {
    coeffs
        .iter()
        .zip(region.lo().iter().zip(region.hi()))
        .map(|(&w, (&l, &h))| if w >= 0.0 { w * l } else { w * h })
        .sum()
}

/// Maximum of `coeffs · x` over the box.
fn concretize_max(coeffs: &[f64], region: &InputBox) -> f64 {
    coeffs
        .iter()
        .zip(region.lo().iter().zip(region.hi()))
        .map(|(&w, (&l, &h))| if w >= 0.0 { w * h } else { w * l })
        .sum()
}

/// Extracts the candidate counterexample: the box corner minimising the
/// linear lower bound of the most-violated output row.
pub(crate) fn candidate_from(result: &BoundsResult, region: &InputBox) -> Option<Vec<f64>> {
    let out = result.bounds.last()?;
    let (worst_row, _) = out
        .lower
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("bounds are not NaN"))?;
    let coeffs = result.output_lower_coeffs.row(worst_row);
    Some(
        coeffs
            .iter()
            .zip(region.lo().iter().zip(region.hi()))
            .map(|(&w, (&l, &h))| if w >= 0.0 { l } else { h })
            .collect(),
    )
}

/// The DeepPoly verifier: linear relaxation with the adaptive lower slope
/// (or, in [`DeepPoly::planet`] mode, the looser Planet-style relaxation).
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepPoly {
    mode: RelaxMode,
    intersect_ibp: bool,
}

impl Default for DeepPoly {
    fn default() -> Self {
        Self::new()
    }
}

impl DeepPoly {
    /// Creates a DeepPoly verifier (adaptive slopes, IBP-intersected).
    #[must_use]
    pub fn new() -> Self {
        Self {
            mode: RelaxMode::Adaptive,
            intersect_ibp: true,
        }
    }

    /// Creates the deliberately looser Planet-style variant: zero lower
    /// slopes and no interval intersection. Still sound, but with the
    /// larger over-approximation (and hence the larger BaB trees) typical
    /// of earlier-generation verifiers.
    #[must_use]
    pub fn planet() -> Self {
        Self {
            mode: RelaxMode::Zero,
            intersect_ibp: false,
        }
    }

    /// Shared implementation behind [`AppVer::analyze`] and
    /// [`AppVer::analyze_cached`]: one engine call, so both entry points
    /// produce bit-for-bit the same analysis.
    fn run(
        &self,
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
        parent: Option<&Arc<BoundPrefix>>,
        want_prefix: bool,
    ) -> CachedAnalysis {
        let mut stats = BoundComputeStats::default();
        if splits.is_contradictory() {
            return CachedAnalysis::scratch(Analysis::infeasible());
        }
        let Some(out) = compute_bounds_engine(
            net,
            region,
            splits,
            None,
            self.mode,
            self.intersect_ibp,
            parent,
            want_prefix,
            &mut stats,
        ) else {
            return CachedAnalysis {
                analysis: Analysis::infeasible(),
                prefix: None,
                stats,
            };
        };
        let result = out.result;
        let last = result.bounds.last().expect("non-empty");
        let p_hat = last.lower.iter().cloned().fold(f64::INFINITY, f64::min);
        let candidate = (p_hat < 0.0)
            .then(|| candidate_from(&result, region))
            .flatten();
        CachedAnalysis {
            analysis: Analysis {
                p_hat,
                candidate,
                bounds: result.bounds,
                infeasible: false,
            },
            prefix: out.prefix,
            stats,
        }
    }
}

impl AppVer for DeepPoly {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        self.run(net, region, splits, None, false).analysis
    }

    fn analyze_cached(
        &self,
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
        parent: Option<&Arc<BoundPrefix>>,
    ) -> CachedAnalysis {
        self.run(net, region, splits, parent, true)
    }

    fn name(&self) -> &'static str {
        "DeepPoly"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SplitSign;
    use abonn_nn::AffinePair;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// z1 = (x, -x), a = relu(z1), y = a0 + a1 - 0.6 over x in [-1, 1].
    /// The true minimum of y is -0.6 (at x = 0); DeepPoly's relaxation
    /// proves a bound in [-0.6 - slack, -0.6].
    fn v_net() -> CanonicalNetwork {
        CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
                AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
            ],
        )
    }

    fn random_net(seed: u64, dims: &[usize]) -> CanonicalNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
            let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(AffinePair::new(m, b));
        }
        CanonicalNetwork::from_affine_pairs(dims[0], layers)
    }

    #[test]
    fn deeppoly_tightens_over_ibp_on_v_example() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        let ibp = Ibp::new().analyze(&net, &region, &SplitSet::new());
        assert!(dp.p_hat >= ibp.p_hat - 1e-12);
        // DeepPoly cannot prove more than the true minimum −0.6.
        assert!(dp.p_hat <= -0.6 + 1e-9);
    }

    #[test]
    fn splitting_both_branches_verifies_nothing_but_tightens() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        // Pos split on neuron 0 (x >= 0) makes both neurons stable:
        // z0 = x in [0,1] active, z1 = -x in [-1, 0] inactive → y = x - 0.6
        // with exact bounds [-0.6, 0.4].
        let splits = SplitSet::new().with(NeuronId::new(0, 0), SplitSign::Pos);
        let a = DeepPoly::new().analyze(&net, &region, &splits);
        assert!((a.p_hat + 0.6).abs() < 1e-9, "p_hat = {}", a.p_hat);
    }

    #[test]
    fn candidate_minimises_relaxed_output() {
        let net = v_net();
        let region = InputBox::new(vec![-1.0], vec![1.0]);
        let a = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        let cand = a.candidate.expect("negative p_hat gives candidate");
        assert!(region.contains(&cand, 1e-12));
    }

    #[test]
    fn verified_region_has_no_candidate() {
        // y = relu(x) + 1 > 0 always.
        let net = CanonicalNetwork::from_affine_pairs(
            1,
            vec![
                AffinePair::new(Matrix::identity(1), vec![0.0]),
                AffinePair::new(Matrix::identity(1), vec![1.0]),
            ],
        );
        let a = DeepPoly::new().analyze(
            &net,
            &InputBox::new(vec![-1.0], vec![1.0]),
            &SplitSet::new(),
        );
        assert!(a.p_hat > 0.0);
        assert!(a.candidate.is_none());
        assert!(a.verified());
    }

    #[test]
    fn soundness_on_random_networks() {
        for seed in 0..5 {
            let net = random_net(seed, &[3, 6, 5, 2]);
            let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
            let a = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed + 100);
            for _ in 0..50 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
                let zs = net.preactivations(&x);
                for (lb, z) in a.bounds.iter().zip(&zs) {
                    for (i, &zi) in z.iter().enumerate() {
                        assert!(
                            zi >= lb.lower[i] - 1e-7 && zi <= lb.upper[i] + 1e-7,
                            "seed {seed}: z = {zi} outside [{}, {}]",
                            lb.lower[i],
                            lb.upper[i]
                        );
                    }
                }
                let y = net.forward(&x);
                let min_y = y.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(
                    a.p_hat <= min_y + 1e-7,
                    "p_hat {} above margin {min_y}",
                    a.p_hat
                );
            }
        }
    }

    #[test]
    fn deeppoly_dominates_ibp_on_random_networks() {
        for seed in 10..16 {
            let net = random_net(seed, &[4, 8, 8, 3]);
            let region = InputBox::new(vec![-0.3; 4], vec![0.3; 4]);
            let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let ibp = Ibp::new().analyze(&net, &region, &SplitSet::new());
            assert!(dp.p_hat >= ibp.p_hat - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn split_children_bounds_within_parent() {
        let net = random_net(42, &[3, 6, 4, 2]);
        let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
        let root = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
        let unstable = root.unstable_neurons(&SplitSet::new());
        assert!(!unstable.is_empty(), "need an unstable neuron for the test");
        let n = unstable[0];
        for sign in [SplitSign::Pos, SplitSign::Neg] {
            let child = DeepPoly::new().analyze(&net, &region, &SplitSet::new().with(n, sign));
            if !child.infeasible {
                // Splitting only adds constraints, so the child's bound can
                // only improve (increase).
                assert!(child.p_hat >= root.p_hat - 1e-9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// p̂ must lower-bound the concrete margin for random nets, boxes,
        /// and sampled points.
        #[test]
        fn p_hat_is_a_sound_lower_bound(
            seed in 0u64..200,
            half_width in 0.05..0.6_f64,
        ) {
            let net = random_net(seed, &[3, 5, 4, 2]);
            let region = InputBox::new(vec![-half_width; 3], vec![half_width; 3]);
            let a = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xFFFF);
            for _ in 0..20 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-half_width..half_width)).collect();
                let y = net.forward(&x);
                let min_y = y.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(a.p_hat <= min_y + 1e-7);
            }
        }
    }
}
