//! ReLU relaxations under (possibly split) pre-activation bounds.

use crate::types::SplitSign;

/// Linear relaxation of one ReLU neuron `a = max(0, z)` over pre-activation
/// bounds `z ∈ [l, u]`:
///
/// * lower: `a ≥ lower_slope · z` (intercept is always zero);
/// * upper: `a ≤ upper_slope · z + upper_intercept`.
///
/// Stable neurons (and split neurons) degenerate to exact linear maps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReluRelaxation {
    /// Slope of the lower linear bound.
    pub lower_slope: f64,
    /// Slope of the upper linear bound.
    pub upper_slope: f64,
    /// Intercept of the upper linear bound.
    pub upper_intercept: f64,
}

impl ReluRelaxation {
    /// Builds the relaxation for bounds `[l, u]` (already tightened by any
    /// split constraint) with lower slope `alpha` for the unstable case.
    ///
    /// `alpha` is only consulted when the neuron is unstable
    /// (`l < 0 < u`); DeepPoly's adaptive choice is
    /// [`ReluRelaxation::deeppoly_alpha`].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    #[must_use]
    pub fn with_alpha(l: f64, u: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        if l >= 0.0 {
            // Stable active: a = z exactly.
            Self {
                lower_slope: 1.0,
                upper_slope: 1.0,
                upper_intercept: 0.0,
            }
        } else if u <= 0.0 {
            // Stable inactive: a = 0 exactly.
            Self {
                lower_slope: 0.0,
                upper_slope: 0.0,
                upper_intercept: 0.0,
            }
        } else {
            // Unstable: triangle upper bound, slope-alpha lower bound.
            let s = u / (u - l);
            Self {
                lower_slope: alpha,
                upper_slope: s,
                upper_intercept: -s * l,
            }
        }
    }

    /// DeepPoly's adaptive lower-slope choice: `1` when `u ≥ −l` (the
    /// identity bound wastes less area), else `0`.
    #[must_use]
    pub fn deeppoly_alpha(l: f64, u: f64) -> f64 {
        if u >= -l {
            1.0
        } else {
            0.0
        }
    }

    /// The DeepPoly relaxation for bounds `[l, u]`.
    #[must_use]
    pub fn deeppoly(l: f64, u: f64) -> Self {
        Self::with_alpha(l, u, Self::deeppoly_alpha(l, u))
    }

    /// Evaluates the lower linear bound at `z`.
    #[must_use]
    pub fn lower_at(&self, z: f64) -> f64 {
        self.lower_slope * z
    }

    /// Evaluates the upper linear bound at `z`.
    #[must_use]
    pub fn upper_at(&self, z: f64) -> f64 {
        self.upper_slope * z + self.upper_intercept
    }
}

/// Tightens pre-activation bounds `[l, u]` with a split constraint.
///
/// `Pos` intersects with `[0, ∞)`, `Neg` with `(−∞, 0]`. The result may be
/// empty (`l > u`), which signals an infeasible sub-problem.
#[must_use]
pub fn apply_split(l: f64, u: f64, sign: Option<SplitSign>) -> (f64, f64) {
    match sign {
        None => (l, u),
        Some(SplitSign::Pos) => (l.max(0.0), u),
        Some(SplitSign::Neg) => (l, u.min(0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stable_active_is_identity() {
        let r = ReluRelaxation::deeppoly(0.5, 2.0);
        assert_eq!(r.lower_at(1.0), 1.0);
        assert_eq!(r.upper_at(1.0), 1.0);
    }

    #[test]
    fn stable_inactive_is_zero() {
        let r = ReluRelaxation::deeppoly(-2.0, -0.5);
        assert_eq!(r.lower_at(-1.0), 0.0);
        assert_eq!(r.upper_at(-1.0), 0.0);
    }

    #[test]
    fn unstable_upper_bound_passes_through_corners() {
        let (l, u) = (-1.0, 3.0);
        let r = ReluRelaxation::deeppoly(l, u);
        // Upper bound is the chord from (l, 0) to (u, u).
        assert!((r.upper_at(l) - 0.0).abs() < 1e-12);
        assert!((r.upper_at(u) - u).abs() < 1e-12);
    }

    #[test]
    fn adaptive_alpha_switches_at_symmetry() {
        assert_eq!(ReluRelaxation::deeppoly_alpha(-1.0, 2.0), 1.0);
        assert_eq!(ReluRelaxation::deeppoly_alpha(-2.0, 1.0), 0.0);
        assert_eq!(ReluRelaxation::deeppoly_alpha(-1.0, 1.0), 1.0);
    }

    #[test]
    fn split_tightening() {
        assert_eq!(apply_split(-1.0, 2.0, Some(SplitSign::Pos)), (0.0, 2.0));
        assert_eq!(apply_split(-1.0, 2.0, Some(SplitSign::Neg)), (-1.0, 0.0));
        assert_eq!(apply_split(-1.0, 2.0, None), (-1.0, 2.0));
        // Split can empty the interval — callers must detect this.
        let (l, u) = apply_split(0.5, 2.0, Some(SplitSign::Neg));
        assert!(l > u);
    }

    proptest! {
        /// The relaxation must sandwich the true ReLU on the whole interval.
        #[test]
        fn relaxation_is_sound(
            l in -5.0..0.0_f64,
            width in 0.01..10.0_f64,
            alpha in 0.0..1.0_f64,
            t in 0.0..1.0_f64,
        ) {
            let u = l + width;
            let r = ReluRelaxation::with_alpha(l, u, alpha);
            let z = l + t * (u - l);
            let relu = z.max(0.0);
            prop_assert!(r.lower_at(z) <= relu + 1e-9,
                "lower {} above relu {relu} at z={z}", r.lower_at(z));
            if u > 0.0 && l < 0.0 {
                prop_assert!(r.upper_at(z) >= relu - 1e-9,
                    "upper {} below relu {relu} at z={z}", r.upper_at(z));
            }
        }
    }
}
