//! Per-thread scratch arena for back-substitution.
//!
//! Every bound computation needs the same six scratch buffers (four
//! coefficient matrices, two constant vectors) plus the stable-neuron
//! masks and the block-sparsity run index. Allocating them per node costs
//! a malloc/free pair per analysis on the BaB hot path, so this module
//! keeps one [`BoundArena`] parked per worker thread: an analysis leases
//! it, the buffers grow to the network's widest layer once, and every
//! later node on that thread reuses the same allocations (`copy_from` /
//! `resize_zeroed` / `clear` reset length, not capacity).
//!
//! The lease is RAII ([`ArenaLease`] returns the arena to the thread slot
//! on drop), so early exits — notably the `return None` when a split
//! makes a node infeasible — still recycle the arena. Buffer *contents*
//! are never trusted across leases: every consumer fully overwrites what
//! it reads, which the reuse-vs-fresh-thread equivalence tests pin down.

use abonn_tensor::Matrix;
use std::cell::Cell;
use std::ops::{Deref, DerefMut};

/// Scratch buffers for one back-substitution pass. All fields are
/// length-reset (never content-trusted) at each use site.
#[derive(Default)]
pub(crate) struct BoundArena {
    /// Lower/upper bound coefficients of the stage being substituted.
    pub(crate) lo_a: Matrix,
    pub(crate) hi_a: Matrix,
    /// Swap targets of the fused affine step.
    pub(crate) lo_next: Matrix,
    pub(crate) hi_next: Matrix,
    /// Per-neuron "relaxation is identically zero" mask for the current
    /// substitution step (inactive or split-fixed-inactive neurons).
    pub(crate) skip: Vec<bool>,
    /// Per-neuron "relaxation is the identity" mask (active or
    /// split-fixed-active neurons) — substitution is a no-op there.
    pub(crate) ident: Vec<bool>,
    /// Maximal unmasked column intervals of `skip` — the block index the
    /// block-sparse fused kernel consumes.
    pub(crate) runs: Vec<(usize, usize)>,
    /// Constant terms of the lower/upper bound expressions.
    pub(crate) lo_c: Vec<f64>,
    pub(crate) hi_c: Vec<f64>,
}

impl BoundArena {
    /// Logical size of the six float buffers in bytes — the
    /// machine-independent footprint `arena_bytes_peak` tracks. Based on
    /// lengths, never capacities, so the value is identical whether the
    /// arena is fresh or recycled.
    pub(crate) fn live_bytes(&self) -> usize {
        8 * (self.lo_a.as_slice().len()
            + self.hi_a.as_slice().len()
            + self.lo_next.as_slice().len()
            + self.hi_next.as_slice().len()
            + self.lo_c.len()
            + self.hi_c.len())
    }
}

thread_local! {
    /// One parked arena per worker thread; `None` while leased out (a
    /// nested lease, which never happens today, would simply allocate a
    /// second arena and park the larger-capacity one last).
    static POOL: Cell<Option<Box<BoundArena>>> = const { Cell::new(None) };
}

/// RAII lease on the thread's [`BoundArena`]; dereferences to the arena
/// and parks it back on drop (including early-exit paths).
pub(crate) struct ArenaLease {
    arena: Option<Box<BoundArena>>,
}

impl ArenaLease {
    /// Takes the thread's parked arena, or allocates a fresh one on first
    /// use.
    pub(crate) fn take() -> Self {
        let arena = POOL.with(Cell::take).unwrap_or_default();
        Self { arena: Some(arena) }
    }
}

impl Deref for ArenaLease {
    type Target = BoundArena;

    fn deref(&self) -> &BoundArena {
        self.arena.as_deref().expect("arena present until drop")
    }
}

impl DerefMut for ArenaLease {
    fn deref_mut(&mut self) -> &mut BoundArena {
        self.arena.as_deref_mut().expect("arena present until drop")
    }
}

impl Drop for ArenaLease {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            POOL.with(|slot| slot.set(Some(arena)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_the_thread_arena() {
        {
            let mut lease = ArenaLease::take();
            lease.lo_c.clear();
            lease.lo_c.resize(100, 1.5);
        }
        // The next lease on this thread sees the same allocation (length
        // intact because nothing reset it yet) — proving drop parked it.
        let lease = ArenaLease::take();
        assert_eq!(lease.lo_c.len(), 100);
    }

    #[test]
    fn live_bytes_tracks_lengths_not_capacities() {
        let mut arena = BoundArena::default();
        assert_eq!(arena.live_bytes(), 0);
        arena.lo_c.reserve(1024);
        assert_eq!(arena.live_bytes(), 0);
        arena.lo_c.resize(3, 0.0);
        arena.lo_a.resize_zeroed(2, 5);
        assert_eq!(arena.live_bytes(), 8 * (3 + 10));
    }
}
