//! Shared types of the verifier substrate.

use abonn_nn::CanonicalNetwork;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An axis-aligned input region `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl InputBox {
    /// Creates a box.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors differ in length or `lo[i] > hi[i]` for
    /// some `i`.
    #[must_use]
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "InputBox::new: length mismatch");
        for (i, (l, h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "InputBox::new: lo[{i}] = {l} > hi[{i}] = {h}");
        }
        Self { lo, hi }
    }

    /// The L∞ ball of radius `eps` around `center`, clamped to `[min, max]`.
    #[must_use]
    pub fn linf_ball(center: &[f64], eps: f64, min: f64, max: f64) -> Self {
        let lo = center.iter().map(|&v| (v - eps).max(min)).collect();
        let hi = center.iter().map(|&v| (v + eps).min(max)).collect();
        Self::new(lo, hi)
    }

    /// Dimensionality of the box.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[must_use]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[must_use]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Component-wise midpoint.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Returns `true` if `x` lies inside the box (within `tol`).
    #[must_use]
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&v, (&l, &h))| v >= l - tol && v <= h + tol)
    }
}

/// Which half-space a ReLU split pins the pre-activation to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SplitSign {
    /// `r⁺`: the ReLU input is constrained nonnegative (active phase).
    Pos,
    /// `r⁻`: the ReLU input is constrained nonpositive (inactive phase).
    Neg,
}

impl SplitSign {
    /// The opposite sign.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            SplitSign::Pos => SplitSign::Neg,
            SplitSign::Neg => SplitSign::Pos,
        }
    }
}

impl fmt::Display for SplitSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitSign::Pos => f.write_str("+"),
            SplitSign::Neg => f.write_str("-"),
        }
    }
}

/// Identifies one ReLU neuron: affine stage `layer` (0-based), coordinate
/// `index` of that stage's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NeuronId {
    /// Affine stage index in the canonical network.
    pub layer: usize,
    /// Neuron index within the stage output.
    pub index: usize,
}

impl NeuronId {
    /// Creates a neuron id.
    #[must_use]
    pub fn new(layer: usize, index: usize) -> Self {
        Self { layer, index }
    }
}

impl fmt::Display for NeuronId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r[{}:{}]", self.layer, self.index)
    }
}

/// The sequence `Γ` of ReLU split constraints identifying a BaB
/// sub-problem.
///
/// Internally a map, so a neuron can carry at most one sign; adding the
/// opposite sign for an already-split neuron marks the set contradictory.
///
/// # Examples
///
/// ```
/// use abonn_bound::{NeuronId, SplitSet, SplitSign};
///
/// let root = SplitSet::new();
/// let child = root.with(NeuronId::new(0, 3), SplitSign::Pos);
/// assert_eq!(child.len(), 1);
/// assert_eq!(child.sign_of(NeuronId::new(0, 3)), Some(SplitSign::Pos));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SplitSet {
    splits: BTreeMap<(usize, usize), SplitSign>,
    contradictory: bool,
}

impl SplitSet {
    /// The empty split set (the root problem `ε`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of split constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.splits.len()
    }

    /// Returns `true` for the root (unsplit) problem.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    /// Returns `true` if opposite signs were requested for one neuron.
    #[must_use]
    pub fn is_contradictory(&self) -> bool {
        self.contradictory
    }

    /// The sign assigned to `neuron`, if any.
    #[must_use]
    pub fn sign_of(&self, neuron: NeuronId) -> Option<SplitSign> {
        self.splits.get(&(neuron.layer, neuron.index)).copied()
    }

    /// Returns the split set extended with `neuron → sign`.
    #[must_use]
    pub fn with(&self, neuron: NeuronId, sign: SplitSign) -> Self {
        let mut next = self.clone();
        let key = (neuron.layer, neuron.index);
        match next.splits.insert(key, sign) {
            Some(prev) if prev != sign => next.contradictory = true,
            _ => {}
        }
        next
    }

    /// Iterates over `(neuron, sign)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (NeuronId, SplitSign)> + '_ {
        self.splits
            .iter()
            .map(|(&(layer, index), &sign)| (NeuronId { layer, index }, sign))
    }

    /// The smallest layer on which the two split sets disagree (a
    /// constraint present in one but not the other, or with a different
    /// sign), or `None` when the constraint maps are identical.
    ///
    /// This is the incremental-bounding invalidation point: bounds and
    /// relaxations of layers strictly below the first divergence are
    /// unaffected by the difference and can be reused. Both maps are
    /// ordered by `(layer, index)`, so a single merge-join suffices and
    /// the first mismatch found already has the minimal layer.
    #[must_use]
    pub fn first_divergence(&self, other: &SplitSet) -> Option<usize> {
        let mut a = self.splits.iter();
        let mut b = other.splits.iter();
        let (mut x, mut y) = (a.next(), b.next());
        loop {
            match (x, y) {
                (None, None) => return None,
                (Some((&(layer, _), _)), None) | (None, Some((&(layer, _), _))) => {
                    return Some(layer)
                }
                (Some((ka, sa)), Some((kb, sb))) => {
                    if ka == kb && sa == sb {
                        x = a.next();
                        y = b.next();
                    } else {
                        return Some(ka.0.min(kb.0));
                    }
                }
            }
        }
    }
}

/// Concrete pre-activation bounds of one affine stage.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerBounds {
    /// Per-neuron lower bounds.
    pub lower: Vec<f64>,
    /// Per-neuron upper bounds.
    pub upper: Vec<f64>,
}

impl LayerBounds {
    /// Creates layer bounds.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    #[must_use]
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "LayerBounds: length mismatch");
        Self { lower, upper }
    }

    /// Number of neurons.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Returns `true` when the layer has no neurons.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Returns `true` if some neuron's interval is empty (`l > u`), i.e.
    /// the split constraints are unsatisfiable on this region.
    #[must_use]
    pub fn infeasible(&self, tol: f64) -> bool {
        self.lower
            .iter()
            .zip(&self.upper)
            .any(|(l, u)| *l > *u + tol)
    }
}

/// Result of applying an approximated verifier to a sub-problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The paper's `p̂`: the minimum proved lower bound over the margin
    /// outputs. Positive ⟹ the sub-problem is verified.
    pub p_hat: f64,
    /// Candidate counterexample `x̂` (the relaxation's most-violating
    /// input). Present whenever `p_hat < 0` and the region is feasible.
    pub candidate: Option<Vec<f64>>,
    /// Pre-activation bounds of every affine stage (last = output).
    pub bounds: Vec<LayerBounds>,
    /// `true` when the split constraints are unsatisfiable over the box;
    /// the sub-problem is then vacuously verified.
    pub infeasible: bool,
}

impl Analysis {
    /// An analysis marking the region infeasible (vacuously verified).
    #[must_use]
    pub fn infeasible() -> Self {
        Self {
            p_hat: f64::INFINITY,
            candidate: None,
            bounds: Vec::new(),
            infeasible: true,
        }
    }

    /// Returns `true` if the sub-problem is proved to satisfy the spec.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.infeasible || self.p_hat > 0.0
    }

    /// ReLU neurons that are unstable (bounds straddle zero) and not yet
    /// split — the branching candidates of this sub-problem.
    #[must_use]
    pub fn unstable_neurons(&self, splits: &SplitSet) -> Vec<NeuronId> {
        let mut out = Vec::new();
        if self.bounds.is_empty() {
            return out;
        }
        for (layer, lb) in self.bounds[..self.bounds.len() - 1].iter().enumerate() {
            for (index, (l, u)) in lb.lower.iter().zip(&lb.upper).enumerate() {
                let id = NeuronId::new(layer, index);
                if *l < 0.0 && *u > 0.0 && splits.sign_of(id).is_none() {
                    out.push(id);
                }
            }
        }
        out
    }
}

/// An approximated verifier: the `AppVer` of the paper's Algorithm 1.
///
/// Implementations must be *sound*: if the returned `p_hat` is positive,
/// every input in `region` satisfying the split constraints yields only
/// positive outputs of `net`.
pub trait AppVer: Send + Sync {
    /// Analyzes `net` (in margin form) over `region` under `splits`.
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis;

    /// Like [`analyze`](Self::analyze), but may reuse a `parent` bound
    /// prefix to skip recomputing layers below the first diverging split,
    /// and returns a prefix for this node's own children.
    ///
    /// The contained analysis must be **bit-for-bit identical** to what
    /// `analyze` returns for the same `(net, region, splits)` — caching
    /// may only change how much work is done, never the result. The
    /// default implementation ignores `parent` and computes from scratch.
    fn analyze_cached(
        &self,
        net: &CanonicalNetwork,
        region: &InputBox,
        splits: &SplitSet,
        parent: Option<&std::sync::Arc<crate::cache::BoundPrefix>>,
    ) -> crate::cache::CachedAnalysis {
        let _ = parent;
        crate::cache::CachedAnalysis::scratch(self.analyze(net, region, splits))
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linf_ball_clamps_to_valid_range() {
        let b = InputBox::linf_ball(&[0.05, 0.95], 0.1, 0.0, 1.0);
        for (got, want) in b.lo().iter().zip(&[0.0, 0.85]) {
            assert!((got - want).abs() < 1e-12);
        }
        for (got, want) in b.hi().iter().zip(&[0.15, 1.0]) {
            assert!((got - want).abs() < 1e-12);
        }
        assert!(b.contains(&[0.1, 0.9], 0.0));
        assert!(!b.contains(&[0.5, 0.9], 0.0));
    }

    #[test]
    #[should_panic(expected = "lo[0]")]
    fn inverted_box_panics() {
        let _ = InputBox::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn split_set_tracks_signs_and_contradictions() {
        let n = NeuronId::new(1, 2);
        let s = SplitSet::new().with(n, SplitSign::Pos);
        assert_eq!(s.sign_of(n), Some(SplitSign::Pos));
        assert!(!s.is_contradictory());
        let bad = s.with(n, SplitSign::Neg);
        assert!(bad.is_contradictory());
        let same = s.with(n, SplitSign::Pos);
        assert!(!same.is_contradictory());
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn split_iteration_is_deterministic() {
        let s = SplitSet::new()
            .with(NeuronId::new(1, 0), SplitSign::Neg)
            .with(NeuronId::new(0, 5), SplitSign::Pos);
        let order: Vec<_> = s.iter().map(|(n, _)| (n.layer, n.index)).collect();
        assert_eq!(order, vec![(0, 5), (1, 0)]);
    }

    #[test]
    fn layer_bounds_detect_infeasibility() {
        let lb = LayerBounds::new(vec![0.5], vec![0.2]);
        assert!(lb.infeasible(1e-9));
        let ok = LayerBounds::new(vec![0.1], vec![0.2]);
        assert!(!ok.infeasible(1e-9));
    }

    #[test]
    fn unstable_neurons_excludes_split_and_stable() {
        let analysis = Analysis {
            p_hat: -1.0,
            candidate: None,
            bounds: vec![
                LayerBounds::new(vec![-1.0, 0.1, -2.0], vec![1.0, 0.5, 3.0]),
                LayerBounds::new(vec![-1.0], vec![1.0]), // output layer: ignored
            ],
            infeasible: false,
        };
        let splits = SplitSet::new().with(NeuronId::new(0, 2), SplitSign::Pos);
        let unstable = analysis.unstable_neurons(&splits);
        assert_eq!(unstable, vec![NeuronId::new(0, 0)]);
    }

    #[test]
    fn sign_display_and_flip() {
        assert_eq!(SplitSign::Pos.to_string(), "+");
        assert_eq!(SplitSign::Pos.flipped(), SplitSign::Neg);
        assert_eq!(SplitSign::Neg.flipped(), SplitSign::Pos);
    }
}
