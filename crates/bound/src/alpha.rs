//! Simplified α-CROWN: optimising the lower-relaxation slopes.
//!
//! Full α-CROWN back-propagates gradients of the bound with respect to
//! every slope. This reproduction uses two cheaper mechanisms that keep
//! the same effect (tighter `p̂` than plain DeepPoly at higher cost, see
//! `DESIGN.md` §2):
//!
//! 1. **strategy portfolio** — evaluate the adaptive DeepPoly slopes, the
//!    all-zero and all-one assignments, plus seeded random restarts, and
//!    keep the best;
//! 2. **coordinate refinement** — exact per-neuron improvement: holding
//!    everything else fixed, a slope's best value is at an endpoint, so
//!    trying `{0, 1}` per unstable neuron and keeping improvements
//!    monotonically increases `p̂` within an evaluation budget.

use crate::deeppoly::{candidate_from, compute_bounds, AlphaAssignment, BoundsResult};
use crate::relax::ReluRelaxation;
use crate::types::{Analysis, AppVer, InputBox, SplitSet};
use abonn_nn::CanonicalNetwork;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// DeepPoly with optimised lower-relaxation slopes.
///
/// # Examples
///
/// ```
/// use abonn_bound::{AlphaCrown, AppVer, DeepPoly, InputBox, SplitSet};
/// use abonn_nn::{AffinePair, CanonicalNetwork};
/// use abonn_tensor::Matrix;
///
/// let net = CanonicalNetwork::from_affine_pairs(1, vec![
///     AffinePair::new(Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0, 0.0]),
///     AffinePair::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![-0.6]),
/// ]);
/// let region = InputBox::new(vec![-1.0], vec![1.0]);
/// let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
/// let ac = AlphaCrown::default().analyze(&net, &region, &SplitSet::new());
/// assert!(ac.p_hat >= dp.p_hat);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlphaCrown {
    /// Number of random slope assignments to try beyond the canonical
    /// three (adaptive, all-0, all-1).
    pub restarts: usize,
    /// Maximum number of coordinate-refinement bound evaluations.
    pub refinement_budget: usize,
    /// Seed for the random restarts.
    pub seed: u64,
}

impl Default for AlphaCrown {
    fn default() -> Self {
        Self {
            restarts: 2,
            refinement_budget: 8,
            seed: 0,
        }
    }
}

impl AlphaCrown {
    /// Creates an α-CROWN verifier with the given portfolio size.
    #[must_use]
    pub fn new(restarts: usize, refinement_budget: usize, seed: u64) -> Self {
        Self {
            restarts,
            refinement_budget,
            seed,
        }
    }
}

fn p_hat_of(result: &BoundsResult) -> f64 {
    result
        .bounds
        .last()
        .expect("non-empty network")
        .lower
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
}

impl AppVer for AlphaCrown {
    fn analyze(&self, net: &CanonicalNetwork, region: &InputBox, splits: &SplitSet) -> Analysis {
        if splits.is_contradictory() {
            return Analysis::infeasible();
        }
        // Baseline: adaptive DeepPoly slopes.
        let Some(mut best) = compute_bounds(net, region, splits, None) else {
            return Analysis::infeasible();
        };
        let mut best_p = p_hat_of(&best);
        let sizes = net.relu_layer_sizes();

        // Reconstruct the adaptive assignment so refinement can start from
        // the incumbent.
        let mut best_alpha: AlphaAssignment = best.bounds[..sizes.len()]
            .iter()
            .map(|lb| {
                lb.lower
                    .iter()
                    .zip(&lb.upper)
                    .map(|(&l, &u)| ReluRelaxation::deeppoly_alpha(l, u))
                    .collect()
            })
            .collect();

        let consider = |alpha: AlphaAssignment,
                        best: &mut BoundsResult,
                        best_p: &mut f64,
                        best_alpha: &mut AlphaAssignment| {
            if let Some(r) = compute_bounds(net, region, splits, Some(&alpha)) {
                let p = p_hat_of(&r);
                if p > *best_p {
                    *best_p = p;
                    *best = r;
                    *best_alpha = alpha;
                }
            }
        };

        // Strategy portfolio.
        let zeros: AlphaAssignment = sizes.iter().map(|&n| vec![0.0; n]).collect();
        let ones: AlphaAssignment = sizes.iter().map(|&n| vec![1.0; n]).collect();
        consider(zeros, &mut best, &mut best_p, &mut best_alpha);
        consider(ones, &mut best, &mut best_p, &mut best_alpha);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for _ in 0..self.restarts {
            let random: AlphaAssignment = sizes
                .iter()
                .map(|&n| (0..n).map(|_| rng.gen_range(0.0..=1.0)).collect())
                .collect();
            consider(random, &mut best, &mut best_p, &mut best_alpha);
        }

        // Coordinate refinement on unstable neurons, budget-capped.
        let mut evals = 0usize;
        'refine: for (layer, lb) in best.bounds.clone()[..sizes.len()].iter().enumerate() {
            for (idx, (&l, &u)) in lb.lower.iter().zip(&lb.upper).enumerate() {
                if !(l < 0.0 && u > 0.0) {
                    continue;
                }
                if evals >= self.refinement_budget {
                    break 'refine;
                }
                let current = best_alpha[layer][idx];
                let flip = if current >= 0.5 { 0.0 } else { 1.0 };
                let mut trial = best_alpha.clone();
                trial[layer][idx] = flip;
                evals += 1;
                consider(trial, &mut best, &mut best_p, &mut best_alpha);
            }
        }

        let candidate = (best_p < 0.0)
            .then(|| candidate_from(&best, region))
            .flatten();
        Analysis {
            p_hat: best_p,
            candidate,
            bounds: best.bounds,
            infeasible: false,
        }
    }

    fn name(&self) -> &'static str {
        "alpha-CROWN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deeppoly::DeepPoly;
    use abonn_nn::AffinePair;
    use abonn_tensor::Matrix;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_net(seed: u64, dims: &[usize]) -> CanonicalNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let m = Matrix::from_fn(w[1], w[0], |_, _| rng.gen_range(-1.0..1.0));
            let b: Vec<f64> = (0..w[1]).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(AffinePair::new(m, b));
        }
        CanonicalNetwork::from_affine_pairs(dims[0], layers)
    }

    #[test]
    fn alpha_crown_never_loosens_deeppoly() {
        for seed in 0..8 {
            let net = random_net(seed, &[3, 6, 5, 2]);
            let region = InputBox::new(vec![-0.4; 3], vec![0.4; 3]);
            let dp = DeepPoly::new().analyze(&net, &region, &SplitSet::new());
            let ac = AlphaCrown::default().analyze(&net, &region, &SplitSet::new());
            assert!(
                ac.p_hat >= dp.p_hat - 1e-9,
                "seed {seed}: alpha {} < deeppoly {}",
                ac.p_hat,
                dp.p_hat
            );
        }
    }

    #[test]
    fn alpha_crown_is_sound() {
        for seed in 20..25 {
            let net = random_net(seed, &[3, 6, 4, 2]);
            let region = InputBox::new(vec![-0.5; 3], vec![0.5; 3]);
            let a = AlphaCrown::default().analyze(&net, &region, &SplitSet::new());
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xAA);
            for _ in 0..30 {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
                let min_y = net
                    .forward(&x)
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert!(a.p_hat <= min_y + 1e-7);
            }
        }
    }

    #[test]
    fn refinement_budget_zero_still_runs_portfolio() {
        let net = random_net(33, &[2, 4, 2]);
        let region = InputBox::new(vec![-0.5; 2], vec![0.5; 2]);
        let verifier = AlphaCrown::new(0, 0, 7);
        let a = verifier.analyze(&net, &region, &SplitSet::new());
        assert!(a.p_hat.is_finite());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let net = random_net(44, &[3, 5, 2]);
        let region = InputBox::new(vec![-0.4; 3], vec![0.4; 3]);
        let v = AlphaCrown::new(3, 4, 9);
        let a = v.analyze(&net, &region, &SplitSet::new());
        let b = v.analyze(&net, &region, &SplitSet::new());
        assert_eq!(a.p_hat, b.p_hat);
    }
}
